//! Edge cases of the phase profiler: empty traces, instant-only traces,
//! and span trees whose root never ends (a run cut short by a forced
//! engine shutdown leaves its roots open — the profiler must degrade to
//! empty breakdowns rather than invent time).

use rp_sim::profile::{aggregate_roots, mean_breakdown, pilot_utilization, profile_roots};
use rp_sim::{
    critical_path_run, profile_span, Engine, Phase, PhaseBreakdown, SimDuration, SimTime, SpanId,
    Trace,
};

fn secs(s: u64) -> SimTime {
    SimTime(s * 1_000_000)
}

#[test]
fn empty_trace_profiles_to_nothing() {
    let tr = Trace::enabled();
    assert!(profile_roots(&tr, "pilot.run").is_empty());
    assert_eq!(aggregate_roots(&tr, "pilot.run").total_secs(), 0.0);
    assert_eq!(profile_span(&tr, SpanId(1)).total_secs(), 0.0);
    assert_eq!(profile_span(&tr, SpanId::NONE).total_secs(), 0.0);
    assert_eq!(pilot_utilization(&tr, SpanId(1), 16), 0.0);
    assert!(critical_path_run(&tr).is_none());
    // A disabled trace behaves the same way.
    let off = Trace::disabled();
    assert!(profile_roots(&off, "pilot.run").is_empty());
    assert_eq!(mean_breakdown(&[]).total_secs(), 0.0);
}

#[test]
fn instant_only_trace_profiles_to_nothing() {
    // A trace holding only instant events (and zero-length spans) carries
    // no duration for the profiler to attribute.
    let mut tr = Trace::enabled();
    tr.record(secs(1), "agent", "heartbeat");
    tr.record(secs(2), "agent", "heartbeat");
    let z = tr.span_begin(secs(3), "unit", "unit.run", SpanId::NONE);
    tr.span_end(secs(3), z);
    assert_eq!(tr.events().len(), 2);
    let profiles = profile_roots(&tr, "unit.run");
    assert_eq!(profiles.len(), 1);
    assert_eq!(profiles[0].1.total_secs(), 0.0);
    assert_eq!(aggregate_roots(&tr, "unit.run").total_secs(), 0.0);
    // The zero-length root also yields a zero-makespan critical path.
    let cp = critical_path_run(&tr).unwrap();
    assert_eq!(cp.makespan_secs(), 0.0);
    assert!(cp.segments.is_empty());
}

#[test]
fn open_root_is_excluded_completed_sibling_still_profiles() {
    let mut tr = Trace::enabled();
    // This root never ends; its completed child must not leak time.
    let open_root = tr.span_begin(secs(0), "pilot", "pilot.run", SpanId::NONE);
    let q = tr.span_begin(secs(0), "pilot", "pilot.queue_wait", open_root);
    tr.span_end(secs(4), q);
    // A sibling root that did complete.
    let done = tr.span_begin(secs(0), "pilot", "pilot.run", SpanId::NONE);
    let b = tr.span_begin(secs(0), "pilot", "pilot.bootstrap", done);
    tr.span_end(secs(3), b);
    tr.span_end(secs(5), done);

    assert_eq!(profile_span(&tr, open_root).total_secs(), 0.0);
    // roots_named only yields completed roots, so the open one is skipped.
    let profiles = profile_roots(&tr, "pilot.run");
    assert_eq!(profiles.len(), 1);
    assert_eq!(profiles[0].0, done);
    assert_eq!(profiles[0].1.secs(Phase::PilotBootstrap), 3.0);
    assert_eq!(profiles[0].1.secs(Phase::Overhead), 2.0);
    let agg = aggregate_roots(&tr, "pilot.run");
    assert_eq!(agg.total_secs(), 5.0);
}

#[test]
fn forced_shutdown_leaves_roots_open_and_unprofiled() {
    // Drive a real engine: a span opens at t=0 and would close at t=60,
    // but the run is cut off at t=10 — the close event never fires, which
    // is exactly what a forced shutdown (or a crash-abandoned unit) leaves
    // behind in the trace.
    let mut eng = Engine::with_trace(7);
    let root = eng
        .trace
        .span_begin(SimTime(0), "pilot", "pilot.run", SpanId::NONE);
    let q = eng
        .trace
        .span_begin(SimTime(0), "pilot", "pilot.queue_wait", root);
    eng.schedule_at(secs(2), move |e| {
        e.trace.span_end(e.now(), q);
    });
    eng.schedule_at(secs(60), move |e| {
        e.trace.span_end(e.now(), root);
    });
    eng.run_until(secs(10));
    assert_eq!(eng.now(), secs(10));

    let root_span = eng.trace.span(root).unwrap();
    assert!(root_span.end.is_none(), "root must still be open");
    assert_eq!(profile_span(&eng.trace, root).total_secs(), 0.0);
    assert!(profile_roots(&eng.trace, "pilot.run").is_empty());
    assert_eq!(aggregate_roots(&eng.trace, "pilot.run").total_secs(), 0.0);
    assert_eq!(pilot_utilization(&eng.trace, root, 16), 0.0);
    assert!(critical_path_run(&eng.trace).is_none());
}

#[test]
fn mean_breakdown_truncates_submicrosecond_remainders() {
    // A 3 µs compute span averaged over two runs (the second empty)
    // truncates to 1 µs — integer virtual time never rounds up.
    let mut tr = Trace::enabled();
    let r = tr.span_begin(SimTime(0), "unit", "unit.run", SpanId::NONE);
    let c = tr.span_begin(SimTime(0), "unit", "unit.compute", r);
    tr.span_end(SimTime(3), c);
    tr.span_end(SimTime(3), r);
    let a = profile_span(&tr, r);
    let b = PhaseBreakdown::default();
    let m = mean_breakdown(&[a, b]);
    assert_eq!(m.get(Phase::Compute), SimDuration(1));
    assert_eq!(m.get(Phase::Overhead), SimDuration(0));
}
