//! Property-style tests for the scaling substrate: the `Symbol` interner,
//! the slab-backed event queue's generational ids, and the streaming
//! Chrome-trace validator. Cases are generated deterministically from
//! fixed `SimRng` seeds, mirroring `engine_properties.rs`.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use rp_sim::{
    validate_chrome_json, validate_chrome_reader, Engine, SimRng, SimTime, SpanId, Symbol,
    SymbolTable, Trace,
};

/// Intern/resolve round-trips, re-interning is stable, and two tables fed
/// the same sequence assign identical ids (the bit-identical-replay
/// precondition).
#[test]
fn interner_round_trips_and_ids_are_stable_across_runs() {
    let mut rng = SimRng::new(0xFA17);
    for case in 0..64 {
        let n = rng.uniform_u64(1, 200) as usize;
        let names: Vec<String> = (0..n)
            .map(|_| format!("label-{}", rng.uniform_u64(0, 40)))
            .collect();
        let mut t1 = SymbolTable::new();
        let mut t2 = SymbolTable::new();
        let syms1: Vec<Symbol> = names.iter().map(|s| t1.intern(s)).collect();
        let syms2: Vec<Symbol> = names.iter().map(|s| t2.intern(s)).collect();
        assert_eq!(syms1, syms2, "case {case}: identical runs diverged");
        for (s, &sym) in names.iter().zip(&syms1) {
            assert_eq!(t1.resolve(sym), s, "case {case}");
            assert_eq!(t1.intern(s), sym, "case {case}: re-intern moved an id");
            assert_eq!(t1.lookup(s), Some(sym), "case {case}");
        }
        // Distinct strings get distinct ids and vice versa.
        let distinct_names: BTreeSet<&str> = names.iter().map(String::as_str).collect();
        let distinct_syms: BTreeSet<Symbol> = syms1.iter().copied().collect();
        assert_eq!(
            distinct_names.len(),
            distinct_syms.len(),
            "case {case}: id/name cardinality mismatch"
        );
        // Ids are dense: table length = distinct labels + reserved "".
        assert_eq!(t1.len(), distinct_names.len() + 1, "case {case}");
    }
}

/// Slab slots are recycled between waves, but generational `EventId`s never
/// alias: stale cancels of long-gone events must not touch the live events
/// now occupying the same slots, and live cancels stay exact.
#[test]
fn slab_reuse_never_aliases_live_events() {
    let mut rng = SimRng::new(0x51AB);
    for case in 0..64 {
        let k1 = rng.uniform_u64(4, 64) as usize;
        let k2 = rng.uniform_u64(1, k1 as u64) as usize;
        let mut e = Engine::new(1);

        // Wave 1: k1 events in [0, 100), some cancelled while pending.
        let fired1 = Rc::new(RefCell::new(vec![false; k1]));
        let mut ids1 = Vec::new();
        for i in 0..k1 {
            let f = fired1.clone();
            ids1.push(e.schedule_at(SimTime(rng.uniform_u64(0, 99)), move |_| {
                f.borrow_mut()[i] = true;
            }));
        }
        let cancel1: Vec<bool> = (0..k1).map(|_| rng.chance(0.3)).collect();
        for (&id, &c) in ids1.iter().zip(&cancel1) {
            if c {
                e.cancel(id);
            }
        }
        e.run_until(SimTime(200));
        for (i, (&f, &c)) in fired1.borrow().iter().zip(&cancel1).enumerate() {
            assert_eq!(f, !c, "case {case} wave-1 event {i}");
        }
        let slab_high_water = e.slab_len();

        // Wave 2 fits entirely into wave 1's freed slots.
        let fired2 = Rc::new(RefCell::new(vec![false; k2]));
        let mut ids2 = Vec::new();
        for i in 0..k2 {
            let f = fired2.clone();
            ids2.push(e.schedule_at(SimTime(rng.uniform_u64(200, 299)), move |_| {
                f.borrow_mut()[i] = true;
            }));
        }
        // Generational ids: a recycled slot carries a fresh sequence, so no
        // wave-2 id ever equals a wave-1 id...
        for &id2 in &ids2 {
            assert!(
                !ids1.contains(&id2),
                "case {case}: EventId aliased across waves"
            );
        }
        // ...and cancelling every stale wave-1 id is a pure no-op for the
        // live events sharing those slots.
        for &id in &ids1 {
            e.cancel(id);
        }
        e.run();
        assert!(
            fired2.borrow().iter().all(|&f| f),
            "case {case}: a stale cancel killed a live event"
        );
        // The slab genuinely recycled: wave 2 allocated no new slots.
        assert_eq!(
            e.slab_len(),
            slab_high_water,
            "case {case}: free-list reuse did not kick in"
        );
    }
}

/// The streaming validator handles a >10 MB document chunk-by-chunk and
/// agrees exactly with the in-memory validator.
#[test]
fn streaming_validator_handles_10mb_trace() {
    let mut tr = Trace::enabled();
    let mut open = Vec::new();
    // ~90k spans with longish names: comfortably past 10 MB of JSON.
    for i in 0..90_000u64 {
        let id = tr.span_begin(
            SimTime(i),
            "unit",
            if i % 2 == 0 {
                "unit.compute.synthetic_scale_case"
            } else {
                "unit.stage_in.synthetic_scale_case"
            },
            SpanId::NONE,
        );
        open.push(id);
        if open.len() > 8 {
            let done = open.remove(0);
            tr.span_end(SimTime(i + 1), done);
        }
    }
    let t_end = SimTime(200_000);
    for id in open {
        tr.span_end(t_end, id);
    }
    let doc = tr.to_chrome_json();
    assert!(
        doc.len() > 10 * 1024 * 1024,
        "synthetic trace only {} bytes — not a >10 MB regression case",
        doc.len()
    );
    let streamed = validate_chrome_reader(doc.as_bytes()).expect("streamed validation");
    let in_memory = validate_chrome_json(&doc).expect("in-memory validation");
    assert_eq!(streamed.begins, 90_000);
    assert_eq!(streamed.ends, 90_000);
    assert_eq!(streamed.begins, in_memory.begins);
    assert_eq!(streamed.ends, in_memory.ends);
    assert_eq!(streamed.instants, in_memory.instants);
    assert_eq!(streamed.objects, in_memory.objects);
}
