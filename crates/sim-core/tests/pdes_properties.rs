//! Seeded property tests for the conservative PDES machinery:
//!
//! * `safe_horizon` obeys the conservative-lookahead rule — it never
//!   admits an event that a pending cross-domain event could still beat
//!   (checked against a brute-force oracle over random head sets);
//! * random mixed workloads (split events, plain closures, nested
//!   scheduling, cross-domain cancels) replay bit-identically under
//!   serial and parallel modes;
//! * generational `EventId`s stay cancel-safe when a slot is recycled
//!   into a different domain and the stale cancel crosses a domain
//!   boundary — in both engine modes.

use std::cell::RefCell;
use std::rc::Rc;

use rp_sim::{safe_horizon, Domain, Engine, EngineMode, SimDuration, SimRng, SimTime};

const CASES: u64 = 200;

fn with_mode<T>(mode: EngineMode, f: impl FnOnce() -> T) -> T {
    Engine::set_default_mode(Some(mode));
    let out = f();
    Engine::set_default_mode(None);
    out
}

// ---------------------------------------------------------------------
// safe_horizon: the conservative-lookahead rule.
// ---------------------------------------------------------------------

#[test]
fn safe_horizon_never_admits_past_a_cross_domain_event() {
    let mut rng = SimRng::new(0x5AFE);
    for case in 0..CASES {
        let lookahead = SimDuration(rng.uniform_u64(0, 5_000_000));
        let n_heads = rng.index(6) + 1;
        let heads: Vec<(Domain, SimTime)> = (0..n_heads)
            .map(|_| {
                (
                    Domain(rng.index(4) as u32), // Domain(0) == GLOBAL
                    SimTime(rng.uniform_u64(0, 10_000_000)),
                )
            })
            .collect();
        for domain_id in 0..4u32 {
            let domain = Domain(domain_id);
            let Some(horizon) = safe_horizon(domain, &heads, lookahead) else {
                // Unbounded is only allowed when no cross-domain head
                // exists at all.
                assert!(
                    heads.iter().all(|&(d, _)| d == domain),
                    "case {case}: unbounded horizon despite cross-domain heads"
                );
                continue;
            };
            // The rule, brute-forced: an admitted event (any event at or
            // before the horizon) must not be able to be influenced by a
            // pending cross-domain event — a global head influences
            // instantly (so the horizon may not pass it), a non-global
            // head needs `lookahead` of virtual time.
            for &(d, t) in &heads {
                if d == domain {
                    continue;
                }
                if d.is_global() {
                    assert!(
                        horizon <= t,
                        "case {case}: horizon {horizon} admits events after \
                         pending global event at {t}"
                    );
                } else {
                    assert!(
                        horizon <= t + lookahead,
                        "case {case}: horizon {horizon} outruns lookahead past \
                         cross-domain head at {t}"
                    );
                }
            }
            // Tightness: the bound is the min, not something weaker — the
            // horizon equals one of the per-head caps.
            assert!(
                heads.iter().any(|&(d, t)| {
                    d != domain && horizon == if d.is_global() { t } else { t + lookahead }
                }),
                "case {case}: horizon is not attained by any head"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Randomized engine workloads: serial ≡ parallel.
// ---------------------------------------------------------------------

/// A random workload over 4 domains + GLOBAL: split events and plain
/// closures at random times, nested rescheduling, random cross-domain
/// cancels. Returns the apply log and the engine for inspection.
fn random_workload(seed: u64) -> (Vec<String>, Engine) {
    let mut e = Engine::new(seed);
    e.note_lookahead(SimDuration(rng_lookahead(seed)));
    let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    let mut rng = SimRng::new(seed ^ 0xD1CE);
    let mut cancellable = Vec::new();
    for i in 0..60u32 {
        let t = SimTime(rng.uniform_u64(0, 2_000_000));
        let domain = Domain(rng.index(5) as u32);
        if rng.chance(0.6) {
            let l = log.clone();
            let id = e.schedule_split_at(
                t,
                domain,
                move || format!("split#{i}"),
                move |eng, s: String| {
                    l.borrow_mut().push(format!("{s}@{}", eng.now()));
                },
            );
            cancellable.push(id);
        } else {
            let l = log.clone();
            let nest = rng.chance(0.5);
            e.schedule_at_domain(t, domain, move |eng| {
                l.borrow_mut().push(format!("closure#{i}@{}", eng.now()));
                if nest {
                    // Nested mixed scheduling from inside an event.
                    let l2 = l.clone();
                    eng.schedule_split_in(
                        SimDuration(1_000),
                        Domain(1 + (i % 4)),
                        move || i * 2,
                        move |eng, v: u32| {
                            l2.borrow_mut().push(format!("nested#{v}@{}", eng.now()));
                        },
                    );
                }
            });
        }
    }
    // Cross-domain cancels: a GLOBAL closure cancels a random sample of
    // split events (some already executed by then — stale, must no-op).
    let victims: Vec<_> = cancellable
        .iter()
        .copied()
        .filter(|_| rng.chance(0.25))
        .collect();
    e.schedule_at_domain(SimTime(1_000_000), Domain::GLOBAL, move |eng| {
        for id in victims {
            eng.cancel(id);
        }
    });
    e.run();
    let out = log.borrow().clone();
    (out, e)
}

fn rng_lookahead(seed: u64) -> u64 {
    SimRng::new(seed ^ 0x100C).uniform_u64(0, 200_000)
}

#[test]
fn random_workloads_replay_identically_across_modes() {
    for seed in 1..=40u64 {
        let (serial, _) = with_mode(EngineMode::Serial, || random_workload(seed));
        for threads in [2, 4] {
            let (par, pe) = with_mode(EngineMode::parallel(threads), || random_workload(seed));
            assert_eq!(
                serial, par,
                "seed {seed}: parallel({threads}) apply order diverged"
            );
            assert!(
                pe.par_prepared() > 0,
                "seed {seed}: parallel({threads}) never prepared a batch"
            );
        }
    }
}

// ---------------------------------------------------------------------
// EventId generational safety across domain boundaries.
// ---------------------------------------------------------------------

/// Force slot recycling: schedule a split event in domain A, run it (its
/// slot is freed), schedule a new event (split or closure) in domain B —
/// which reuses the slot — then fire a stale cancel from a GLOBAL event.
/// The stale cancel must be a no-op; the recycled slot's event must fire.
fn cancel_after_recycle(mode: EngineMode) -> Vec<String> {
    with_mode(mode, || {
        let mut e = Engine::new(9);
        e.note_lookahead(SimDuration::from_secs(1));
        let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));

        let l = log.clone();
        let stale = e.schedule_split_at(
            SimTime(10),
            Domain(1),
            || "first".to_string(),
            move |_, s: String| l.borrow_mut().push(s),
        );

        // After `stale` runs, its slot is on the free list; this LIFO
        // reuse puts the next event in the same slot under a new seq.
        let l = log.clone();
        e.schedule_at_domain(SimTime(20), Domain::GLOBAL, move |eng| {
            let l2 = l.clone();
            let _recycled = eng.schedule_split_at(
                SimTime(40),
                Domain(2),
                || "recycled".to_string(),
                move |_, s: String| l2.borrow_mut().push(s),
            );
            // Stale cancel from the GLOBAL domain, crossing into the slot
            // now owned by a Domain(2) event: generation check must make
            // it a no-op (and must NOT kill `recycled`).
            let l3 = l.clone();
            eng.schedule_at_domain(SimTime(30), Domain::GLOBAL, move |eng| {
                eng.cancel(stale);
                l3.borrow_mut().push("stale-cancel".to_string());
            });
        });

        e.run();
        assert_eq!(e.events_executed(), 4);
        let out = log.borrow().clone();
        out
    })
}

#[test]
fn stale_cancel_across_domains_is_generation_safe_in_both_modes() {
    let serial = cancel_after_recycle(EngineMode::Serial);
    assert_eq!(serial, vec!["first", "stale-cancel", "recycled"]);
    for threads in [1, 2, 4] {
        assert_eq!(
            cancel_after_recycle(EngineMode::parallel(threads)),
            serial,
            "parallel({threads}) diverged"
        );
    }
}

/// Cancelling a *live* split event from another domain must drop it in
/// both modes — including when the parallel engine already prepared it
/// (output computed, then discarded).
#[test]
fn live_cross_domain_cancel_drops_prepared_output() {
    for mode in [EngineMode::Serial, EngineMode::parallel(2)] {
        with_mode(mode, || {
            let mut e = Engine::new(11);
            e.note_lookahead(SimDuration::from_secs(10));
            let hit = Rc::new(RefCell::new(false));
            let h = hit.clone();
            let id = e.schedule_split_at(
                SimTime(500),
                Domain(3),
                || 1u8,
                move |_, _| *h.borrow_mut() = true,
            );
            // An earlier GLOBAL event cancels it. In parallel mode the
            // batch built at t=0 may have prepared the split already —
            // its output must be discarded, not applied.
            e.schedule_at_domain(SimTime(100), Domain::GLOBAL, move |eng| {
                eng.cancel(id);
            });
            e.run();
            assert!(!*hit.borrow(), "{mode:?}: cancelled split applied");
            assert_eq!(e.events_executed(), 1);
        });
    }
}
