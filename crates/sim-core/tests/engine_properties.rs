//! Property tests of the simulation core: event-ordering/cancellation
//! invariants, fair-link capacity/cap laws, and token accounting.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

use rp_sim::{Engine, FairLink, SimDuration, SimTime, Tokens};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cancelled events never fire; everything else fires exactly once.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let n = times.len().min(cancel_mask.len());
        let mut e = Engine::new(1);
        let fired = Rc::new(RefCell::new(vec![false; n]));
        let mut ids = Vec::new();
        for (i, &t) in times[..n].iter().enumerate() {
            let fired = fired.clone();
            ids.push(e.schedule_at(SimTime(t), move |_| {
                fired.borrow_mut()[i] = true;
            }));
        }
        for (&id, &c) in ids.iter().zip(&cancel_mask[..n]) {
            if c {
                e.cancel(id);
            }
        }
        e.run();
        for (i, (&f, &c)) in fired.borrow().iter().zip(&cancel_mask[..n]).enumerate() {
            prop_assert_eq!(f, !c, "event {}", i);
        }
    }

    /// A per-flow cap bounds each flow's completion from below by
    /// bytes/cap, and a capped flow never beats an uncapped one of the
    /// same size started at the same time.
    #[test]
    fn per_flow_caps_are_respected(
        bytes in 1e3f64..1e7,
        cap in 10.0f64..1e5,
        capacity in 1e5f64..1e8,
    ) {
        let mut e = Engine::new(1);
        let link = FairLink::new("p", capacity);
        let t_capped = Rc::new(RefCell::new(0.0));
        let t_free = Rc::new(RefCell::new(0.0));
        let tc = t_capped.clone();
        let tf = t_free.clone();
        link.transfer(&mut e, bytes, cap, move |eng| {
            *tc.borrow_mut() = eng.now().as_secs_f64();
        });
        link.transfer(&mut e, bytes, f64::INFINITY, move |eng| {
            *tf.borrow_mut() = eng.now().as_secs_f64();
        });
        e.run();
        let capped = *t_capped.borrow();
        let free = *t_free.borrow();
        prop_assert!(capped + 1e-6 >= bytes / cap.min(capacity), "capped too fast: {}", capped);
        prop_assert!(free <= capped + 1e-6, "uncapped {} slower than capped {}", free, capped);
    }

    /// Makespan of N equal concurrent flows equals N·bytes/capacity when
    /// uncapped (perfect fair sharing wastes nothing).
    #[test]
    fn fair_sharing_wastes_no_bandwidth(
        n in 1usize..32,
        bytes in 1e4f64..1e6,
        capacity in 1e4f64..1e7,
    ) {
        let mut e = Engine::new(1);
        let link = FairLink::new("p", capacity);
        for _ in 0..n {
            link.transfer(&mut e, bytes, f64::INFINITY, |_| {});
        }
        let end = e.run().as_secs_f64();
        let ideal = n as f64 * bytes / capacity;
        prop_assert!((end - ideal).abs() < ideal * 1e-3 + 1e-5, "end {} ideal {}", end, ideal);
    }

    /// Tokens: grants never exceed capacity at any instant, even under
    /// random hold durations.
    #[test]
    fn token_grants_never_exceed_capacity(
        requests in prop::collection::vec((1u64..6, 1u64..50), 1..40),
    ) {
        let mut e = Engine::new(1);
        let cap = 6u64;
        let t = Tokens::new(cap);
        let outstanding = Rc::new(RefCell::new(0u64));
        let peak = Rc::new(RefCell::new(0u64));
        for (n, hold_ms) in requests {
            let t2 = t.clone();
            let outstanding = outstanding.clone();
            let peak = peak.clone();
            t.acquire(&mut e, n, move |eng| {
                {
                    let mut o = outstanding.borrow_mut();
                    *o += n;
                    let mut p = peak.borrow_mut();
                    *p = (*p).max(*o);
                }
                let t3 = t2.clone();
                let outstanding = outstanding.clone();
                eng.schedule_in(SimDuration::from_millis(hold_ms), move |eng| {
                    *outstanding.borrow_mut() -= n;
                    t3.release(eng, n);
                });
            });
        }
        e.run();
        prop_assert!(*peak.borrow() <= cap, "peak {} > {}", peak.borrow(), cap);
        prop_assert_eq!(*outstanding.borrow(), 0);
        prop_assert_eq!(t.available(), cap);
    }

    /// run_until never executes events beyond the horizon, and a later
    /// run() picks up exactly the rest.
    #[test]
    fn run_until_partitions_execution(
        times in prop::collection::vec(0u64..1_000_000, 1..80),
        horizon in 0u64..1_000_000,
    ) {
        let mut e = Engine::new(1);
        let early = Rc::new(RefCell::new(0usize));
        let late = Rc::new(RefCell::new(0usize));
        for &t in &times {
            let early = early.clone();
            let late = late.clone();
            let h = horizon;
            e.schedule_at(SimTime(t), move |eng| {
                if eng.now() <= SimTime(h) {
                    *early.borrow_mut() += 1;
                } else {
                    *late.borrow_mut() += 1;
                }
            });
        }
        e.run_until(SimTime(horizon));
        let expected_early = times.iter().filter(|&&t| t <= horizon).count();
        prop_assert_eq!(*early.borrow(), expected_early);
        prop_assert_eq!(*late.borrow(), 0);
        e.run();
        prop_assert_eq!(*early.borrow() + *late.borrow(), times.len());
    }
}
