//! Property-style tests of the simulation core: event-ordering/cancellation
//! invariants, fair-link capacity/cap laws, and token accounting. Cases are
//! generated deterministically from fixed `SimRng` seeds.

use std::cell::RefCell;
use std::rc::Rc;

use rp_sim::{Engine, FairLink, SimDuration, SimRng, SimTime, Tokens};

/// Cancelled events never fire; everything else fires exactly once.
#[test]
fn cancellation_is_exact() {
    let mut rng = SimRng::new(0xCA9CE1);
    for case in 0..64 {
        let n = rng.uniform_u64(1, 99) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, 1_000_000)).collect();
        let cancel_mask: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        let mut e = Engine::new(1);
        let fired = Rc::new(RefCell::new(vec![false; n]));
        let mut ids = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let fired = fired.clone();
            ids.push(e.schedule_at(SimTime(t), move |_| {
                fired.borrow_mut()[i] = true;
            }));
        }
        for (&id, &c) in ids.iter().zip(&cancel_mask) {
            if c {
                e.cancel(id);
            }
        }
        e.run();
        for (i, (&f, &c)) in fired.borrow().iter().zip(&cancel_mask).enumerate() {
            assert_eq!(f, !c, "case {case} event {i}");
        }
    }
}

/// A per-flow cap bounds each flow's completion from below by bytes/cap,
/// and a capped flow never beats an uncapped one of the same size started
/// at the same time.
#[test]
fn per_flow_caps_are_respected() {
    let mut rng = SimRng::new(0xF10CA9);
    for case in 0..64 {
        let bytes = rng.uniform(1e3, 1e7);
        let cap = rng.uniform(10.0, 1e5);
        let capacity = rng.uniform(1e5, 1e8);
        let mut e = Engine::new(1);
        let link = FairLink::new("p", capacity);
        let t_capped = Rc::new(RefCell::new(0.0));
        let t_free = Rc::new(RefCell::new(0.0));
        let tc = t_capped.clone();
        let tf = t_free.clone();
        link.transfer(&mut e, bytes, cap, move |eng| {
            *tc.borrow_mut() = eng.now().as_secs_f64();
        });
        link.transfer(&mut e, bytes, f64::INFINITY, move |eng| {
            *tf.borrow_mut() = eng.now().as_secs_f64();
        });
        e.run();
        let capped = *t_capped.borrow();
        let free = *t_free.borrow();
        assert!(
            capped + 1e-6 >= bytes / cap.min(capacity),
            "case {case}: capped too fast: {capped}"
        );
        assert!(
            free <= capped + 1e-6,
            "case {case}: uncapped {free} slower than capped {capped}"
        );
    }
}

/// Makespan of N equal concurrent flows equals N·bytes/capacity when
/// uncapped (perfect fair sharing wastes nothing).
#[test]
fn fair_sharing_wastes_no_bandwidth() {
    let mut rng = SimRng::new(0x5A1212);
    for case in 0..64 {
        let n = rng.uniform_u64(1, 31) as usize;
        let bytes = rng.uniform(1e4, 1e6);
        let capacity = rng.uniform(1e4, 1e7);
        let mut e = Engine::new(1);
        let link = FairLink::new("p", capacity);
        for _ in 0..n {
            link.transfer(&mut e, bytes, f64::INFINITY, |_| {});
        }
        let end = e.run().as_secs_f64();
        let ideal = n as f64 * bytes / capacity;
        assert!(
            (end - ideal).abs() < ideal * 1e-3 + 1e-5,
            "case {case}: end {end} ideal {ideal}"
        );
    }
}

/// Tokens: grants never exceed capacity at any instant, even under random
/// hold durations.
#[test]
fn token_grants_never_exceed_capacity() {
    let mut rng = SimRng::new(0x70CE25);
    for case in 0..64 {
        let n_req = rng.uniform_u64(1, 39) as usize;
        let requests: Vec<(u64, u64)> = (0..n_req)
            .map(|_| (rng.uniform_u64(1, 5), rng.uniform_u64(1, 49)))
            .collect();
        let mut e = Engine::new(1);
        let cap = 6u64;
        let t = Tokens::new(cap);
        let outstanding = Rc::new(RefCell::new(0u64));
        let peak = Rc::new(RefCell::new(0u64));
        for (n, hold_ms) in requests {
            let t2 = t.clone();
            let outstanding = outstanding.clone();
            let peak = peak.clone();
            t.acquire(&mut e, n, move |eng| {
                {
                    let mut o = outstanding.borrow_mut();
                    *o += n;
                    let mut p = peak.borrow_mut();
                    *p = (*p).max(*o);
                }
                let t3 = t2.clone();
                let outstanding = outstanding.clone();
                eng.schedule_in(SimDuration::from_millis(hold_ms), move |eng| {
                    *outstanding.borrow_mut() -= n;
                    t3.release(eng, n);
                });
            });
        }
        e.run();
        assert!(
            *peak.borrow() <= cap,
            "case {case}: peak {} > {cap}",
            peak.borrow()
        );
        assert_eq!(*outstanding.borrow(), 0, "case {case}");
        assert_eq!(t.available(), cap, "case {case}");
    }
}

/// run_until never executes events beyond the horizon, and a later run()
/// picks up exactly the rest.
#[test]
fn run_until_partitions_execution() {
    let mut rng = SimRng::new(0x9A2717);
    for case in 0..64 {
        let n = rng.uniform_u64(1, 79) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, 1_000_000)).collect();
        let horizon = rng.uniform_u64(0, 1_000_000);
        let mut e = Engine::new(1);
        let early = Rc::new(RefCell::new(0usize));
        let late = Rc::new(RefCell::new(0usize));
        for &t in &times {
            let early = early.clone();
            let late = late.clone();
            let h = horizon;
            e.schedule_at(SimTime(t), move |eng| {
                if eng.now() <= SimTime(h) {
                    *early.borrow_mut() += 1;
                } else {
                    *late.borrow_mut() += 1;
                }
            });
        }
        e.run_until(SimTime(horizon));
        let expected_early = times.iter().filter(|&&t| t <= horizon).count();
        assert_eq!(*early.borrow(), expected_early, "case {case}");
        assert_eq!(*late.borrow(), 0, "case {case}");
        e.run();
        assert_eq!(*early.borrow() + *late.borrow(), times.len(), "case {case}");
    }
}
