//! Uniform run reports: labelled phase breakdowns rendered as an aligned
//! table, CSV, or JSON. Benches and examples all emit their Fig. 5 /
//! Fig. 6 style decompositions through this one type.

use crate::profile::{Phase, PhaseBreakdown};
use crate::trace::escape_json;

/// A set of labelled [`PhaseBreakdown`] rows (one per experiment case).
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    pub title: String,
    rows: Vec<(String, PhaseBreakdown)>,
}

impl RunReport {
    pub fn new(title: impl Into<String>) -> Self {
        RunReport {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, label: impl Into<String>, breakdown: PhaseBreakdown) {
        self.rows.push((label.into(), breakdown));
    }

    pub fn rows(&self) -> &[(String, PhaseBreakdown)] {
        &self.rows
    }

    /// Phases that are non-zero in at least one row (the table and CSV
    /// only carry these columns).
    fn active_phases(&self) -> Vec<Phase> {
        Phase::ALL
            .iter()
            .copied()
            .filter(|&p| self.rows.iter().any(|(_, b)| b.get(p).0 > 0))
            .collect()
    }

    /// Aligned text table, durations in seconds.
    pub fn render_table(&self) -> String {
        let phases = self.active_phases();
        let mut header: Vec<String> = vec!["case".into()];
        header.extend(phases.iter().map(|p| p.label().to_string()));
        header.push("total".into());
        let mut body: Vec<Vec<String>> = Vec::new();
        for (label, b) in &self.rows {
            let mut row = vec![label.clone()];
            row.extend(phases.iter().map(|&p| format!("{:.1}", b.secs(p))));
            row.push(format!("{:.1}", b.total_secs()));
            body.push(row);
        }
        let cols = header.len();
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in &body {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{cell:<width$}", width = widths[0]));
                } else {
                    line.push_str(&format!("  {cell:>width$}", width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("{}\n", self.title));
        }
        out.push_str(&render_row(&header));
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &body {
            out.push_str(&render_row(row));
        }
        out
    }

    /// CSV export (seconds, 6 decimal places).
    pub fn to_csv(&self) -> String {
        let phases = self.active_phases();
        let mut out = String::from("case");
        for p in &phases {
            out.push_str(&format!(",{}", p.label()));
        }
        out.push_str(",total\n");
        for (label, b) in &self.rows {
            let quoted = if label.contains(',') || label.contains('"') {
                format!("\"{}\"", label.replace('"', "\"\""))
            } else {
                label.clone()
            };
            out.push_str(&quoted);
            for &p in &phases {
                out.push_str(&format!(",{:.6}", b.secs(p)));
            }
            out.push_str(&format!(",{:.6}\n", b.total_secs()));
        }
        out
    }

    /// JSON export: every phase (including zeros) per row, in seconds.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"title\":\"{}\",\"rows\":[", escape_json(&self.title));
        for (i, (label, b)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"case\":\"{}\"", escape_json(label)));
            for p in Phase::ALL {
                out.push_str(&format!(",\"{}\":{:.6}", p.label(), b.secs(p)));
            }
            out.push_str(&format!(",\"total\":{:.6}}}", b.total_secs()));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::trace::{SpanId, Trace};

    fn breakdown() -> PhaseBreakdown {
        let mut tr = Trace::enabled();
        let root = tr.span_begin(SimTime(0), "pilot", "pilot.run", SpanId::NONE);
        let q = tr.span_begin(SimTime(0), "pilot", "pilot.queue_wait", root);
        tr.span_end(SimTime(10_000_000), q);
        tr.span_end(SimTime(25_000_000), root);
        crate::profile::profile_span(&tr, root)
    }

    #[test]
    fn table_has_header_rule_and_rows() {
        let mut r = RunReport::new("fig5");
        r.push("stampede/mode-i", breakdown());
        r.push("comet/mode-ii", breakdown());
        let t = r.render_table();
        assert!(t.starts_with("fig5\n"));
        assert!(t.contains("queue_wait") && t.contains("overhead") && t.contains("total"));
        // Zero-everywhere phases are dropped from the table.
        assert!(!t.contains("shuffle"));
        assert_eq!(t.lines().count(), 5); // title + header + rule + 2 rows
        assert!(t.contains("stampede/mode-i"));
    }

    #[test]
    fn csv_and_json_are_consistent() {
        let mut r = RunReport::new("x");
        r.push("a,b", breakdown());
        let csv = r.to_csv();
        assert!(csv.starts_with("case,queue_wait,overhead,total\n"));
        assert!(csv.contains("\"a,b\",10.000000,15.000000,25.000000"));
        let json = r.to_json();
        assert!(json.contains("\"case\":\"a,b\""));
        assert!(json.contains("\"queue_wait\":10.000000"));
        assert!(json.contains("\"shuffle\":0.000000")); // JSON keeps zeros
        assert!(json.contains("\"total\":25.000000"));
    }

    #[test]
    fn empty_report_renders() {
        let r = RunReport::new("");
        let t = r.render_table();
        assert!(t.contains("case"));
        assert_eq!(r.to_csv(), "case,total\n");
    }
}
