//! Uniform run reports: labelled phase breakdowns rendered as an aligned
//! table, CSV, JSON, or Markdown. Benches and examples all emit their
//! Fig. 5 / Fig. 6 style decompositions through this one type. A report can
//! also carry a critical-path section ([`RunReport::push_critical`]): the
//! per-phase on-path / off-path / slack attribution from
//! [`crate::critpath`], rendered alongside the wall-clock sweep in every
//! format.

use crate::critpath::{CritPhaseRow, CriticalPath};
use crate::profile::{Phase, PhaseBreakdown};
use crate::trace::escape_json;

/// One labelled critical-path attribution (see [`CriticalPath`]).
#[derive(Debug, Clone)]
pub struct CritSummary {
    pub label: String,
    pub makespan_s: f64,
    pub rows: Vec<CritPhaseRow>,
}

/// A set of labelled [`PhaseBreakdown`] rows (one per experiment case),
/// plus optional critical-path summaries and host-side footnotes.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    pub title: String,
    rows: Vec<(String, PhaseBreakdown)>,
    critical: Vec<CritSummary>,
    /// Host-side observations (engine-telemetry summaries, timing notes).
    /// Rendered only in the human-facing formats (table, Markdown) —
    /// never in `to_json`/`to_csv`, which carry exclusively virtual-time
    /// results and are exact-diffed by the bench regression gate.
    host_notes: Vec<String>,
}

impl RunReport {
    pub fn new(title: impl Into<String>) -> Self {
        RunReport {
            title: title.into(),
            rows: Vec::new(),
            critical: Vec::new(),
            host_notes: Vec::new(),
        }
    }

    pub fn push(&mut self, label: impl Into<String>, breakdown: PhaseBreakdown) {
        self.rows.push((label.into(), breakdown));
    }

    /// Attach a critical-path attribution for one case.
    pub fn push_critical(&mut self, label: impl Into<String>, cp: &CriticalPath) {
        self.critical.push(CritSummary {
            label: label.into(),
            makespan_s: cp.makespan_secs(),
            rows: cp.phase_rows(),
        });
    }

    pub fn rows(&self) -> &[(String, PhaseBreakdown)] {
        &self.rows
    }

    pub fn critical(&self) -> &[CritSummary] {
        &self.critical
    }

    /// Attach a host-side footnote (e.g. an engine-telemetry summary
    /// line). Shown in the table and Markdown renderings only; the JSON
    /// and CSV exports stay purely virtual so the bench gate can diff
    /// them exactly across hosts.
    pub fn push_host_note(&mut self, note: impl Into<String>) {
        self.host_notes.push(note.into());
    }

    pub fn host_notes(&self) -> &[String] {
        &self.host_notes
    }

    /// Phases that are non-zero in at least one row (the table and CSV
    /// only carry these columns).
    fn active_phases(&self) -> Vec<Phase> {
        Phase::ALL
            .iter()
            .copied()
            .filter(|&p| self.rows.iter().any(|(_, b)| b.get(p).0 > 0))
            .collect()
    }

    /// Header + body cells of the phase table (shared by every renderer).
    fn phase_matrix(&self, decimals: usize) -> (Vec<String>, Vec<Vec<String>>) {
        let phases = self.active_phases();
        let mut header: Vec<String> = vec!["case".into()];
        header.extend(phases.iter().map(|p| p.label().to_string()));
        header.push("total".into());
        let body = self
            .rows
            .iter()
            .map(|(label, b)| {
                let mut row = vec![label.clone()];
                row.extend(phases.iter().map(|&p| format!("{:.decimals$}", b.secs(p))));
                row.push(format!("{:.decimals$}", b.total_secs()));
                row
            })
            .collect();
        (header, body)
    }

    /// Header + body cells of the critical-path table, or `None` when no
    /// critical-path summaries were attached.
    fn crit_matrix(&self, decimals: usize) -> Option<(Vec<String>, Vec<Vec<String>>)> {
        if self.critical.is_empty() {
            return None;
        }
        let header: Vec<String> = ["case", "phase", "path", "off_path", "min_slack"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut body = Vec::new();
        for c in &self.critical {
            for r in &c.rows {
                body.push(vec![
                    c.label.clone(),
                    r.phase.label().to_string(),
                    format!("{:.decimals$}", r.path_s),
                    format!("{:.decimals$}", r.off_path_s),
                    r.min_slack_s
                        .map(|s| format!("{s:.decimals$}"))
                        .unwrap_or_else(|| "-".into()),
                ]);
            }
            body.push(vec![
                c.label.clone(),
                "total".into(),
                format!("{:.decimals$}", c.makespan_s),
                format!(
                    "{:.decimals$}",
                    c.rows.iter().map(|r| r.off_path_s).sum::<f64>()
                ),
                "-".into(),
            ]);
        }
        Some((header, body))
    }

    /// Aligned text table, durations in seconds.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("{}\n", self.title));
        }
        let (header, body) = self.phase_matrix(1);
        out.push_str(&render_aligned(&header, &body));
        if let Some((header, body)) = self.crit_matrix(1) {
            out.push_str("critical path (s on path / s off path / min slack)\n");
            out.push_str(&render_aligned(&header, &body));
        }
        for note in &self.host_notes {
            out.push_str(&format!("[host] {note}\n"));
        }
        out
    }

    /// CSV export (seconds, 6 decimal places). The critical-path section,
    /// when present, follows the phase table after a blank line with its
    /// own header.
    pub fn to_csv(&self) -> String {
        let (header, body) = self.phase_matrix(6);
        let mut out = render_csv(&header, &body);
        if let Some((header, body)) = self.crit_matrix(6) {
            out.push('\n');
            out.push_str(&render_csv(&header, &body));
        }
        out
    }

    /// GitHub-flavoured Markdown (for pasting into PR descriptions).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        let (header, body) = self.phase_matrix(2);
        out.push_str(&render_markdown(&header, &body));
        if let Some((header, body)) = self.crit_matrix(2) {
            out.push_str("\nCritical path (seconds on / off the path, minimum local slack):\n\n");
            out.push_str(&render_markdown(&header, &body));
        }
        if !self.host_notes.is_empty() {
            out.push('\n');
            for note in &self.host_notes {
                out.push_str(&format!("> host: {note}\n"));
            }
        }
        out
    }

    /// JSON export: every phase (including zeros) per row, in seconds,
    /// plus the critical-path summaries (empty array when none).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"title\":\"{}\",\"rows\":[", escape_json(&self.title));
        for (i, (label, b)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"case\":\"{}\"", escape_json(label)));
            for p in Phase::ALL {
                out.push_str(&format!(",\"{}\":{:.6}", p.label(), b.secs(p)));
            }
            out.push_str(&format!(",\"total\":{:.6}}}", b.total_secs()));
        }
        out.push_str("],\"critical\":[");
        for (i, c) in self.critical.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"case\":\"{}\",\"makespan\":{:.6},\"phases\":[",
                escape_json(&c.label),
                c.makespan_s
            ));
            for (j, r) in c.rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let slack = match r.min_slack_s {
                    Some(s) => format!("{s:.6}"),
                    None => "null".into(),
                };
                out.push_str(&format!(
                    "{{\"phase\":\"{}\",\"path\":{:.6},\"off_path\":{:.6},\"min_slack\":{}}}",
                    r.phase.label(),
                    r.path_s,
                    r.off_path_s,
                    slack
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Render cells as an aligned text table: first column left-aligned, the
/// rest right-aligned, a dashed rule under the header.
fn render_aligned(header: &[String], body: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in body {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let render_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 {
                line.push_str(&format!("{cell:<width$}", width = widths[0]));
            } else {
                line.push_str(&format!("  {cell:>width$}", width = widths[i]));
            }
        }
        line.push('\n');
        line
    };
    let mut out = render_row(header);
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in body {
        out.push_str(&render_row(row));
    }
    out
}

/// Render cells as CSV with minimal quoting.
fn render_csv(header: &[String], body: &[Vec<String>]) -> String {
    let quote = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut out = String::new();
    for row in std::iter::once(header).chain(body.iter().map(|r| &r[..])) {
        let cells: Vec<String> = row.iter().map(|c| quote(c)).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Render cells as a GitHub-flavoured Markdown table: first column
/// left-aligned, the rest right-aligned.
fn render_markdown(header: &[String], body: &[Vec<String>]) -> String {
    let escape = |cell: &str| cell.replace('|', "\\|");
    let mut out = format!(
        "| {} |\n",
        header
            .iter()
            .map(|c| escape(c))
            .collect::<Vec<_>>()
            .join(" | ")
    );
    let aligns: Vec<&str> = (0..header.len())
        .map(|i| if i == 0 { ":--" } else { "--:" })
        .collect();
    out.push_str(&format!("| {} |\n", aligns.join(" | ")));
    for row in body {
        out.push_str(&format!(
            "| {} |\n",
            row.iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(" | ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;
    use crate::trace::{SpanId, Trace};

    fn breakdown() -> PhaseBreakdown {
        let mut tr = Trace::enabled();
        let root = tr.span_begin(SimTime(0), "pilot", "pilot.run", SpanId::NONE);
        let q = tr.span_begin(SimTime(0), "pilot", "pilot.queue_wait", root);
        tr.span_end(SimTime(10_000_000), q);
        tr.span_end(SimTime(25_000_000), root);
        crate::profile::profile_span(&tr, root)
    }

    fn crit_trace() -> (Trace, SpanId) {
        let mut tr = Trace::enabled();
        let job = tr.span_begin(SimTime(0), "mr", "job", SpanId::NONE);
        let m1 = tr.span_begin(SimTime(0), "mr", "mr.map", job);
        let m2 = tr.span_begin(SimTime(0), "mr", "mr.map", job);
        tr.span_end(SimTime(50_000_000), m1);
        tr.span_end(SimTime(20_000_000), m2);
        let r = tr.span_begin(SimTime(50_000_000), "mr", "mr.reduce", job);
        tr.span_end(SimTime(80_000_000), r);
        tr.span_end(SimTime(80_000_000), job);
        (tr, job)
    }

    #[test]
    fn table_has_header_rule_and_rows() {
        let mut r = RunReport::new("fig5");
        r.push("stampede/mode-i", breakdown());
        r.push("comet/mode-ii", breakdown());
        let t = r.render_table();
        assert!(t.starts_with("fig5\n"));
        assert!(t.contains("queue_wait") && t.contains("overhead") && t.contains("total"));
        // Zero-everywhere phases are dropped from the table.
        assert!(!t.contains("shuffle"));
        assert_eq!(t.lines().count(), 5); // title + header + rule + 2 rows
        assert!(t.contains("stampede/mode-i"));
    }

    #[test]
    fn csv_and_json_are_consistent() {
        let mut r = RunReport::new("x");
        r.push("a,b", breakdown());
        let csv = r.to_csv();
        assert!(csv.starts_with("case,queue_wait,overhead,total\n"));
        assert!(csv.contains("\"a,b\",10.000000,15.000000,25.000000"));
        let json = r.to_json();
        assert!(json.contains("\"case\":\"a,b\""));
        assert!(json.contains("\"queue_wait\":10.000000"));
        assert!(json.contains("\"shuffle\":0.000000")); // JSON keeps zeros
        assert!(json.contains("\"total\":25.000000"));
        assert!(json.ends_with("\"critical\":[]}"));
        crate::json::parse(&json).expect("report JSON parses");
    }

    #[test]
    fn empty_report_renders() {
        let r = RunReport::new("");
        let t = r.render_table();
        assert!(t.contains("case"));
        assert_eq!(r.to_csv(), "case,total\n");
        assert_eq!(r.to_markdown(), "| case | total |\n| :-- | --: |\n");
    }

    #[test]
    fn markdown_table_is_well_formed() {
        let mut r = RunReport::new("fig6");
        r.push("k|means", breakdown());
        let md = r.to_markdown();
        assert!(md.starts_with("### fig6\n\n| case |"));
        assert!(md.contains("| :-- |"));
        assert!(md.contains("k\\|means")); // pipes escaped inside cells
        assert!(md.contains("| 10.00 |") || md.contains(" 10.00 |"));
        // Every line of the table has the same number of pipes.
        let counts: Vec<usize> = md
            .lines()
            .filter(|l| l.starts_with('|'))
            .map(|l| l.matches('|').count() - l.matches("\\|").count())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn host_notes_render_only_in_human_formats() {
        let mut r = RunReport::new("t");
        r.push("case", breakdown());
        let (json_before, csv_before) = (r.to_json(), r.to_csv());
        r.push_host_note("engine telemetry: 42 events");
        assert_eq!(r.host_notes().len(), 1);
        let t = r.render_table();
        assert!(t.contains("[host] engine telemetry: 42 events"), "{t}");
        let md = r.to_markdown();
        assert!(md.contains("> host: engine telemetry: 42 events"), "{md}");
        // The machine-diffed exports must be byte-identical with or
        // without host notes — they carry only virtual results.
        assert_eq!(r.to_json(), json_before);
        assert_eq!(r.to_csv(), csv_before);
    }

    #[test]
    fn critical_section_appears_in_all_formats() {
        let (tr, job) = crit_trace();
        let cp = crate::critpath::critical_path(&tr, job).unwrap();
        let mut r = RunReport::new("crit");
        r.push("mr", crate::profile::profile_span(&tr, job));
        r.push_critical("mr", &cp);
        assert_eq!(r.critical().len(), 1);
        assert_eq!(r.critical()[0].makespan_s, 80.0);

        let t = r.render_table();
        assert!(t.contains("critical path"));
        assert!(t.contains("min_slack"));

        let csv = r.to_csv();
        assert!(csv.contains("\ncase,phase,path,off_path,min_slack\n"));
        // Compute: on-path m1 (50) + reduce (30); off-path m2 (20), slack 30.
        assert!(csv.contains("mr,compute,80.000000,20.000000,30.000000"));
        assert!(csv.contains("mr,total,80.000000,20.000000,-"));

        let md = r.to_markdown();
        assert!(md.contains("Critical path"));
        assert!(md.contains("| compute | 80.00 | 20.00 | 30.00 |"));

        let json = r.to_json();
        let v = crate::json::parse(&json).expect("report JSON parses");
        let crit = v.get("critical").and_then(|c| c.as_array()).unwrap();
        assert_eq!(crit.len(), 1);
        assert_eq!(crit[0].get("makespan").and_then(|m| m.as_f64()), Some(80.0));
        let phases = crit[0].get("phases").and_then(|p| p.as_array()).unwrap();
        let compute = phases
            .iter()
            .find(|p| p.get("phase").and_then(|n| n.as_str()) == Some("compute"))
            .unwrap();
        assert_eq!(compute.get("path").and_then(|x| x.as_f64()), Some(80.0));
        assert_eq!(compute.get("off_path").and_then(|x| x.as_f64()), Some(20.0));
        assert_eq!(
            compute.get("min_slack").and_then(|x| x.as_f64()),
            Some(30.0)
        );
    }
}
