//! The discrete-event engine.
//!
//! The engine is an event loop over virtual time. Events are arbitrary
//! `FnOnce(&mut Engine)` closures; components live in `Rc<RefCell<_>>`
//! handles captured by those closures. Ties in time are broken by a
//! monotonically increasing sequence number, so a run is fully
//! deterministic given the same schedule of events and RNG seed.
//!
//! ## Slab-backed queue
//!
//! Closures live in a slab (`Vec<Slot>` + LIFO free list); the binary heap
//! orders small `Copy` entries `(time, seq, slot)`. Scheduling reuses a
//! freed slot instead of growing, so a steady-state run touches a bounded
//! working set no matter how many events it executes. Invariants:
//!
//! * exactly one heap entry exists per occupied slot — a slot is occupied
//!   by `schedule_*` and freed only when its heap entry pops;
//! * cancellation tombstones the slot's payload (`payload = None`) without
//!   freeing it, so a slot can never be re-used while its heap entry is
//!   still pending — an [`EventId`]'s `(slot, seq)` pair therefore never
//!   aliases a different live event;
//! * the free list is a `Vec` (LIFO), so slot assignment is a pure
//!   function of the event sequence — replays are bit-identical.
//!
//! ## Conservative parallel mode (PDES)
//!
//! Every event carries a [`Domain`] tag (default [`Domain::GLOBAL`]).
//! Besides plain closures, call sites may schedule **split events**
//! ([`Engine::schedule_split_at`]): a `Send` *prepare* closure that is a
//! pure function of its captures (no engine, RNG, or trace access — the
//! type system enforces `Send`, which rules out the `Rc` component
//! handles), plus a main-thread *apply* closure that consumes the
//! prepared value.
//!
//! In [`EngineMode::Parallel`] the engine repeatedly computes a safe
//! horizon — the next pending event's time extended by the registered
//! cross-domain [lookahead](Engine::note_lookahead), capped at the next
//! pending global-domain event — collects every unprepared split event at
//! or before that horizon, partitions the batch by domain, and runs the
//! prepare closures on scoped worker threads (whole domains are assigned
//! to workers round-robin in domain-id order, and each domain's events
//! prepare in `(time, seq)` order). Application *always* happens on the
//! main thread in exact `(time, seq)` order — the same order the serial
//! mode uses — so traces, metrics, RNG draws and coordination effects are
//! bit-identical between modes and across any thread count. Serial mode
//! runs the prepare closure inline at apply time; either way the prepare
//! sees exactly the same captures, so its output cannot differ.
//!
//! The horizon never makes or breaks correctness (prepare closures cannot
//! observe engine state, and a prepared-then-cancelled event just drops
//! its output); it bounds *speculation depth*, so work is not prepared for
//! far-future events that a nearer event might still cancel.

use std::any::Any;
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::OnceLock;

use crate::metrics::MetricsRegistry;
use crate::rng::SimRng;
use crate::telemetry::{EngineTelemetry, HorizonOutcome, TelemetrySnapshot};
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Partition tag of a scheduled event: events in different non-global
/// domains are prepared independently in parallel mode. `Domain::GLOBAL`
/// (the default for all legacy `schedule_*` calls) marks cross-cutting
/// events that act as barriers for the parallel prepare horizon.
///
/// Conventions in this workspace: pilots tag agent-wide events with
/// [`Domain::from_parts`]`(pilot_id, 0)` and per-node events with
/// `from_parts(pilot_id, node_id + 1)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Domain(pub u32);

impl Domain {
    /// The cross-cutting domain every untagged event belongs to.
    pub const GLOBAL: Domain = Domain(0);

    /// Compose a domain id from a coarse (pilot) and fine (node) part.
    /// `from_parts(0, 0)` is [`Domain::GLOBAL`]; callers that want a
    /// distinct domain for "pilot 0, agent-wide" should offset one part.
    pub fn from_parts(hi: u16, lo: u16) -> Domain {
        Domain(((hi as u32) << 16) | lo as u32)
    }

    pub fn is_global(self) -> bool {
        self.0 == 0
    }
}

/// Execution mode of the engine. `Parallel` changes *where prepare
/// closures run*, never what a run computes — the differential tier
/// (`tests/pdes_differential.rs`) holds the two modes bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Single-threaded reference mode: prepare closures run inline.
    Serial,
    /// Conservative PDES mode: prepare closures of split events run on
    /// `threads` scoped workers within the safe horizon.
    Parallel { threads: usize },
}

impl EngineMode {
    /// Parallel mode with a pinned worker count (clamped to >= 1).
    pub fn parallel(threads: usize) -> EngineMode {
        EngineMode::Parallel {
            threads: threads.max(1),
        }
    }

    /// Mode selected by the environment: `RP_ENGINE_MODE=parallel` (with
    /// `RP_THREADS=<n>`, default 4) or `RP_ENGINE_MODE=serial` (default).
    /// The worker count is always pinned explicitly — never derived from
    /// `available_parallelism()` — so a run's *schedule* is identical on
    /// any host. Parsed once per process.
    pub fn from_env() -> EngineMode {
        static FROM_ENV: OnceLock<EngineMode> = OnceLock::new();
        *FROM_ENV.get_or_init(|| match std::env::var("RP_ENGINE_MODE").ok().as_deref() {
            Some("parallel") => {
                let threads = std::env::var("RP_THREADS")
                    .ok()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or(4);
                EngineMode::Parallel { threads }
            }
            _ => EngineMode::Serial,
        })
    }
}

// The default mode new engines start in. Thread-local (not global) so
// concurrently running tests can flip modes independently; it cannot
// affect results because mode never does (the differential tier is
// the proof), so the thread-local read is not a determinism leak.
// rp-lint: allow(par-hazard): mode selection only; serial ≡ parallel is enforced by tests/pdes_differential.rs
thread_local! {
    static DEFAULT_MODE: Cell<Option<EngineMode>> = const { Cell::new(None) };
}

// Whether new engines start with the flight recorder on. Same shape as
// DEFAULT_MODE, and equally harmless: telemetry is write-only host-side
// observation, so it cannot affect results (tests/telemetry.rs holds
// runs bit-identical with the recorder on vs off).
// rp-lint: allow(par-hazard): telemetry default selection only; on ≡ off is enforced by tests/telemetry.rs
thread_local! {
    static DEFAULT_TELEMETRY: Cell<Option<bool>> = const { Cell::new(None) };
}

/// `RP_TELEMETRY=1|true|on` enables the flight recorder on every engine
/// created without an explicit thread default. Parsed once per process.
fn telemetry_from_env() -> bool {
    static FROM_ENV: OnceLock<bool> = OnceLock::new();
    *FROM_ENV.get_or_init(|| {
        matches!(
            std::env::var("RP_TELEMETRY").ok().as_deref(),
            Some("1") | Some("true") | Some("on")
        )
    })
}

/// Identifier of a scheduled event, usable for cancellation. Generational:
/// the `(slot, seq)` pair identifies one scheduling, so cancelling after
/// the slot was recycled is a detectable no-op — even when the cancel
/// originates in a different [`Domain`] than the event it targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    seq: u64,
}

type EventFn = Box<dyn FnOnce(&mut Engine)>;
/// Output of a prepare closure, shipped back to the apply closure.
type PrepOut = Box<dyn Any + Send>;
/// The `Send` half of a split event; runs on a worker thread in parallel
/// mode, inline at apply time in serial mode.
type PrepFn = Box<dyn FnOnce() -> PrepOut + Send>;
/// The main-thread half of a split event.
type SplitApplyFn = Box<dyn FnOnce(&mut Engine, PrepOut)>;

/// Event payload: a plain closure, or a prepare/apply split.
enum Payload {
    Closure(EventFn),
    Split {
        /// `Some` until prepared (by a worker batch, or inline).
        prep: Option<PrepFn>,
        /// `Some` once a worker batch prepared it.
        out: Option<PrepOut>,
        apply: SplitApplyFn,
    },
}

/// Slab cell: the generation (`seq`) of the event occupying it, its
/// domain/time (needed to re-index split events when the mode changes)
/// and its payload. `payload == None` on an occupied slot means cancelled.
struct Slot {
    seq: u64,
    domain: Domain,
    time: SimTime,
    payload: Option<Payload>,
}

/// Heap entry: ordering key plus the slab slot holding the payload.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
    domain: Domain,
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Conservative safe horizon for `domain`, given the earliest pending
/// event time per domain (`heads`) and the minimum cross-domain
/// propagation delay (`lookahead`): events in `domain` at or before the
/// returned time cannot be influenced by any pending cross-domain event.
///
/// * a pending event in another non-global domain `d'` at `t'` needs at
///   least `lookahead` of virtual time to reach `domain`, so it caps the
///   horizon at `t' + lookahead`;
/// * a pending [`Domain::GLOBAL`] event may touch any domain with zero
///   delay, so it caps the horizon at its own time;
/// * heads of `domain` itself do not constrain it (in-domain order is
///   already `(time, seq)`).
///
/// Returns `None` when no cross-domain head exists (unbounded horizon).
/// The property tier (`crates/sim-core/tests/pdes_properties.rs`) holds
/// this function to the rule "never admit an event earlier than a pending
/// cross-domain event".
pub fn safe_horizon(
    domain: Domain,
    heads: &[(Domain, SimTime)],
    lookahead: SimDuration,
) -> Option<SimTime> {
    heads
        .iter()
        .filter(|&&(d, _)| d != domain)
        .map(|&(d, t)| if d.is_global() { t } else { t + lookahead })
        .min()
}

/// Deterministic discrete-event simulation engine.
///
/// Also carries the run-wide seeded RNG and the event trace so that
/// components only ever need an `&mut Engine` to advance the world.
pub struct Engine {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    executed: u64,
    mode: EngineMode,
    /// Minimum registered cross-domain propagation delay; see
    /// [`Engine::note_lookahead`]. `None` until a component registers.
    lookahead: Option<SimDuration>,
    /// Mirror heap of *unprepared split* events — only maintained in
    /// parallel mode (rebuilt on a mode switch), drained by batches.
    par_queue: BinaryHeap<Entry>,
    /// Unprepared split events currently pending (cheap batch guard).
    unprepared: usize,
    /// Parallel-stage statistics (plain fields, not metrics: parallel
    /// bookkeeping must not perturb the metrics snapshot the differential
    /// tier compares).
    par_batches: u64,
    par_prepared: u64,
    /// Seeded random source shared by all stochastic models in the run.
    pub rng: SimRng,
    /// Structured event trace (cheap no-op unless enabled).
    pub trace: Trace,
    /// Run-wide metrics registry (cheap no-op unless enabled).
    pub metrics: MetricsRegistry,
    /// Engine flight recorder: host-side-only observation of the engine
    /// itself (batch timing, occupancy, stalls, high-water marks). Never
    /// read by the simulation — see `crate::telemetry`.
    pub telemetry: EngineTelemetry,
}

impl Engine {
    /// New engine at t=0 with the given RNG seed, in the thread's default
    /// mode (see [`Engine::set_default_mode`] / [`EngineMode::from_env`]).
    pub fn new(seed: u64) -> Self {
        let mode = DEFAULT_MODE
            .with(Cell::get)
            .unwrap_or_else(EngineMode::from_env);
        let mut telemetry = EngineTelemetry::new();
        if DEFAULT_TELEMETRY
            .with(Cell::get)
            .unwrap_or_else(telemetry_from_env)
        {
            telemetry.enable();
        }
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            executed: 0,
            mode,
            lookahead: None,
            par_queue: BinaryHeap::new(),
            unprepared: 0,
            par_batches: 0,
            par_prepared: 0,
            rng: SimRng::new(seed),
            trace: Trace::disabled(),
            metrics: MetricsRegistry::disabled(),
            telemetry,
        }
    }

    /// Engine with observability (trace + metrics) enabled — handy in
    /// tests, examples and the experiment harness. Instrumentation is pure
    /// recording, so a run behaves identically either way.
    pub fn with_trace(seed: u64) -> Self {
        let mut e = Engine::new(seed);
        e.trace = Trace::enabled();
        e.metrics = MetricsRegistry::enabled();
        e
    }

    /// Set the default [`EngineMode`] for engines subsequently created on
    /// *this thread* (`None` restores the environment-derived default).
    /// Tests use this to run identical scenario code under both modes.
    pub fn set_default_mode(mode: Option<EngineMode>) {
        DEFAULT_MODE.with(|m| m.set(mode));
    }

    /// Set whether engines subsequently created on *this thread* start
    /// with the flight recorder enabled (`None` restores the
    /// `RP_TELEMETRY` environment default). The differential tier proves
    /// this can never change what a run computes.
    pub fn set_default_telemetry(on: Option<bool>) {
        DEFAULT_TELEMETRY.with(|t| t.set(on));
    }

    /// Enable the flight recorder on this engine (idempotent).
    pub fn enable_telemetry(&mut self) {
        self.telemetry.enable();
    }

    /// Freeze the flight recorder into a mergeable
    /// [`TelemetrySnapshot`], folding in the engine's parallel counters
    /// (which are maintained even with the recorder off).
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot(self.par_batches, self.par_prepared)
    }

    /// Current execution mode.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Switch execution mode. Safe at any point: the unprepared-split
    /// index is rebuilt from the slab, and mode never changes results.
    pub fn set_mode(&mut self, mode: EngineMode) {
        self.mode = mode;
        self.par_queue.clear();
        if matches!(self.mode, EngineMode::Parallel { .. }) {
            for (i, s) in self.slots.iter().enumerate() {
                if let Some(Payload::Split { prep: Some(_), .. }) = &s.payload {
                    self.par_queue.push(Entry {
                        time: s.time,
                        seq: s.seq,
                        slot: i as u32,
                        domain: s.domain,
                    });
                }
            }
        }
    }

    /// Register a cross-domain propagation delay (link latency, heartbeat
    /// period, store round trip): the engine keeps the minimum as its
    /// lookahead. A wider lookahead admits deeper prepare batches; it can
    /// never affect results (application order is always `(time, seq)`),
    /// only how much work each parallel batch carries.
    pub fn note_lookahead(&mut self, delay: SimDuration) {
        self.note_lookahead_from("unlabeled", delay);
    }

    /// [`Engine::note_lookahead`] with a source label, so the flight
    /// recorder can report which component's delay is the binding
    /// constraint on the batch horizon. The label is pure bookkeeping;
    /// the registered lookahead is identical either way.
    pub fn note_lookahead_from(&mut self, source: &'static str, delay: SimDuration) {
        self.telemetry.note_lookahead_source(source, delay);
        self.lookahead = Some(match self.lookahead {
            Some(cur) => cur.min(delay),
            None => delay,
        });
    }

    /// The registered lookahead, if any component reported one.
    pub fn lookahead(&self) -> Option<SimDuration> {
        self.lookahead
    }

    /// Parallel prepare batches executed so far.
    pub fn par_batches(&self) -> u64 {
        self.par_batches
    }

    /// Split events prepared by worker batches so far (inline-prepared
    /// events in serial mode do not count).
    pub fn par_prepared(&self) -> u64 {
        self.par_prepared
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (including tombstoned ones).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total slab slots ever allocated. With free-list reuse this is the
    /// peak number of simultaneously pending events, not the number of
    /// events scheduled — the scale gate asserts it stays bounded.
    pub fn slab_len(&self) -> usize {
        self.slots.len()
    }

    fn insert(&mut self, time: SimTime, domain: Domain, payload: Payload) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let is_split = matches!(payload, Payload::Split { .. });
        let slot_val = Slot {
            seq,
            domain,
            time,
            payload: Some(payload),
        };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = slot_val;
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event slab overflow");
                self.slots.push(slot_val);
                slot
            }
        };
        let entry = Entry {
            time,
            seq,
            slot,
            domain,
        };
        self.queue.push(entry);
        if is_split {
            self.unprepared += 1;
            if matches!(self.mode, EngineMode::Parallel { .. }) {
                self.par_queue.push(entry);
            }
        }
        EventId { slot, seq }
    }

    /// Schedule an event at an absolute time (must not be in the past).
    pub fn schedule_at(&mut self, time: SimTime, f: impl FnOnce(&mut Engine) + 'static) -> EventId {
        self.schedule_at_domain(time, Domain::GLOBAL, f)
    }

    /// [`Engine::schedule_at`] with an explicit [`Domain`] tag.
    pub fn schedule_at_domain(
        &mut self,
        time: SimTime,
        domain: Domain,
        f: impl FnOnce(&mut Engine) + 'static,
    ) -> EventId {
        self.insert(time, domain, Payload::Closure(Box::new(f)))
    }

    /// Schedule an event after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut Engine) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, f)
    }

    /// [`Engine::schedule_in`] with an explicit [`Domain`] tag.
    pub fn schedule_in_domain(
        &mut self,
        delay: SimDuration,
        domain: Domain,
        f: impl FnOnce(&mut Engine) + 'static,
    ) -> EventId {
        self.schedule_at_domain(self.now + delay, domain, f)
    }

    /// Schedule at the current instant (runs after all already-queued events
    /// for this instant — FIFO within a timestamp).
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut Engine) + 'static) -> EventId {
        self.schedule_at(self.now, f)
    }

    /// Schedule a **split event**: `prep` is a pure `Send` function of its
    /// captures (it cannot see the engine, so it cannot observe — or leak
    /// — execution order), `apply` consumes its output on the main thread
    /// at the event's `(time, seq)` turn. In parallel mode `prep` may run
    /// on a worker thread any time from the enclosing safe-horizon batch;
    /// in serial mode it runs inline at apply time. Results are identical
    /// by construction.
    pub fn schedule_split_at<T: Send + 'static>(
        &mut self,
        time: SimTime,
        domain: Domain,
        prep: impl FnOnce() -> T + Send + 'static,
        apply: impl FnOnce(&mut Engine, T) + 'static,
    ) -> EventId {
        let prep: PrepFn = Box::new(move || Box::new(prep()) as PrepOut);
        let apply: SplitApplyFn = Box::new(move |eng, out| {
            let out = out
                .downcast::<T>()
                .expect("split event output type mismatch");
            apply(eng, *out);
        });
        self.insert(
            time,
            domain,
            Payload::Split {
                prep: Some(prep),
                out: None,
                apply,
            },
        )
    }

    /// [`Engine::schedule_split_at`] after a relative delay.
    pub fn schedule_split_in<T: Send + 'static>(
        &mut self,
        delay: SimDuration,
        domain: Domain,
        prep: impl FnOnce() -> T + Send + 'static,
        apply: impl FnOnce(&mut Engine, T) + 'static,
    ) -> EventId {
        self.schedule_split_at(self.now + delay, domain, prep, apply)
    }

    /// Cancel a previously scheduled event. Cancelling an event that already
    /// ran (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        // The generation check makes stale ids harmless: once the event
        // ran, its slot is free (or re-occupied under a different seq).
        if let Some(slot) = self.slots.get_mut(id.slot as usize) {
            if slot.seq == id.seq {
                if let Some(Payload::Split { prep: Some(_), .. }) = &slot.payload {
                    self.unprepared -= 1;
                }
                slot.payload = None;
            }
        }
    }

    /// Free `entry`'s slab slot and return its payload (`None` if the
    /// event was cancelled).
    fn release(&mut self, entry: Entry) -> Option<Payload> {
        let slot = &mut self.slots[entry.slot as usize];
        debug_assert_eq!(slot.seq, entry.seq, "heap entry aliases a recycled slot");
        let payload = slot.payload.take();
        self.free.push(entry.slot);
        payload
    }

    /// Execute the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        while let Some(entry) = self.queue.pop() {
            let Some(payload) = self.release(entry) else {
                continue; // cancelled
            };
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.now = entry.time;
            self.executed += 1;
            if self.telemetry.is_enabled() {
                let live = self.trace.live_spans();
                self.telemetry
                    .on_apply(entry.domain.0, self.slots.len(), live);
            }
            match payload {
                Payload::Closure(f) => f(self),
                Payload::Split { prep, out, apply } => {
                    let out = match out {
                        Some(out) => out,
                        None => {
                            // Unprepared (serial mode, or outside every
                            // batch horizon): run the pure prep inline.
                            self.unprepared -= 1;
                            (prep.expect("split event without prep or output"))()
                        }
                    };
                    apply(self, out);
                }
            }
            return true;
        }
        false
    }

    /// The batch horizon for the current queue state: the next pending
    /// event's time, extended by the registered lookahead unless that next
    /// event is global (a global event may affect any domain instantly, so
    /// speculation past it is pointless). `None` on an empty queue.
    fn batch_horizon(&self) -> Option<SimTime> {
        let head = self.queue.peek()?;
        Some(match self.lookahead {
            Some(l) if !head.domain.is_global() => head.time + l,
            _ => head.time,
        })
    }

    /// Collect every unprepared split event at or before the safe horizon
    /// and run their prepare closures on `threads` scoped workers, whole
    /// domains assigned round-robin in domain-id order. Outputs are stored
    /// back into the slab for the (serial, deterministic) apply loop.
    fn prepare_batch(&mut self, threads: usize) {
        if self.unprepared == 0 {
            return;
        }
        let horizon = self.batch_horizon();
        if self.telemetry.is_enabled() {
            // Stall accounting: how the horizon came out for this attempt.
            let outcome = match horizon {
                None => HorizonOutcome::NoHorizon,
                Some(_) => {
                    let extended = self.lookahead.is_some()
                        && self.queue.peek().is_some_and(|e| !e.domain.is_global());
                    if extended {
                        HorizonOutcome::Extended
                    } else {
                        HorizonOutcome::Clamped
                    }
                }
            };
            self.telemetry.note_batch_attempt(outcome);
        }
        let Some(horizon) = horizon else {
            return;
        };
        if self.par_queue.peek().is_none_or(|e| e.time > horizon) {
            self.telemetry.note_empty_batch();
            return;
        }
        let timer = self.telemetry.start_batch_timer();
        // Group admissible prep closures by domain; pops arrive in
        // (time, seq) order, so each domain's vector is ordered too.
        let mut by_domain: BTreeMap<Domain, Vec<(u32, PrepFn)>> = BTreeMap::new();
        let mut batched = 0usize;
        while let Some(&e) = self.par_queue.peek() {
            if e.time > horizon {
                break;
            }
            self.par_queue.pop();
            let slot = &mut self.slots[e.slot as usize];
            if slot.seq != e.seq {
                continue; // event already ran; slot recycled
            }
            let Some(Payload::Split { prep, .. }) = slot.payload.as_mut() else {
                continue; // cancelled
            };
            let Some(prep) = prep.take() else {
                continue; // already prepared
            };
            self.unprepared -= 1;
            batched += 1;
            by_domain.entry(e.domain).or_default().push((e.slot, prep));
        }
        if batched == 0 {
            self.telemetry.note_empty_batch();
            return;
        }
        self.par_batches += 1;
        self.par_prepared += batched as u64;
        // Round-robin whole domains onto workers in domain-id order. The
        // assignment is a pure function of the batch, and outputs are
        // keyed by slot — thread interleaving cannot reorder anything.
        let threads = threads.max(1).min(by_domain.len());
        let mut buckets: Vec<Vec<(u32, PrepFn)>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, (_, group)) in by_domain.into_iter().enumerate() {
            buckets[i % threads].extend(group);
        }
        let outputs: Vec<Vec<(u32, PrepOut)>> = if threads == 1 {
            buckets
                .into_iter()
                .map(|b| b.into_iter().map(|(s, p)| (s, p())).collect())
                .collect()
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        scope.spawn(move || {
                            bucket
                                .into_iter()
                                .map(|(slot, prep)| (slot, prep()))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("prepare worker panicked"))
                    .collect()
            })
        };
        for (slot, value) in outputs.into_iter().flatten() {
            if let Some(Payload::Split { out, .. }) = self.slots[slot as usize].payload.as_mut() {
                *out = Some(value);
            }
            // A cancel between batch collection and write-back tombstoned
            // the payload; the prepared output is simply dropped.
        }
        self.telemetry.finish_batch(timer, batched as u64);
    }

    /// Run until no events remain; returns the final virtual time. In
    /// parallel mode, prepare batches are interleaved with the
    /// deterministic apply loop.
    pub fn run(&mut self) -> SimTime {
        loop {
            if let EngineMode::Parallel { threads } = self.mode {
                self.prepare_batch(threads);
            }
            if !self.step() {
                break;
            }
        }
        self.now
    }

    /// Run events with `time <= until`, then advance the clock to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            let next = loop {
                match self.queue.peek().copied() {
                    Some(e) if self.slots[e.slot as usize].payload.is_none() => {
                        // Cancelled: drop it and free the slot.
                        self.queue.pop();
                        self.release(e);
                    }
                    Some(e) => break Some(e.time),
                    None => break None,
                }
            };
            match next {
                Some(t) if t <= until => {
                    self.step();
                }
                _ => break,
            }
        }
        if until > self.now {
            self.now = until;
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("mode", &self.mode)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut e = Engine::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (t, tag) in [(3u64, 'c'), (1, 'a'), (2, 'b')] {
            let log = log.clone();
            e.schedule_at(SimTime(t), move |_| log.borrow_mut().push(tag));
        }
        e.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut e = Engine::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..5 {
            let log = log.clone();
            e.schedule_at(SimTime(10), move |_| log.borrow_mut().push(tag));
        }
        e.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_scheduling_advances_clock() {
        let mut e = Engine::new(1);
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        e.schedule_in(SimDuration::from_secs(1), move |eng| {
            h.borrow_mut().push(eng.now());
            let h2 = h.clone();
            eng.schedule_in(SimDuration::from_secs(2), move |eng| {
                h2.borrow_mut().push(eng.now());
            });
        });
        let end = e.run();
        assert_eq!(
            *hits.borrow(),
            vec![SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(3.0)]
        );
        assert_eq!(end, SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut e = Engine::new(1);
        let hit = Rc::new(RefCell::new(false));
        let h = hit.clone();
        let id = e.schedule_in(SimDuration::from_secs(1), move |_| {
            *h.borrow_mut() = true;
        });
        e.cancel(id);
        e.run();
        assert!(!*hit.borrow());
        assert_eq!(e.events_executed(), 0);
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut e = Engine::new(1);
        let count = Rc::new(RefCell::new(0));
        for t in 1..=10u64 {
            let c = count.clone();
            e.schedule_at(SimTime::from_secs_f64(t as f64), move |_| {
                *c.borrow_mut() += 1;
            });
        }
        e.run_until(SimTime::from_secs_f64(5.0));
        assert_eq!(*count.borrow(), 5);
        assert_eq!(e.now(), SimTime::from_secs_f64(5.0));
        e.run();
        assert_eq!(*count.borrow(), 10);
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new(1);
        e.schedule_at(SimTime::from_secs_f64(5.0), |_| {});
        e.run();
        e.schedule_at(SimTime::from_secs_f64(1.0), |_| {});
    }

    #[test]
    fn schedule_now_is_fifo_at_instant() {
        let mut e = Engine::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l1 = log.clone();
        let l0 = log.clone();
        e.schedule_now(move |eng| {
            l0.borrow_mut().push(0);
            let l = l1.clone();
            eng.schedule_now(move |_| l.borrow_mut().push(2));
        });
        let l = log.clone();
        e.schedule_now(move |_| l.borrow_mut().push(1));
        e.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2]);
    }

    /// A mixed closure/split workload whose apply order is recorded.
    fn split_workload(mode: EngineMode) -> (Vec<String>, Engine) {
        Engine::set_default_mode(Some(mode));
        let mut e = Engine::new(1);
        Engine::set_default_mode(None);
        e.note_lookahead(SimDuration::from_secs(5));
        let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..20u32 {
            let domain = Domain::from_parts(1, (i % 4) as u16 + 1);
            let t = SimTime::from_secs_f64(1.0 + (i % 7) as f64);
            let l = log.clone();
            e.schedule_split_at(
                t,
                domain,
                move || format!("split {i} in {domain:?}"),
                move |eng, s: String| l.borrow_mut().push(format!("{s} @ {}", eng.now())),
            );
            if i % 5 == 0 {
                let l = log.clone();
                e.schedule_at(t, move |eng| {
                    l.borrow_mut().push(format!("closure {i} @ {}", eng.now()))
                });
            }
        }
        e.run();
        let out = log.borrow().clone();
        (out, e)
    }

    #[test]
    fn split_events_identical_across_modes_and_thread_counts() {
        let (serial, se) = split_workload(EngineMode::Serial);
        assert_eq!(se.par_batches(), 0, "serial mode must not batch");
        for threads in [1, 2, 4, 8] {
            let (par, pe) = split_workload(EngineMode::parallel(threads));
            assert_eq!(serial, par, "parallel({threads}) diverged from serial");
            assert!(
                pe.par_prepared() > 0,
                "parallel({threads}) never exercised the prepare path"
            );
        }
    }

    #[test]
    fn split_prep_runs_inline_in_serial_mode() {
        Engine::set_default_mode(Some(EngineMode::Serial));
        let mut e = Engine::new(1);
        Engine::set_default_mode(None);
        let got = Rc::new(RefCell::new(0u64));
        let g = got.clone();
        e.schedule_split_in(
            SimDuration::from_secs(1),
            Domain(3),
            || 6u64 * 7,
            move |_, v| *g.borrow_mut() = v,
        );
        e.run();
        assert_eq!(*got.borrow(), 42);
        assert_eq!(e.par_prepared(), 0);
    }

    #[test]
    fn cancelled_split_event_never_prepares_or_applies() {
        for mode in [EngineMode::Serial, EngineMode::parallel(2)] {
            Engine::set_default_mode(Some(mode));
            let mut e = Engine::new(1);
            Engine::set_default_mode(None);
            let hit = Rc::new(RefCell::new(false));
            let h = hit.clone();
            let id = e.schedule_split_in(
                SimDuration::from_secs(1),
                Domain(1),
                || 1u8,
                move |_, _| *h.borrow_mut() = true,
            );
            e.cancel(id);
            e.run();
            assert!(!*hit.borrow(), "{mode:?}: cancelled split applied");
            assert_eq!(e.events_executed(), 0);
        }
    }

    #[test]
    fn mode_switch_rebuilds_split_index() {
        Engine::set_default_mode(Some(EngineMode::Serial));
        let mut e = Engine::new(1);
        Engine::set_default_mode(None);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..6u32 {
            let l = log.clone();
            e.schedule_split_at(
                SimTime::from_secs_f64(1.0 + i as f64),
                Domain(1 + i % 2),
                move || i * 10,
                move |_, v| l.borrow_mut().push(v),
            );
        }
        // Switch to parallel *after* scheduling: the index must pick the
        // pending splits up from the slab.
        e.set_mode(EngineMode::parallel(2));
        e.note_lookahead(SimDuration::from_secs(10));
        e.run();
        assert_eq!(*log.borrow(), vec![0, 10, 20, 30, 40, 50]);
        assert!(e.par_prepared() > 0);
    }

    #[test]
    fn safe_horizon_math() {
        let l = SimDuration::from_secs(2);
        let heads = [
            (Domain(1), SimTime::from_secs_f64(10.0)),
            (Domain(2), SimTime::from_secs_f64(5.0)),
            (Domain::GLOBAL, SimTime::from_secs_f64(8.0)),
        ];
        // For domain 1: min(5+2, 8) = 7; the global head caps at its own
        // time, the cross head extends by lookahead.
        assert_eq!(
            safe_horizon(Domain(1), &heads, l),
            Some(SimTime::from_secs_f64(7.0))
        );
        // For domain 2: min(10+2, 8) = 8.
        assert_eq!(
            safe_horizon(Domain(2), &heads, l),
            Some(SimTime::from_secs_f64(8.0))
        );
        // Own head never constrains: a lone domain is unbounded.
        assert_eq!(safe_horizon(Domain(1), &[(Domain(1), SimTime(5))], l), None);
    }
}
