//! The discrete-event engine.
//!
//! The engine is a sequential event loop over virtual time. Events are
//! arbitrary `FnOnce(&mut Engine)` closures; components live in
//! `Rc<RefCell<_>>` handles captured by those closures. Ties in time are
//! broken by a monotonically increasing sequence number, so a run is fully
//! deterministic given the same schedule of events and RNG seed.
//!
//! ## Slab-backed queue
//!
//! Closures live in a slab (`Vec<Slot>` + LIFO free list); the binary heap
//! orders small `Copy` entries `(time, seq, slot)`. Scheduling reuses a
//! freed slot instead of growing, so a steady-state run touches a bounded
//! working set no matter how many events it executes. Invariants:
//!
//! * exactly one heap entry exists per occupied slot — a slot is occupied
//!   by `schedule_*` and freed only when its heap entry pops;
//! * cancellation tombstones the slot's closure (`f = None`) without
//!   freeing it, so a slot can never be re-used while its heap entry is
//!   still pending — an [`EventId`]'s `(slot, seq)` pair therefore never
//!   aliases a different live event;
//! * the free list is a `Vec` (LIFO), so slot assignment is a pure
//!   function of the event sequence — replays are bit-identical.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::metrics::MetricsRegistry;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Identifier of a scheduled event, usable for cancellation. Generational:
/// the `(slot, seq)` pair identifies one scheduling, so cancelling after
/// the slot was recycled is a detectable no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    seq: u64,
}

type EventFn = Box<dyn FnOnce(&mut Engine)>;

/// Slab cell: the generation (`seq`) of the event occupying it plus its
/// closure. `f == None` on an occupied slot means cancelled.
struct Slot {
    seq: u64,
    f: Option<EventFn>,
}

/// Heap entry: ordering key plus the slab slot holding the closure.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Entry {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Deterministic discrete-event simulation engine.
///
/// Also carries the run-wide seeded RNG and the event trace so that
/// components only ever need an `&mut Engine` to advance the world.
pub struct Engine {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Entry>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    executed: u64,
    /// Seeded random source shared by all stochastic models in the run.
    pub rng: SimRng,
    /// Structured event trace (cheap no-op unless enabled).
    pub trace: Trace,
    /// Run-wide metrics registry (cheap no-op unless enabled).
    pub metrics: MetricsRegistry,
}

impl Engine {
    /// New engine at t=0 with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            executed: 0,
            rng: SimRng::new(seed),
            trace: Trace::disabled(),
            metrics: MetricsRegistry::disabled(),
        }
    }

    /// Engine with observability (trace + metrics) enabled — handy in
    /// tests, examples and the experiment harness. Instrumentation is pure
    /// recording, so a run behaves identically either way.
    pub fn with_trace(seed: u64) -> Self {
        let mut e = Engine::new(seed);
        e.trace = Trace::enabled();
        e.metrics = MetricsRegistry::enabled();
        e
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (including tombstoned ones).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total slab slots ever allocated. With free-list reuse this is the
    /// peak number of simultaneously pending events, not the number of
    /// events scheduled — the scale gate asserts it stays bounded.
    pub fn slab_len(&self) -> usize {
        self.slots.len()
    }

    /// Schedule an event at an absolute time (must not be in the past).
    pub fn schedule_at(&mut self, time: SimTime, f: impl FnOnce(&mut Engine) + 'static) -> EventId {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let f = Some(Box::new(f) as EventFn);
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Slot { seq, f };
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("event slab overflow");
                self.slots.push(Slot { seq, f });
                slot
            }
        };
        self.queue.push(Entry { time, seq, slot });
        EventId { slot, seq }
    }

    /// Schedule an event after a relative delay.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        f: impl FnOnce(&mut Engine) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule at the current instant (runs after all already-queued events
    /// for this instant — FIFO within a timestamp).
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut Engine) + 'static) -> EventId {
        self.schedule_at(self.now, f)
    }

    /// Cancel a previously scheduled event. Cancelling an event that already
    /// ran (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        // The generation check makes stale ids harmless: once the event
        // ran, its slot is free (or re-occupied under a different seq).
        if let Some(slot) = self.slots.get_mut(id.slot as usize) {
            if slot.seq == id.seq {
                slot.f = None;
            }
        }
    }

    /// Free `entry`'s slab slot and return its closure (`None` if the
    /// event was cancelled).
    fn release(&mut self, entry: Entry) -> Option<EventFn> {
        let slot = &mut self.slots[entry.slot as usize];
        debug_assert_eq!(slot.seq, entry.seq, "heap entry aliases a recycled slot");
        let f = slot.f.take();
        self.free.push(entry.slot);
        f
    }

    /// Execute the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        while let Some(entry) = self.queue.pop() {
            let Some(f) = self.release(entry) else {
                continue; // cancelled
            };
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.now = entry.time;
            self.executed += 1;
            f(self);
            return true;
        }
        false
    }

    /// Run until no events remain; returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run events with `time <= until`, then advance the clock to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            let next = loop {
                match self.queue.peek().copied() {
                    Some(e) if self.slots[e.slot as usize].f.is_none() => {
                        // Cancelled: drop it and free the slot.
                        self.queue.pop();
                        self.release(e);
                    }
                    Some(e) => break Some(e.time),
                    None => break None,
                }
            };
            match next {
                Some(t) if t <= until => {
                    self.step();
                }
                _ => break,
            }
        }
        if until > self.now {
            self.now = until;
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("executed", &self.executed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let mut e = Engine::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for (t, tag) in [(3u64, 'c'), (1, 'a'), (2, 'b')] {
            let log = log.clone();
            e.schedule_at(SimTime(t), move |_| log.borrow_mut().push(tag));
        }
        e.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut e = Engine::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for tag in 0..5 {
            let log = log.clone();
            e.schedule_at(SimTime(10), move |_| log.borrow_mut().push(tag));
        }
        e.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nested_scheduling_advances_clock() {
        let mut e = Engine::new(1);
        let hits = Rc::new(RefCell::new(Vec::new()));
        let h = hits.clone();
        e.schedule_in(SimDuration::from_secs(1), move |eng| {
            h.borrow_mut().push(eng.now());
            let h2 = h.clone();
            eng.schedule_in(SimDuration::from_secs(2), move |eng| {
                h2.borrow_mut().push(eng.now());
            });
        });
        let end = e.run();
        assert_eq!(
            *hits.borrow(),
            vec![SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(3.0)]
        );
        assert_eq!(end, SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut e = Engine::new(1);
        let hit = Rc::new(RefCell::new(false));
        let h = hit.clone();
        let id = e.schedule_in(SimDuration::from_secs(1), move |_| {
            *h.borrow_mut() = true;
        });
        e.cancel(id);
        e.run();
        assert!(!*hit.borrow());
        assert_eq!(e.events_executed(), 0);
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut e = Engine::new(1);
        let count = Rc::new(RefCell::new(0));
        for t in 1..=10u64 {
            let c = count.clone();
            e.schedule_at(SimTime::from_secs_f64(t as f64), move |_| {
                *c.borrow_mut() += 1;
            });
        }
        e.run_until(SimTime::from_secs_f64(5.0));
        assert_eq!(*count.borrow(), 5);
        assert_eq!(e.now(), SimTime::from_secs_f64(5.0));
        e.run();
        assert_eq!(*count.borrow(), 10);
    }

    #[test]
    #[should_panic]
    fn scheduling_into_past_panics() {
        let mut e = Engine::new(1);
        e.schedule_at(SimTime::from_secs_f64(5.0), |_| {});
        e.run();
        e.schedule_at(SimTime::from_secs_f64(1.0), |_| {});
    }

    #[test]
    fn schedule_now_is_fifo_at_instant() {
        let mut e = Engine::new(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        let l1 = log.clone();
        let l0 = log.clone();
        e.schedule_now(move |eng| {
            l0.borrow_mut().push(0);
            let l = l1.clone();
            eng.schedule_now(move |_| l.borrow_mut().push(2));
        });
        let l = log.clone();
        e.schedule_now(move |_| l.borrow_mut().push(1));
        e.run();
        assert_eq!(*log.borrow(), vec![0, 1, 2]);
    }
}
