//! String interning for hot-path labels.
//!
//! Span names, attribute keys/values and phase labels repeat across every
//! unit in a run; at 100k units the per-span `String` copies dominated the
//! trace's memory footprint. A [`SymbolTable`] maps each distinct string to
//! a dense `u32` [`Symbol`] once, so spans carry 4-byte ids and comparisons
//! are integer equality.
//!
//! Determinism: symbol ids are assigned in first-intern order, which is a
//! pure function of the (deterministic) event sequence — two runs with the
//! same seed produce identical id assignments, so comparing `Symbol`s
//! across same-seed runs is exact. Tables are per-[`crate::trace::Trace`]
//! (never global): a process-wide table's ids would depend on test
//! interleaving across threads and break bit-identical replay comparisons.

use std::collections::BTreeMap;

/// Interned string id. `Symbol::NONE` (0) is the empty string, reserved so
/// synthetic nodes (e.g. the critical-path virtual root) have a stable id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    pub const NONE: Symbol = Symbol(0);

    /// Dense index of this symbol in its table (0 = empty string).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only intern table: `&str -> Symbol` with O(log n) intern and
/// O(1) resolve. Ids are dense (0..len), so per-symbol side tables can be
/// plain `Vec`s indexed by [`Symbol::index`].
#[derive(Debug, Clone)]
pub struct SymbolTable {
    names: Vec<String>,
    index: BTreeMap<String, u32>,
}

impl Default for SymbolTable {
    fn default() -> Self {
        SymbolTable::new()
    }
}

impl SymbolTable {
    pub fn new() -> SymbolTable {
        SymbolTable {
            names: vec![String::new()],
            index: [(String::new(), 0)].into_iter().collect(),
        }
    }

    /// Intern `s`, returning the existing id if already present.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&id) = self.index.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(self.names.len()).expect("symbol table overflow");
        self.names.push(s.to_string());
        self.index.insert(s.to_string(), id);
        Symbol(id)
    }

    /// The string behind `sym`. Panics on a symbol from another table
    /// whose id is out of range.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Id of `s` if it was ever interned (read-only probe).
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.index.get(s).map(|&id| Symbol(id))
    }

    /// Number of distinct symbols, including the reserved empty string.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        false // the empty string is always present
    }

    /// All interned strings in id order (index = `Symbol::index`).
    pub fn names(&self) -> &[String] {
        &self.names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern("unit.run");
        let b = t.intern("unit.exec");
        assert_eq!(t.intern("unit.run"), a);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "unit.run");
        assert_eq!(t.resolve(b), "unit.exec");
        assert_eq!(t.len(), 3);
        assert_eq!(a.index(), 1);
        assert_eq!(b.index(), 2);
    }

    #[test]
    fn empty_string_is_reserved() {
        let mut t = SymbolTable::new();
        assert_eq!(t.intern(""), Symbol::NONE);
        assert_eq!(t.resolve(Symbol::NONE), "");
        assert_eq!(t.lookup(""), Some(Symbol::NONE));
        assert_eq!(t.lookup("missing"), None);
    }
}
