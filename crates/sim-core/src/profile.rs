//! Virtual-time phase profiler.
//!
//! Walks a span tree recorded by [`crate::trace::Trace`] and attributes
//! every microsecond of a root span's wall-clock to one of the paper's
//! phases (Fig. 5's startup decomposition plus the MapReduce stages).
//!
//! Attribution rule: the root interval is swept over the elementary
//! intervals induced by all span boundaries in the subtree; each interval
//! is charged to the **deepest** span active over it (ties broken by later
//! begin, then higher id — so a span opened later wins over a still-open
//! sibling). The chosen span's phase is its own mapping, or the nearest
//! mapped ancestor's; intervals covered by no mapped span are charged to
//! [`Phase::Overhead`]. Because boundaries are exact integer microseconds
//! the per-phase durations always sum exactly to the root's wall-clock —
//! no phase is double-counted and nothing is lost.
//!
//! Open (never-ended) spans — e.g. attempts abandoned by an injected node
//! crash — are ignored.
//!
//! Scaling: a [`Profiler`] is built once per analysis — one O(n) pass over
//! the streamed chunks for the parent→children index
//! ([`crate::trace::SpanIndex`]) plus an O(#symbols) name→phase table —
//! after which each subtree profile touches only its own spans. The legacy
//! walk rescanned the whole materialized span list per frontier node,
//! which was quadratic on scale runs.

use crate::time::SimDuration;
use crate::trace::{Span, SpanId, SpanIndex, Trace};

/// The paper's timing phases (Fig. 5 / Fig. 5 inset / Fig. 6 stages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Batch-queue wait of the pilot job, or a unit waiting to be scheduled.
    QueueWait,
    /// Pilot/agent bootstrap outside the framework startup proper.
    PilotBootstrap,
    /// Hadoop YARN daemon startup (Mode I) or cluster connect (Mode II).
    YarnStartup,
    /// HDFS format + daemon startup (Mode I only).
    HdfsStartup,
    /// YARN ApplicationMaster allocation (first stage of CU startup).
    AmAllocation,
    /// YARN task-container allocation (second stage of CU startup).
    ContainerAllocation,
    /// Input staging.
    StageIn,
    /// Task compute (includes MapReduce map and reduce work).
    Compute,
    /// MapReduce shuffle.
    Shuffle,
    /// Output staging.
    StageOut,
    /// Anything not covered by a mapped span (spawner waits, launch
    /// overheads, coordination latency, post-bootstrap idle...).
    Overhead,
}

impl Phase {
    pub const ALL: [Phase; 11] = [
        Phase::QueueWait,
        Phase::PilotBootstrap,
        Phase::YarnStartup,
        Phase::HdfsStartup,
        Phase::AmAllocation,
        Phase::ContainerAllocation,
        Phase::StageIn,
        Phase::Compute,
        Phase::Shuffle,
        Phase::StageOut,
        Phase::Overhead,
    ];

    pub fn label(self) -> &'static str {
        match self {
            Phase::QueueWait => "queue_wait",
            Phase::PilotBootstrap => "pilot_bootstrap",
            Phase::YarnStartup => "yarn_startup",
            Phase::HdfsStartup => "hdfs_startup",
            Phase::AmAllocation => "am_allocation",
            Phase::ContainerAllocation => "container_allocation",
            Phase::StageIn => "stage_in",
            Phase::Compute => "compute",
            Phase::Shuffle => "shuffle",
            Phase::StageOut => "stage_out",
            Phase::Overhead => "overhead",
        }
    }

    /// Phase a span name maps to, if any. Unmapped spans inherit the
    /// nearest mapped ancestor's phase.
    pub fn of_span(name: &str) -> Option<Phase> {
        Some(match name {
            "pilot.queue_wait" | "unit.scheduling" => Phase::QueueWait,
            "pilot.bootstrap" => Phase::PilotBootstrap,
            "yarn.startup" => Phase::YarnStartup,
            "hdfs.startup" => Phase::HdfsStartup,
            "yarn.am_allocation" => Phase::AmAllocation,
            "yarn.container_allocation" => Phase::ContainerAllocation,
            "unit.stage_in" => Phase::StageIn,
            "unit.compute" | "mr.map" | "mr.reduce" => Phase::Compute,
            "mr.shuffle" => Phase::Shuffle,
            "unit.stage_out" => Phase::StageOut,
            _ => return None,
        })
    }

    fn index(self) -> usize {
        Phase::ALL.iter().position(|&p| p == self).unwrap()
    }
}

/// Wall-clock of one root span split by phase. `total` is the root span's
/// duration; the per-phase durations sum to it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseBreakdown {
    pub total: SimDuration,
    durations: [SimDuration; 11],
}

impl PhaseBreakdown {
    pub fn get(&self, phase: Phase) -> SimDuration {
        self.durations[phase.index()]
    }

    pub fn secs(&self, phase: Phase) -> f64 {
        self.get(phase).as_secs_f64()
    }

    pub fn total_secs(&self) -> f64 {
        self.total.as_secs_f64()
    }

    /// Sum of a set of phases, in seconds.
    pub fn sum_secs(&self, phases: &[Phase]) -> f64 {
        phases.iter().map(|&p| self.secs(p)).sum()
    }

    /// Merge another breakdown into this one (for aggregating many units).
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        self.total = SimDuration(self.total.0 + other.total.0);
        for i in 0..self.durations.len() {
            self.durations[i] = SimDuration(self.durations[i].0 + other.durations[i].0);
        }
    }

    pub(crate) fn charge(&mut self, phase: Phase, d: u64) {
        self.durations[phase.index()].0 += d;
        self.total.0 += d;
    }
}

/// Reusable analysis context over one trace: the CSR children index plus a
/// symbol-id → phase table, built in one pass each. Resolving a span's
/// phase is then an array lookup (integer symbol id), not a string match.
pub struct Profiler<'a> {
    trace: &'a Trace,
    index: SpanIndex,
    phase_of_sym: Vec<Option<Phase>>,
}

impl<'a> Profiler<'a> {
    pub fn new(trace: &'a Trace) -> Profiler<'a> {
        let index = SpanIndex::build(trace);
        let phase_of_sym = trace
            .symbols()
            .names()
            .iter()
            .map(|n| Phase::of_span(n))
            .collect();
        Profiler {
            trace,
            index,
            phase_of_sym,
        }
    }

    pub fn trace(&self) -> &'a Trace {
        self.trace
    }

    /// Direct (tree) children of `id`, in id order.
    pub fn children(&self, id: SpanId) -> &[SpanId] {
        self.index.children(id)
    }

    /// A span's own phase mapping, if any.
    pub fn span_phase(&self, span: &Span) -> Option<Phase> {
        self.phase_of_sym.get(span.name.index()).copied().flatten()
    }

    /// A span's own phase, or the nearest mapped ancestor's, or `Overhead`.
    pub fn effective_phase(&self, span: &Span) -> Phase {
        let mut cur = Some(span.id);
        while let Some(id) = cur {
            let Some(s) = self.trace.span(id) else { break };
            if let Some(p) = self.span_phase(s) {
                return p;
            }
            cur = s.parent;
        }
        Phase::Overhead
    }

    /// Profile the subtree rooted at `root`. Returns an empty breakdown if
    /// the root is missing or still open.
    pub fn profile(&self, root: SpanId) -> PhaseBreakdown {
        let mut out = PhaseBreakdown::default();
        let Some(root_span) = self.trace.span(root) else {
            return out;
        };
        let Some(root_end) = root_span.end else {
            return out;
        };
        // Collect the completed spans of the subtree, with their depth.
        let mut subtree: Vec<(&Span, u32)> = Vec::new();
        let mut frontier = vec![(root, 0u32)];
        while let Some((id, depth)) = frontier.pop() {
            for &cid in self.index.children(id) {
                let s = self.trace.span(cid).expect("indexed span exists");
                if s.end.is_some() {
                    subtree.push((s, depth + 1));
                }
                // Children of open spans still count (the parent link is
                // what places them in the subtree), so recurse regardless.
                frontier.push((cid, depth + 1));
            }
        }
        // Clamp to the root interval and build the elementary boundaries.
        let lo = root_span.begin;
        let hi = root_end;
        let mut bounds: Vec<u64> = vec![lo.0, hi.0];
        for (s, _) in &subtree {
            let b = s.begin.0.clamp(lo.0, hi.0);
            let e = s.end.unwrap().0.clamp(lo.0, hi.0);
            bounds.push(b);
            bounds.push(e);
        }
        bounds.sort_unstable();
        bounds.dedup();
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            if b <= a || b > hi.0 || a < lo.0 {
                continue;
            }
            // Deepest span active over [a, b); ties: later begin, higher id.
            let active = subtree
                .iter()
                .filter(|(s, _)| s.begin.0 <= a && s.end.unwrap().0 >= b)
                .max_by_key(|(s, depth)| (*depth, s.begin.0, s.id.0));
            let phase = match active {
                Some((s, _)) => self.effective_phase(s),
                None => Phase::Overhead,
            };
            out.charge(phase, b - a);
        }
        out
    }
}

/// Profile the subtree rooted at `root` (one-shot convenience; for many
/// roots over one trace build a [`Profiler`] once or use
/// [`profile_roots`]).
pub fn profile_span(trace: &Trace, root: SpanId) -> PhaseBreakdown {
    Profiler::new(trace).profile(root)
}

/// Profile every completed root span with the given name, in id order.
pub fn profile_roots(trace: &Trace, name: &str) -> Vec<(SpanId, PhaseBreakdown)> {
    let profiler = Profiler::new(trace);
    trace
        .roots_named(name)
        .map(|s| (s.id, profiler.profile(s.id)))
        .collect()
}

/// Element-wise mean of several breakdowns (repeated measurements).
/// Sub-microsecond remainders truncate, so the phases of a mean may sum
/// to marginally less than its total.
pub fn mean_breakdown(items: &[PhaseBreakdown]) -> PhaseBreakdown {
    let mut out = PhaseBreakdown::default();
    if items.is_empty() {
        return out;
    }
    for b in items {
        out.merge(b);
    }
    let n = items.len() as u64;
    out.total = SimDuration(out.total.0 / n);
    for d in &mut out.durations {
        d.0 /= n;
    }
    out
}

/// Aggregate breakdown over every completed root span with the given name.
pub fn aggregate_roots(trace: &Trace, name: &str) -> PhaseBreakdown {
    let mut out = PhaseBreakdown::default();
    for (_, b) in profile_roots(trace, name) {
        out.merge(&b);
    }
    out
}

/// Core utilization of a pilot over its active window: compute
/// core-seconds of the pilot's units divided by `cores` × the window from
/// bootstrap end (or root begin) to root end. Compute spans are matched by
/// a `pilot` attribute equal to the root span's `pilot` attribute; their
/// core counts come from a `cores` attribute (default 1) and are clipped
/// to the window.
pub fn pilot_utilization(trace: &Trace, pilot_root: SpanId, cores: u32) -> f64 {
    let Some(root) = trace.span(pilot_root) else {
        return 0.0;
    };
    let Some(end) = root.end else { return 0.0 };
    let Some(pilot) = trace.attr(root, "pilot") else {
        return 0.0;
    };
    let bootstrap = trace.symbol("pilot.bootstrap");
    let compute = trace.symbol("unit.compute");
    let start = trace
        .iter_spans()
        .filter(|s| s.parent == Some(pilot_root) && Some(s.name) == bootstrap)
        .filter_map(|s| s.end)
        .max()
        .unwrap_or(root.begin);
    let window = end.0.saturating_sub(start.0);
    if window == 0 || cores == 0 {
        return 0.0;
    }
    let mut busy: u128 = 0;
    for s in trace.iter_spans() {
        if Some(s.name) != compute || trace.attr(s, "pilot") != Some(pilot) {
            continue;
        }
        let Some(e) = s.end else { continue };
        let b = s.begin.0.clamp(start.0, end.0);
        let e = e.0.clamp(start.0, end.0);
        let span_cores: u32 = trace
            .attr(s, "cores")
            .and_then(|c| c.parse().ok())
            .unwrap_or(1);
        busy += (e.saturating_sub(b)) as u128 * span_cores as u128;
    }
    busy as f64 / (window as u128 * cores as u128) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn t(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000)
    }

    #[test]
    fn flat_pilot_tree_sums_exactly() {
        let mut tr = Trace::enabled();
        let root = tr.span_begin(t(0), "pilot", "pilot.run", SpanId::NONE);
        let q = tr.span_begin(t(0), "pilot", "pilot.queue_wait", root);
        tr.span_end(t(10), q);
        let b = tr.span_begin(t(10), "pilot", "pilot.bootstrap", root);
        let y = tr.span_begin(t(15), "yarn", "yarn.startup", b);
        let h = tr.span_begin(t(30), "hdfs", "hdfs.startup", y);
        tr.span_end(t(50), h);
        tr.span_end(t(70), y);
        tr.span_end(t(70), b);
        tr.span_end(t(100), root);
        let p = profile_span(&tr, root);
        assert_eq!(p.secs(Phase::QueueWait), 10.0);
        assert_eq!(p.secs(Phase::PilotBootstrap), 5.0); // 10..15
        assert_eq!(p.secs(Phase::YarnStartup), 35.0); // 15..30 + 50..70
        assert_eq!(p.secs(Phase::HdfsStartup), 20.0); // 30..50
        assert_eq!(p.secs(Phase::Overhead), 30.0); // 70..100, no child
        assert_eq!(p.total_secs(), 100.0);
        let sum: f64 = Phase::ALL.iter().map(|&ph| p.secs(ph)).sum();
        assert_eq!(sum, p.total_secs());
    }

    #[test]
    fn overlapping_children_attribute_to_deepest_then_latest() {
        let mut tr = Trace::enabled();
        let root = tr.span_begin(t(0), "unit", "unit.run", SpanId::NONE);
        // stage_in stays open past the start of a sibling allocation span:
        // the later-started sibling wins the overlap.
        let si = tr.span_begin(t(0), "unit", "unit.stage_in", root);
        let am = tr.span_begin(t(4), "yarn", "yarn.am_allocation", root);
        tr.span_end(t(8), am);
        tr.span_end(t(8), si);
        let ex = tr.span_begin(t(8), "unit", "unit.exec", root);
        let c = tr.span_begin(t(9), "unit", "unit.compute", ex);
        tr.span_end(t(19), c);
        tr.span_end(t(20), ex);
        tr.span_end(t(20), root);
        let p = profile_span(&tr, root);
        assert_eq!(p.secs(Phase::StageIn), 4.0); // 0..4
        assert_eq!(p.secs(Phase::AmAllocation), 4.0); // 4..8 (later begin wins)
        assert_eq!(p.secs(Phase::Compute), 10.0); // 9..19 (deepest wins)
        assert_eq!(p.secs(Phase::Overhead), 2.0); // 8..9 + 19..20 (unit.exec unmapped)
        assert_eq!(p.total_secs(), 20.0);
        let sum: f64 = Phase::ALL.iter().map(|&ph| p.secs(ph)).sum();
        assert_eq!(sum, p.total_secs());
    }

    #[test]
    fn requeued_attempts_charge_queue_wait_per_attempt() {
        let mut tr = Trace::enabled();
        let root = tr.span_begin(t(0), "unit", "unit.run", SpanId::NONE);
        let s1 = tr.span_begin(t(0), "unit", "unit.scheduling", root);
        tr.span_end(t(2), s1);
        let e1 = tr.span_begin(t(2), "unit", "unit.exec", root);
        // Crash: the attempt's exec span is abandoned open and the unit is
        // requeued.
        let _abandoned = e1;
        let s2 = tr.span_begin(t(5), "unit", "unit.scheduling", root);
        tr.span_end(t(7), s2);
        let e2 = tr.span_begin(t(7), "unit", "unit.exec", root);
        let c = tr.span_begin(t(7), "unit", "unit.compute", e2);
        tr.span_end(t(12), c);
        tr.span_end(t(12), e2);
        tr.span_end(t(12), root);
        let p = profile_span(&tr, root);
        // Both scheduling spans count; the abandoned open exec span does not.
        assert_eq!(p.secs(Phase::QueueWait), 4.0); // 0..2 + 5..7
        assert_eq!(p.secs(Phase::Compute), 5.0); // 7..12
        assert_eq!(p.secs(Phase::Overhead), 3.0); // 2..5 uncovered
        assert_eq!(p.total_secs(), 12.0);
        let sum: f64 = Phase::ALL.iter().map(|&ph| p.secs(ph)).sum();
        assert_eq!(sum, p.total_secs());
    }

    #[test]
    fn unmapped_span_inherits_ancestor_phase() {
        let mut tr = Trace::enabled();
        let root = tr.span_begin(t(0), "unit", "unit.run", SpanId::NONE);
        let si = tr.span_begin(t(0), "unit", "unit.stage_in", root);
        // An unmapped child of stage_in (e.g. a single transfer) inherits
        // StageIn rather than flipping to Overhead.
        let xfer = tr.span_begin(t(1), "saga", "saga.transfer", si);
        tr.span_end(t(3), xfer);
        tr.span_end(t(4), si);
        tr.span_end(t(4), root);
        let p = profile_span(&tr, root);
        assert_eq!(p.secs(Phase::StageIn), 4.0);
        assert_eq!(p.secs(Phase::Overhead), 0.0);
    }

    #[test]
    fn open_or_missing_root_is_empty() {
        let mut tr = Trace::enabled();
        let open = tr.span_begin(t(0), "x", "pilot.run", SpanId::NONE);
        assert_eq!(profile_span(&tr, open), PhaseBreakdown::default());
        assert_eq!(profile_span(&tr, SpanId::NONE), PhaseBreakdown::default());
        assert_eq!(profile_span(&tr, SpanId(99)), PhaseBreakdown::default());
    }

    #[test]
    fn aggregate_merges_all_roots() {
        let mut tr = Trace::enabled();
        for i in 0..3u64 {
            let root = tr.span_begin(t(i * 10), "unit", "unit.run", SpanId::NONE);
            let c = tr.span_begin(t(i * 10 + 1), "unit", "unit.compute", root);
            tr.span_end(t(i * 10 + 5), c);
            tr.span_end(t(i * 10 + 6), root);
        }
        let agg = aggregate_roots(&tr, "unit.run");
        assert_eq!(agg.total_secs(), 18.0);
        assert_eq!(agg.secs(Phase::Compute), 12.0);
        assert_eq!(profile_roots(&tr, "unit.run").len(), 3);
    }

    #[test]
    fn utilization_counts_compute_core_seconds_in_window() {
        let mut tr = Trace::enabled();
        let root = tr.span_begin(t(0), "pilot", "pilot.run", SpanId::NONE);
        tr.span_attr(root, "pilot", "0");
        let b = tr.span_begin(t(0), "pilot", "pilot.bootstrap", root);
        tr.span_end(t(10), b);
        // Two 2-core compute spans of 20 s each inside a 4-core, 100 s
        // active window -> 80 core-s / 400 core-s = 0.2.
        for start in [20u64, 60] {
            let u = tr.span_begin(t(start), "unit", "unit.compute", SpanId::NONE);
            tr.span_attr(u, "pilot", "0");
            tr.span_attr(u, "cores", "2");
            tr.span_end(t(start + 20), u);
        }
        // A compute span of a different pilot is ignored.
        let other = tr.span_begin(t(20), "unit", "unit.compute", SpanId::NONE);
        tr.span_attr(other, "pilot", "1");
        tr.span_end(t(40), other);
        tr.span_end(t(110), root);
        let util = pilot_utilization(&tr, root, 4);
        assert!((util - 0.2).abs() < 1e-9, "util = {util}");
    }
}
