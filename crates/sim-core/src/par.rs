//! Tiny data-parallel helpers over std scoped threads.
//!
//! The RDD engine executes partitions with these; they are also reused by
//! the analytics kernels. Work is pulled from a shared index counter so
//! uneven partitions balance dynamically.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of worker threads to use for `n` items.
///
/// Honors the `RP_THREADS` environment variable (any integer ≥ 1) so
/// bench and CI runs can pin a fixed count; only when it is unset or
/// unparsable does the host's `available_parallelism` leak in. The env
/// lookup is cached for the life of the process so the answer cannot
/// change mid-run.
pub fn default_threads(n: usize) -> usize {
    static PINNED: OnceLock<Option<usize>> = OnceLock::new();
    let pinned = *PINNED.get_or_init(|| parse_pinned(std::env::var("RP_THREADS").ok().as_deref()));
    let hw = pinned.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(4)
    });
    hw.min(n).max(1)
}

/// Parse an `RP_THREADS` value: any integer ≥ 1 pins the count; empty,
/// junk, or `0` falls through to host detection.
fn parse_pinned(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
}

/// Apply `f` to every index in `0..n` on `threads` workers; results are
/// returned in index order.
pub fn parallel_map_indexed<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(threads >= 1);
    if n == 0 {
        return Vec::new();
    }
    if threads == 1 || n == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // std::thread::scope joins all workers and propagates panics.
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                // rp-lint: allow(par-hazard): work-stealing index only; every index is claimed exactly once and results land by position
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("missing result"))
        .collect()
}

/// Parallel map over a slice (by reference), preserving order.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_indexed(items.len(), threads, |i| f(&items[i]))
}

/// Split `items` into `parts` contiguous chunks of near-equal size.
/// Produces exactly `parts` chunks (possibly empty when items < parts).
pub fn split_even<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    assert!(parts >= 1);
    let n = items.len();
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut it = items.into_iter();
    for p in 0..parts {
        let take = base + usize::from(p < rem);
        out.push(it.by_ref().take(take).collect());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let ys = parallel_map(&xs, 8, |&x| x * 2);
        assert_eq!(ys, xs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_map_handles_empty_and_one() {
        assert!(parallel_map_indexed::<u32, _>(0, 4, |_| 1).is_empty());
        assert_eq!(parallel_map_indexed(1, 4, |i| i + 10), vec![10]);
    }

    #[test]
    fn uneven_work_balances() {
        // Heavier work at low indices; all must still complete correctly.
        let ys = parallel_map_indexed(64, 4, |i| {
            let spin = if i < 4 { 200_000 } else { 10 };
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            (i, acc).0
        });
        assert_eq!(ys, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn split_even_distributes_remainder() {
        let parts = split_even((0..10).collect::<Vec<_>>(), 4);
        assert_eq!(
            parts.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![3, 3, 2, 2]
        );
        let flat: Vec<_> = parts.into_iter().flatten().collect();
        assert_eq!(flat, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_even_more_parts_than_items() {
        let parts = split_even(vec![1, 2], 5);
        assert_eq!(parts.len(), 5);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 2);
    }

    #[test]
    fn default_threads_bounded_by_items() {
        assert_eq!(default_threads(1), 1);
        assert!(default_threads(1024) >= 1);
    }

    #[test]
    fn rp_threads_override_parses_strictly() {
        assert_eq!(parse_pinned(Some("8")), Some(8));
        assert_eq!(parse_pinned(Some(" 2 ")), Some(2));
        assert_eq!(parse_pinned(Some("0")), None);
        assert_eq!(parse_pinned(Some("-3")), None);
        assert_eq!(parse_pinned(Some("four")), None);
        assert_eq!(parse_pinned(Some("")), None);
        assert_eq!(parse_pinned(None), None);
    }
}
