//! # rp-sim — deterministic discrete-event simulation core
//!
//! The substrate every other crate in this workspace builds on:
//!
//! * [`engine::Engine`] — an event loop over virtual time. Events are
//!   `FnOnce(&mut Engine)` closures; ties are broken by schedule order, so
//!   a run is bit-reproducible given the same seed. An opt-in conservative
//!   PDES mode ([`engine::EngineMode::Parallel`]) prepares domain-tagged
//!   *split events* on scoped worker threads inside a lookahead horizon
//!   while applying all effects on the main thread in the exact serial
//!   order — parallel runs are bit-identical to serial ones.
//! * [`time::SimTime`] / [`time::SimDuration`] — integer-microsecond
//!   virtual time.
//! * [`link::FairLink`] — a max–min fair-shared bandwidth resource used to
//!   model Lustre, local disks, NICs and the cluster fabric.
//! * [`tokens::Tokens`] — a FIFO counted resource for cores/slots/memory.
//! * [`rng::SimRng`] — seeded randomness with the handful of distributions
//!   latency models need.
//! * [`fault::FaultPlan`] / [`fault::FaultInjector`] — deterministic fault
//!   schedules (crashes, slowdowns, kills, link degradation, staging
//!   errors) driven through the engine.
//! * [`trace::Trace`] (instant events + duration spans), the
//!   [`metrics::MetricsRegistry`], the [`profile`] phase profiler and
//!   [`report::RunReport`] — the observability layer used by tests,
//!   examples and the experiment harness. Disabled observability costs
//!   nothing: recording is a pure no-op, so runs are bit-identical with
//!   it on or off.
//! * [`telemetry::EngineTelemetry`] — the engine *flight recorder*:
//!   host-side-only histograms/counters over batch timing, occupancy,
//!   horizon stalls and high-water marks. The only sim-core module
//!   allowed to read the wall clock; never consulted by the simulation.
//!
//! Components live in `Rc<RefCell<_>>` handles captured by event closures;
//! all model *state* stays on the main thread (determinism). Parallelism
//! enters only through `Send` prepare closures of split events, which are
//! pure functions of their captures — see `DESIGN.md` §12.

pub mod critpath;
pub mod engine;
pub mod fault;
pub mod intern;
pub mod json;
pub mod link;
pub mod metrics;
pub mod par;
pub mod profile;
pub mod report;
pub mod rng;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod tokens;
pub mod trace;

pub use critpath::{critical_path, critical_path_run, CritPhaseRow, CriticalPath, PathSegment};
pub use engine::{safe_horizon, Domain, Engine, EngineMode, EventId};
pub use fault::{FaultEvent, FaultInjector, FaultKind, FaultPlan};
pub use intern::{Symbol, SymbolTable};
pub use link::{FairLink, FlowId};
pub use metrics::{metric_key, MetricDraft, MetricsRegistry, MetricsSnapshot};
pub use profile::{
    aggregate_roots, mean_breakdown, pilot_utilization, profile_roots, profile_span, Phase,
    PhaseBreakdown, Profiler,
};
pub use report::RunReport;
pub use rng::SimRng;
pub use stats::{Histogram, Summary};
pub use telemetry::{EngineTelemetry, TelemetrySnapshot, TELEMETRY_SCHEMA_VERSION};
pub use time::{SimDuration, SimTime};
pub use tokens::Tokens;
pub use trace::{
    escape_json, validate_chrome_json, validate_chrome_reader, ChromeTraceStats, Span, SpanDraft,
    SpanId, SpanIndex, Trace, TraceEvent,
};

/// Convenience: megabytes → bytes (storage models are specified in MB/s).
pub const MB: f64 = 1024.0 * 1024.0;
/// Convenience: gigabytes → bytes.
pub const GB: f64 = 1024.0 * MB;
