//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a pre-computed schedule of failure events — node
//! crashes, slowdowns, container kills, link degradations and staging
//! errors — generated from its **own** seeded [`SimRng`] so that installing
//! an empty plan leaves every other random stream in the run untouched
//! (a zero-fault run is bit-identical to a run without the injector).
//!
//! The [`FaultInjector`] walks the plan through the [`Engine`], records
//! each injection in the trace under the `"fault"` category, and hands the
//! event to whatever handler the embedding layer registered (the Pilot
//! agent, in this workspace). The injector itself knows nothing about
//! pilots or clusters; it is a pure schedule driver so the core stays
//! dependency-free.

use std::cell::RefCell;
use std::rc::Rc;

use crate::engine::Engine;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One kind of injected failure. Node indices are *logical* (position in
/// the target's node list); the handler maps them onto real node ids so a
/// plan is portable across cluster sizes.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Permanently kill a node: running work is lost, the scheduler must
    /// requeue it elsewhere, storage replicas on the node are gone.
    NodeCrash { node: usize },
    /// Degrade a node's compute speed by `factor` (>1 ⇒ slower) for
    /// `duration`, then restore it.
    NodeSlowdown {
        node: usize,
        factor: f64,
        duration: SimDuration,
    },
    /// Kill up to `count` running containers/executions (preemption-style:
    /// the work restarts, the node survives).
    ContainerKill { count: usize },
    /// Scale the shared-filesystem link capacity by `factor` (<1 ⇒ slower)
    /// for `duration`, then restore it.
    LinkDegrade { factor: f64, duration: SimDuration },
    /// Fail the next staging directive once; the transfer is retried after
    /// backoff.
    StagingError,
    /// Kill an entire pilot allocation (queue kill / hardware loss): the
    /// batch job fails, the agent dies, and every unfinished unit on the
    /// pilot must be failed over or failed. The index is logical
    /// (position in the installer's pilot list).
    PilotKill { pilot: usize },
    /// Network partition between one pilot's agent and the coordination
    /// store, healing after `duration`. The agent stays alive and keeps
    /// executing — the split-brain case PilotKill can't produce. With
    /// `symmetric` both directions are cut; otherwise only the
    /// agent→store direction is (the agent still receives unit batches
    /// but its heartbeats, lease renewals and completions are held).
    Partition {
        pilot: usize,
        duration: SimDuration,
        symmetric: bool,
    },
}

/// A fault at a point in virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    pub at: SimTime,
    pub kind: FaultKind,
}

/// A deterministic schedule of faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty plan: installing it injects nothing and perturbs nothing.
    pub fn none() -> Self {
        FaultPlan { events: Vec::new() }
    }

    /// Generate a random plan over `[0, horizon)` against a target with
    /// `nodes` nodes. `intensity` is the expected number of faults (the
    /// plan draws exactly `intensity` events, so two plans with the same
    /// seed and intensity are identical). Uses a private RNG stream: the
    /// engine's RNG is never touched.
    pub fn generate(seed: u64, horizon: SimDuration, nodes: usize, intensity: usize) -> Self {
        let mut rng = SimRng::new(seed ^ 0xFA_u64.rotate_left(56));
        let mut events: Vec<FaultEvent> = (0..intensity)
            .map(|_| {
                let at = SimTime(rng.uniform_u64(0, horizon.0.saturating_sub(1).max(1)));
                let kind = match rng.index(5) {
                    0 => FaultKind::NodeCrash {
                        node: rng.index(nodes.max(1)),
                    },
                    1 => FaultKind::NodeSlowdown {
                        node: rng.index(nodes.max(1)),
                        factor: rng.uniform(1.5, 4.0),
                        duration: SimDuration::from_secs(rng.uniform_u64(30, 300)),
                    },
                    2 => FaultKind::ContainerKill {
                        count: rng.uniform_u64(1, 3) as usize,
                    },
                    3 => FaultKind::LinkDegrade {
                        factor: rng.uniform(0.1, 0.6),
                        duration: SimDuration::from_secs(rng.uniform_u64(30, 300)),
                    },
                    _ => FaultKind::StagingError,
                };
                FaultEvent { at, kind }
            })
            .collect();
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// Generate a mixed plan that may also kill whole pilots. Same
    /// contract as [`FaultPlan::generate`] (private RNG stream, exactly
    /// `intensity` events, sorted) but the kind distribution includes
    /// [`FaultKind::PilotKill`] against `pilots` logical pilot indices.
    /// A separate stream from `generate`, so existing schedules are
    /// untouched.
    pub fn generate_mixed(
        seed: u64,
        horizon: SimDuration,
        nodes: usize,
        pilots: usize,
        intensity: usize,
    ) -> Self {
        let mut rng = SimRng::new(seed ^ 0xFB_u64.rotate_left(56));
        let mut events: Vec<FaultEvent> = (0..intensity)
            .map(|_| {
                let at = SimTime(rng.uniform_u64(0, horizon.0.saturating_sub(1).max(1)));
                let kind = match rng.index(6) {
                    0 => FaultKind::NodeCrash {
                        node: rng.index(nodes.max(1)),
                    },
                    1 => FaultKind::NodeSlowdown {
                        node: rng.index(nodes.max(1)),
                        factor: rng.uniform(1.5, 4.0),
                        duration: SimDuration::from_secs(rng.uniform_u64(30, 300)),
                    },
                    2 => FaultKind::ContainerKill {
                        count: rng.uniform_u64(1, 3) as usize,
                    },
                    3 => FaultKind::LinkDegrade {
                        factor: rng.uniform(0.1, 0.6),
                        duration: SimDuration::from_secs(rng.uniform_u64(30, 300)),
                    },
                    4 => FaultKind::StagingError,
                    _ => FaultKind::PilotKill {
                        pilot: rng.index(pilots.max(1)),
                    },
                };
                FaultEvent { at, kind }
            })
            .collect();
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// Generate a plan that additionally partitions agents from the
    /// coordination store. Same contract as [`FaultPlan::generate_mixed`]
    /// (private RNG stream, exactly `intensity` events, sorted) but the
    /// kind distribution includes [`FaultKind::Partition`] windows with a
    /// timed heal, and excludes [`FaultKind::PilotKill`] so a partitioned
    /// zombie always has a surviving pilot to race against. A separate
    /// stream from both older generators, so their schedules stay
    /// bit-identical.
    pub fn generate_partitioned(
        seed: u64,
        horizon: SimDuration,
        nodes: usize,
        pilots: usize,
        intensity: usize,
    ) -> Self {
        let mut rng = SimRng::new(seed ^ 0xFC_u64.rotate_left(56));
        let mut events: Vec<FaultEvent> = (0..intensity)
            .map(|_| {
                let at = SimTime(rng.uniform_u64(0, horizon.0.saturating_sub(1).max(1)));
                let kind = match rng.index(7) {
                    0 => FaultKind::NodeCrash {
                        node: rng.index(nodes.max(1)),
                    },
                    1 => FaultKind::NodeSlowdown {
                        node: rng.index(nodes.max(1)),
                        factor: rng.uniform(1.5, 4.0),
                        duration: SimDuration::from_secs(rng.uniform_u64(30, 300)),
                    },
                    2 => FaultKind::ContainerKill {
                        count: rng.uniform_u64(1, 3) as usize,
                    },
                    3 => FaultKind::LinkDegrade {
                        factor: rng.uniform(0.1, 0.6),
                        duration: SimDuration::from_secs(rng.uniform_u64(30, 300)),
                    },
                    4 => FaultKind::StagingError,
                    _ => FaultKind::Partition {
                        pilot: rng.index(pilots.max(1)),
                        duration: SimDuration::from_secs(rng.uniform_u64(60, 240)),
                        symmetric: rng.chance(0.5),
                    },
                };
                FaultEvent { at, kind }
            })
            .collect();
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of node crashes in the plan (drives makespan expectations).
    pub fn crash_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::NodeCrash { .. }))
            .count()
    }

    /// Number of pilot kills in the plan.
    pub fn pilot_kill_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::PilotKill { .. }))
            .count()
    }

    /// Number of partition windows in the plan.
    pub fn partition_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::Partition { .. }))
            .count()
    }
}

type FaultHandler = Box<dyn FnMut(&mut Engine, &FaultKind)>;

struct InjectorInner {
    handlers: Vec<FaultHandler>,
    injected: usize,
}

/// Drives a [`FaultPlan`] through the engine and dispatches each event to
/// the registered handlers. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct FaultInjector {
    inner: Rc<RefCell<InjectorInner>>,
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultInjector {
    pub fn new() -> Self {
        FaultInjector {
            inner: Rc::new(RefCell::new(InjectorInner {
                handlers: Vec::new(),
                injected: 0,
            })),
        }
    }

    /// Register a handler invoked for every injected fault, in registration
    /// order.
    pub fn on_fault(&self, handler: impl FnMut(&mut Engine, &FaultKind) + 'static) {
        self.inner.borrow_mut().handlers.push(Box::new(handler));
    }

    /// Schedule every event of `plan`. Installing an empty plan schedules
    /// nothing at all.
    pub fn install(&self, engine: &mut Engine, plan: &FaultPlan) {
        for ev in &plan.events {
            let this = self.clone();
            let kind = ev.kind.clone();
            engine.schedule_at(ev.at, move |eng| this.fire(eng, &kind));
        }
    }

    /// Inject a single fault right now (also used by the scheduled events).
    pub fn fire(&self, engine: &mut Engine, kind: &FaultKind) {
        engine
            .trace
            .record(engine.now(), "fault", format!("inject {kind:?}"));
        self.inner.borrow_mut().injected += 1;
        // Handlers are moved out while running so a handler may re-enter the
        // injector (e.g. schedule a follow-up restore through `fire`).
        let mut handlers = std::mem::take(&mut self.inner.borrow_mut().handlers);
        for h in handlers.iter_mut() {
            h(engine, kind);
        }
        let mut inner = self.inner.borrow_mut();
        // Preserve handlers registered during dispatch.
        let added = std::mem::take(&mut inner.handlers);
        inner.handlers = handlers;
        inner.handlers.extend(added);
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> usize {
        self.inner.borrow().injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic_and_sorted() {
        let a = FaultPlan::generate(7, SimDuration::from_secs(600), 4, 12);
        let b = FaultPlan::generate(7, SimDuration::from_secs(600), 4, 12);
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        for w in a.events.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let c = FaultPlan::generate(8, SimDuration::from_secs(600), 4, 12);
        assert_ne!(a, c, "different seeds should give different plans");
    }

    #[test]
    fn generate_does_not_touch_engine_rng() {
        let mut e = Engine::new(42);
        let before = e.rng.next_u64();
        let mut e2 = Engine::new(42);
        let _plan = FaultPlan::generate(7, SimDuration::from_secs(600), 4, 50);
        let after = e2.rng.next_u64();
        assert_eq!(before, after);
    }

    #[test]
    fn generate_mixed_is_deterministic_and_includes_pilot_kills() {
        let a = FaultPlan::generate_mixed(7, SimDuration::from_secs(600), 4, 2, 60);
        let b = FaultPlan::generate_mixed(7, SimDuration::from_secs(600), 4, 2, 60);
        assert_eq!(a, b);
        assert_eq!(a.len(), 60);
        assert!(a.pilot_kill_count() > 0, "60 draws over 6 kinds");
        for ev in &a.events {
            if let FaultKind::PilotKill { pilot } = ev.kind {
                assert!(pilot < 2);
            }
        }
        // Distinct stream from `generate`: existing schedules unchanged.
        let legacy = FaultPlan::generate(7, SimDuration::from_secs(600), 4, 12);
        assert_eq!(legacy.pilot_kill_count(), 0);
    }

    #[test]
    fn generate_partitioned_is_deterministic_and_includes_partitions() {
        let a = FaultPlan::generate_partitioned(7, SimDuration::from_secs(600), 4, 2, 60);
        let b = FaultPlan::generate_partitioned(7, SimDuration::from_secs(600), 4, 2, 60);
        assert_eq!(a, b);
        assert_eq!(a.len(), 60);
        assert!(a.partition_count() > 0, "60 draws over 7 kinds");
        // No whole-pilot kills: a partitioned zombie must always have a
        // live peer to race against.
        assert_eq!(a.pilot_kill_count(), 0);
        let mut saw_symmetric = false;
        let mut saw_asymmetric = false;
        for ev in &a.events {
            if let FaultKind::Partition {
                pilot,
                duration,
                symmetric,
            } = ev.kind
            {
                assert!(pilot < 2);
                assert!(duration >= SimDuration::from_secs(60));
                assert!(duration <= SimDuration::from_secs(240));
                if symmetric {
                    saw_symmetric = true;
                } else {
                    saw_asymmetric = true;
                }
            }
        }
        assert!(saw_symmetric && saw_asymmetric, "both directions covered");
        // Distinct stream: the older generators stay bit-identical.
        let legacy = FaultPlan::generate(7, SimDuration::from_secs(600), 4, 12);
        assert_eq!(legacy.partition_count(), 0);
        let mixed = FaultPlan::generate_mixed(7, SimDuration::from_secs(600), 4, 2, 60);
        assert_eq!(mixed.partition_count(), 0);
    }

    #[test]
    fn injector_dispatches_in_order_and_counts() {
        let mut e = Engine::new(1);
        let inj = FaultInjector::new();
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s = seen.clone();
        inj.on_fault(move |eng, kind| s.borrow_mut().push((eng.now(), kind.clone())));
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    at: SimTime::from_secs_f64(5.0),
                    kind: FaultKind::NodeCrash { node: 1 },
                },
                FaultEvent {
                    at: SimTime::from_secs_f64(2.0),
                    kind: FaultKind::StagingError,
                },
            ],
        };
        inj.install(&mut e, &plan);
        e.run();
        let seen = seen.borrow();
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].0, SimTime::from_secs_f64(2.0));
        assert_eq!(seen[1].1, FaultKind::NodeCrash { node: 1 });
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn empty_plan_schedules_nothing() {
        let mut e = Engine::new(1);
        let inj = FaultInjector::new();
        inj.on_fault(|_, _| panic!("no faults expected"));
        inj.install(&mut e, &FaultPlan::none());
        assert_eq!(e.pending(), 0);
        e.run();
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn faults_are_traced() {
        let mut e = Engine::with_trace(1);
        let inj = FaultInjector::new();
        inj.install(
            &mut e,
            &FaultPlan {
                events: vec![FaultEvent {
                    at: SimTime::from_secs_f64(1.0),
                    kind: FaultKind::ContainerKill { count: 2 },
                }],
            },
        );
        e.run();
        assert_eq!(e.trace.in_category("fault").count(), 1);
    }
}
