//! Max–min fair-shared bandwidth resource.
//!
//! `FairLink` models any contended byte-pipe in the system: a Lustre
//! parallel-filesystem backend, a node-local disk, a NIC, or the cluster
//! fabric. Concurrent flows share the capacity max–min fairly, each flow
//! optionally capped (e.g. a single client cannot exceed its NIC rate even
//! if the fabric is idle).
//!
//! The model is *progress-based*: whenever the flow set changes, the
//! progress of all flows is advanced under the previous rates, rates are
//! recomputed, and the next completion event is (re)scheduled. Stale
//! completion events are invalidated with a generation counter.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::engine::{Engine, EventId};
use crate::time::{SimDuration, SimTime};

/// Identifier of an in-flight flow (usable for cancellation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(u64);

type DoneFn = Box<dyn FnOnce(&mut Engine)>;

struct Flow {
    remaining: f64, // bytes
    cap: f64,       // bytes/sec, may be INFINITY
    rate: f64,      // current assigned rate
    done: Option<DoneFn>,
}

struct Inner {
    name: String,
    capacity: f64, // bytes/sec, may be INFINITY
    flows: BTreeMap<u64, Flow>,
    next_id: u64,
    last_advance: SimTime,
    generation: u64,
    pending: Option<EventId>,
    total_bytes: f64,
    busy_time: SimDuration,
}

/// A shared, max–min fair bandwidth link. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct FairLink {
    inner: Rc<RefCell<Inner>>,
}

/// Bytes below which a flow counts as finished (absorbs f64 rounding).
const EPS_BYTES: f64 = 1e-3;

impl FairLink {
    /// A link with the given aggregate capacity in bytes/second.
    /// `f64::INFINITY` gives an uncontended link (flows run at their cap).
    pub fn new(name: impl Into<String>, capacity_bytes_per_sec: f64) -> Self {
        assert!(
            capacity_bytes_per_sec > 0.0,
            "link capacity must be positive"
        );
        FairLink {
            inner: Rc::new(RefCell::new(Inner {
                name: name.into(),
                capacity: capacity_bytes_per_sec,
                flows: BTreeMap::new(),
                next_id: 0,
                last_advance: SimTime::ZERO,
                generation: 0,
                pending: None,
                total_bytes: 0.0,
                busy_time: SimDuration::ZERO,
            })),
        }
    }

    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    pub fn capacity(&self) -> f64 {
        self.inner.borrow().capacity
    }

    /// Number of flows currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inner.borrow().flows.len()
    }

    /// Total bytes fully delivered so far.
    pub fn total_bytes(&self) -> f64 {
        self.inner.borrow().total_bytes
    }

    /// Virtual time during which at least one flow was active.
    pub fn busy_time(&self) -> SimDuration {
        self.inner.borrow().busy_time
    }

    /// Start a transfer of `bytes`; `done` fires when the last byte lands.
    /// `per_flow_cap` bounds this flow's rate (bytes/sec); pass
    /// `f64::INFINITY` for no cap. Zero-byte transfers complete immediately.
    pub fn transfer(
        &self,
        engine: &mut Engine,
        bytes: f64,
        per_flow_cap: f64,
        done: impl FnOnce(&mut Engine) + 'static,
    ) -> FlowId {
        assert!(
            bytes >= 0.0 && bytes.is_finite(),
            "invalid transfer size {bytes}"
        );
        assert!(per_flow_cap > 0.0, "per-flow cap must be positive");
        // A nonzero transfer can never land before its ideal (uncontended)
        // duration — fair sharing only slows flows down — so that duration
        // is a true propagation delay the parallel engine can use as
        // lookahead. Zero-byte transfers complete instantly: no hint.
        let ideal = self.ideal_duration(bytes, per_flow_cap);
        if ideal > SimDuration::ZERO {
            engine.note_lookahead_from("link.transfer", ideal);
        }
        let now = engine.now();
        let id;
        {
            let mut inner = self.inner.borrow_mut();
            inner.advance(now);
            id = inner.next_id;
            inner.next_id += 1;
            inner.flows.insert(
                id,
                Flow {
                    remaining: bytes.max(0.0),
                    cap: per_flow_cap,
                    rate: 0.0,
                    done: Some(Box::new(done)),
                },
            );
            inner.recompute_rates();
        }
        self.fire_finished_and_reschedule(engine);
        FlowId(id)
    }

    /// Cancel an in-flight flow; its completion callback never fires.
    /// Cancelling an already-finished flow is a no-op.
    pub fn cancel(&self, engine: &mut Engine, id: FlowId) {
        let now = engine.now();
        {
            let mut inner = self.inner.borrow_mut();
            inner.advance(now);
            if inner.flows.remove(&id.0).is_none() {
                return;
            }
            inner.recompute_rates();
        }
        self.fire_finished_and_reschedule(engine);
    }

    /// Change the aggregate capacity mid-flight (fault injection: link
    /// degradation and recovery). Progress under the old rates is applied
    /// first, then rates and the next completion event are recomputed.
    pub fn set_capacity(&self, engine: &mut Engine, capacity_bytes_per_sec: f64) {
        assert!(
            capacity_bytes_per_sec > 0.0,
            "link capacity must be positive"
        );
        let now = engine.now();
        {
            let mut inner = self.inner.borrow_mut();
            inner.advance(now);
            inner.capacity = capacity_bytes_per_sec;
            inner.recompute_rates();
        }
        self.fire_finished_and_reschedule(engine);
    }

    /// Time a transfer of `bytes` would take on an otherwise-idle link.
    pub fn ideal_duration(&self, bytes: f64, per_flow_cap: f64) -> SimDuration {
        let rate = self.inner.borrow().capacity.min(per_flow_cap);
        if !rate.is_finite() || bytes <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes / rate)
    }

    /// Advance progress, pop finished flows, recompute rates, reschedule the
    /// next completion event, then run finished callbacks (in flow order).
    fn fire_finished_and_reschedule(&self, engine: &mut Engine) {
        let mut finished: Vec<DoneFn> = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            inner.advance(engine.now());
            let done_ids: Vec<u64> = inner
                .flows
                .iter()
                .filter(|(_, f)| f.remaining <= EPS_BYTES)
                .map(|(&id, _)| id)
                .collect();
            for id in done_ids {
                let mut flow = inner.flows.remove(&id).expect("flow vanished");
                if let Some(cb) = flow.done.take() {
                    finished.push(cb);
                }
            }
            inner.recompute_rates();

            // Re-arm the next completion event.
            inner.generation += 1;
            let gen = inner.generation;
            if let Some(ev) = inner.pending.take() {
                engine.cancel(ev);
            }
            if let Some(ttc) = inner.next_completion() {
                let handle = self.clone();
                inner.pending = Some(engine.schedule_in(ttc, move |eng| {
                    if handle.inner.borrow().generation == gen {
                        handle.inner.borrow_mut().pending = None;
                        handle.fire_finished_and_reschedule(eng);
                    }
                }));
            }
        }
        for cb in finished {
            cb(engine);
        }
    }
}

impl Inner {
    /// Apply progress under the current rates up to `now`.
    fn advance(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.last_advance);
        self.last_advance = now;
        if elapsed.is_zero() || self.flows.is_empty() {
            return;
        }
        self.busy_time += elapsed;
        let secs = elapsed.as_secs_f64();
        for flow in self.flows.values_mut() {
            let moved = (flow.rate * secs).min(flow.remaining);
            flow.remaining -= moved;
            self.total_bytes += moved;
        }
    }

    /// Max–min fair allocation with per-flow caps (water-filling).
    fn recompute_rates(&mut self) {
        let n = self.flows.len();
        if n == 0 {
            return;
        }
        // Sort flow ids by cap ascending; capped flows lock in first, the
        // remainder is split among the rest.
        let mut ids: Vec<u64> = self.flows.keys().copied().collect();
        ids.sort_by(|a, b| {
            let ca = self.flows[a].cap;
            let cb = self.flows[b].cap;
            ca.partial_cmp(&cb).unwrap().then(a.cmp(b))
        });
        let mut remaining_cap = self.capacity;
        let mut remaining_flows = n;
        for id in ids {
            let share = if remaining_cap.is_finite() {
                remaining_cap / remaining_flows as f64
            } else {
                f64::INFINITY
            };
            let flow = self.flows.get_mut(&id).unwrap();
            let rate = flow.cap.min(share);
            flow.rate = rate;
            if remaining_cap.is_finite() {
                remaining_cap = (remaining_cap - rate).max(0.0);
            }
            remaining_flows -= 1;
        }
    }

    /// Time until the next flow completes under current rates.
    #[allow(clippy::type_complexity)]
    fn next_completion(&self) -> Option<SimDuration> {
        let mut best: Option<f64> = None;
        for flow in self.flows.values() {
            let secs = if flow.remaining <= EPS_BYTES || flow.rate.is_infinite() {
                0.0
            } else if flow.rate <= 0.0 {
                continue; // starved flow: cannot finish until rates change
            } else {
                flow.remaining / flow.rate
            };
            best = Some(best.map_or(secs, |b: f64| b.min(secs)));
        }
        // Round *up* to the next microsecond so remaining <= EPS at fire time.
        best.map(|secs| SimDuration((secs * 1e6).ceil() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[allow(clippy::type_complexity)]
    fn done_log() -> (
        Rc<RefCell<Vec<(u32, SimTime)>>>,
        impl Fn(u32) -> DoneFn + Clone,
    ) {
        let log: Rc<RefCell<Vec<(u32, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
        let l = log.clone();
        let mk = move |tag: u32| -> DoneFn {
            let l = l.clone();
            Box::new(move |eng: &mut Engine| l.borrow_mut().push((tag, eng.now())))
        };
        (log, mk)
    }

    #[test]
    fn single_flow_runs_at_capacity() {
        let mut e = Engine::new(1);
        let link = FairLink::new("disk", 100.0); // 100 B/s
        let (log, mk) = done_log();
        link.transfer(&mut e, 1000.0, f64::INFINITY, mk(0));
        e.run();
        assert_eq!(log.borrow()[0], (0, SimTime::from_secs_f64(10.0)));
        assert!((link.total_bytes() - 1000.0).abs() < 1.0);
    }

    #[test]
    fn two_equal_flows_halve_throughput() {
        let mut e = Engine::new(1);
        let link = FairLink::new("disk", 100.0);
        let (log, mk) = done_log();
        link.transfer(&mut e, 1000.0, f64::INFINITY, mk(0));
        link.transfer(&mut e, 1000.0, f64::INFINITY, mk(1));
        e.run();
        // Both share 50 B/s → both finish at 20 s.
        for &(_, t) in log.borrow().iter() {
            assert!((t.as_secs_f64() - 20.0).abs() < 0.01, "{t}");
        }
    }

    #[test]
    fn short_flow_finishes_then_long_flow_speeds_up() {
        let mut e = Engine::new(1);
        let link = FairLink::new("disk", 100.0);
        let (log, mk) = done_log();
        link.transfer(&mut e, 2000.0, f64::INFINITY, mk(0));
        link.transfer(&mut e, 500.0, f64::INFINITY, mk(1));
        e.run();
        let log = log.borrow();
        // Short flow: 500 B at 50 B/s → 10 s.
        // Long flow: 500 B done at t=10 (50 B/s), remaining 1500 at 100 B/s
        // → finishes at 10 + 15 = 25 s.
        let t_short = log.iter().find(|x| x.0 == 1).unwrap().1;
        let t_long = log.iter().find(|x| x.0 == 0).unwrap().1;
        assert!((t_short.as_secs_f64() - 10.0).abs() < 0.01, "{t_short}");
        assert!((t_long.as_secs_f64() - 25.0).abs() < 0.01, "{t_long}");
    }

    #[test]
    fn per_flow_cap_limits_rate() {
        let mut e = Engine::new(1);
        let link = FairLink::new("fabric", 1000.0);
        let (log, mk) = done_log();
        link.transfer(&mut e, 100.0, 10.0, mk(0)); // capped at 10 B/s
        e.run();
        assert!((log.borrow()[0].1.as_secs_f64() - 10.0).abs() < 0.01);
    }

    #[test]
    fn capped_flow_leaves_bandwidth_to_others() {
        let mut e = Engine::new(1);
        let link = FairLink::new("fabric", 100.0);
        let (log, mk) = done_log();
        // Flow 0 capped at 20 B/s, flow 1 uncapped: max-min gives 20 + 80.
        link.transfer(&mut e, 200.0, 20.0, mk(0)); // 10 s
        link.transfer(&mut e, 800.0, f64::INFINITY, mk(1)); // 10 s
        e.run();
        let log = log.borrow();
        for &(_, t) in log.iter() {
            assert!((t.as_secs_f64() - 10.0).abs() < 0.01, "{t}");
        }
    }

    #[test]
    fn late_joiner_slows_existing_flow() {
        let mut e = Engine::new(1);
        let link = FairLink::new("disk", 100.0);
        let (log, mk) = done_log();
        link.transfer(&mut e, 1000.0, f64::INFINITY, mk(0));
        let link2 = link.clone();
        let mk2 = mk.clone();
        e.schedule_in(SimDuration::from_secs(5), move |eng| {
            link2.transfer(eng, 250.0, f64::INFINITY, mk2(1));
        });
        e.run();
        let log = log.borrow();
        // Flow 0: 500 B in first 5 s, then 50 B/s. Flow 1 finishes 250 B at
        // 50 B/s at t=10; flow 0 then has 250 B left at 100 B/s → t=12.5.
        let t1 = log.iter().find(|x| x.0 == 1).unwrap().1;
        let t0 = log.iter().find(|x| x.0 == 0).unwrap().1;
        assert!((t1.as_secs_f64() - 10.0).abs() < 0.01, "{t1}");
        assert!((t0.as_secs_f64() - 12.5).abs() < 0.01, "{t0}");
    }

    #[test]
    fn zero_byte_transfer_completes_immediately() {
        let mut e = Engine::new(1);
        let link = FairLink::new("disk", 100.0);
        let (log, mk) = done_log();
        link.transfer(&mut e, 0.0, f64::INFINITY, mk(0));
        e.run();
        assert_eq!(log.borrow()[0].1, SimTime::ZERO);
    }

    #[test]
    fn cancel_suppresses_callback_and_frees_bandwidth() {
        let mut e = Engine::new(1);
        let link = FairLink::new("disk", 100.0);
        let (log, mk) = done_log();
        let id = link.transfer(&mut e, 10_000.0, f64::INFINITY, mk(0));
        link.transfer(&mut e, 500.0, f64::INFINITY, mk(1));
        let link2 = link.clone();
        e.schedule_in(SimDuration::from_secs(1), move |eng| {
            link2.cancel(eng, id);
        });
        e.run();
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        // Flow 1: 50 B in first second, then full 100 B/s for 450 B → t=5.5.
        assert!((log[0].1.as_secs_f64() - 5.5).abs() < 0.01, "{}", log[0].1);
    }

    #[test]
    fn infinite_capacity_runs_at_flow_cap() {
        let mut e = Engine::new(1);
        let link = FairLink::new("ideal", f64::INFINITY);
        let (log, mk) = done_log();
        link.transfer(&mut e, 100.0, 10.0, mk(0));
        link.transfer(&mut e, 100.0, 50.0, mk(1));
        e.run();
        let log = log.borrow();
        let t0 = log.iter().find(|x| x.0 == 0).unwrap().1;
        let t1 = log.iter().find(|x| x.0 == 1).unwrap().1;
        assert!((t0.as_secs_f64() - 10.0).abs() < 0.01);
        assert!((t1.as_secs_f64() - 2.0).abs() < 0.01);
    }

    #[test]
    fn busy_time_tracks_active_periods() {
        let mut e = Engine::new(1);
        let link = FairLink::new("disk", 100.0);
        let (_, mk) = done_log();
        link.transfer(&mut e, 500.0, f64::INFINITY, mk(0)); // busy 0..5
        let l2 = link.clone();
        let mk2 = mk.clone();
        e.schedule_in(SimDuration::from_secs(10), move |eng| {
            l2.transfer(eng, 200.0, f64::INFINITY, mk2(1)); // busy 10..12
        });
        e.run();
        assert!((link.busy_time().as_secs_f64() - 7.0).abs() < 0.01);
    }

    #[test]
    fn set_capacity_degrades_and_restores_mid_flight() {
        let mut e = Engine::new(1);
        let link = FairLink::new("disk", 100.0);
        let (log, mk) = done_log();
        link.transfer(&mut e, 1000.0, f64::INFINITY, mk(0));
        let l2 = link.clone();
        e.schedule_in(SimDuration::from_secs(2), move |eng| {
            l2.set_capacity(eng, 25.0); // 200 B done, 800 left at 25 B/s
        });
        let l3 = link.clone();
        e.schedule_in(SimDuration::from_secs(10), move |eng| {
            l3.set_capacity(eng, 100.0); // 600 left at 100 B/s → t = 16
        });
        e.run();
        let log = log.borrow();
        assert!((log[0].1.as_secs_f64() - 16.0).abs() < 0.01, "{}", log[0].1);
        assert!((link.capacity() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn many_flows_conserve_bytes() {
        let mut e = Engine::new(1);
        let link = FairLink::new("disk", 123.0);
        let (log, mk) = done_log();
        let mut expected = 0.0;
        for i in 0..20u32 {
            let bytes = 100.0 + 37.0 * i as f64;
            expected += bytes;
            link.transfer(&mut e, bytes, f64::INFINITY, mk(i));
        }
        e.run();
        assert_eq!(log.borrow().len(), 20);
        assert!(
            (link.total_bytes() - expected).abs() < 1.0,
            "{} vs {}",
            link.total_bytes(),
            expected
        );
        assert_eq!(link.in_flight(), 0);
    }
}
