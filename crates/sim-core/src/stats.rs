//! Small statistics helpers used by benches and experiment harnesses,
//! plus the mergeable log-bucketed [`Histogram`] the engine flight
//! recorder ([`crate::telemetry`]) aggregates host-side costs into.

/// Number of buckets in a [`Histogram`]: bucket 0 holds exact zeros,
/// bucket `b >= 1` holds values in `[2^(b-1), 2^b)` — enough for any
/// `u64` sample.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A mergeable log-bucketed histogram over `u64` samples (microsecond
/// host times, batch sizes, queue depths).
///
/// Bucket boundaries are *fixed* powers of two — bucket 0 is `{0}`,
/// bucket `b` covers `[2^(b-1), 2^b)` — so merging two histograms is
/// exact: counts add bucket-wise and the merge of merges is independent
/// of order (associative and commutative). Percentiles are estimated by
/// linear interpolation inside the covering bucket, clamped to the
/// observed min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index of a sample: 0 for 0, else `64 - leading_zeros` (so
    /// 1 → bucket 1, 2..3 → bucket 2, 4..7 → bucket 3, ...).
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive `(lo, hi)` value range of a bucket.
    pub fn bucket_bounds(b: usize) -> (u64, u64) {
        assert!(b < HISTOGRAM_BUCKETS, "bucket {b} out of range");
        if b == 0 {
            (0, 0)
        } else {
            let lo = 1u64 << (b - 1);
            let hi = if b == 64 { u64::MAX } else { (1u64 << b) - 1 };
            (lo, hi)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u128 {
        self.sum
    }

    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded samples (exact: from the running sum).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Non-empty buckets as `(bucket, count)` pairs, in bucket order.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(b, &n)| (b, n))
            .collect()
    }

    /// Merge another histogram into this one. Exact: the result is
    /// indistinguishable from a histogram that recorded both sample
    /// streams directly.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimated percentile (0..=100): linear interpolation inside the
    /// bucket holding the target rank, clamped to observed min/max.
    /// `None` on an empty histogram.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p));
        if self.count == 0 {
            return None;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (b, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cum + n >= target {
                let (lo, hi) = Self::bucket_bounds(b);
                let lo = lo.max(self.min) as f64;
                let hi = hi.min(self.max) as f64;
                let frac = (target - cum) as f64 / n as f64;
                return Some(lo + (hi - lo) * frac);
            }
            cum += n;
        }
        Some(self.max as f64)
    }

    /// JSON rendering: count/sum/min/max, the p50/p95/p99 estimates, and
    /// the non-empty buckets as `[bucket, count]` pairs. Stable key order.
    pub fn to_json(&self) -> String {
        let opt = |v: Option<f64>| match v {
            Some(x) => format!("{x:.1}"),
            None => "null".into(),
        };
        let optu = |v: Option<u64>| match v {
            Some(x) => x.to_string(),
            None => "null".into(),
        };
        let mut buckets = String::new();
        for (i, (b, n)) in self.nonzero_buckets().into_iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            buckets.push_str(&format!("[{b},{n}]"));
        }
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{buckets}]}}",
            self.count,
            self.sum,
            optu(self.min()),
            optu(self.max()),
            opt(self.percentile(50.0)),
            opt(self.percentile(95.0)),
            opt(self.percentile(99.0)),
        )
    }

    /// One-line human rendering for reports (`-` when empty).
    pub fn render_line(&self) -> String {
        if self.count == 0 {
            return "-".into();
        }
        format!(
            "n={} mean={:.1} p50={:.0} p95={:.0} p99={:.0} max={}",
            self.count,
            self.mean().unwrap_or(0.0),
            self.percentile(50.0).unwrap_or(0.0),
            self.percentile(95.0).unwrap_or(0.0),
            self.percentile(99.0).unwrap_or(0.0),
            self.max
        )
    }
}

/// Summary statistics over a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
    pub median: f64,
}

impl Summary {
    /// Compute summary statistics. Panics on an empty sample.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "Summary::of: empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
        }
    }

    /// Relative standard deviation (coefficient of variation).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }
}

/// Percentile (0..=100) of an already-sorted slice, linear interpolation.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&p));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Percentile of an unsorted slice.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    percentile_sorted(&sorted, p)
}

/// Speedup series relative to the first element (the paper reports speedup
/// against the smallest task count).
pub fn speedups(times: &[f64]) -> Vec<f64> {
    assert!(!times.is_empty());
    let base = times[0];
    times.iter().map(|t| base / t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.std - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_series() {
        let s = speedups(&[100.0, 50.0, 25.0]);
        assert_eq!(s, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn empty_summary_panics() {
        let _ = Summary::of(&[]);
    }

    // -----------------------------------------------------------------
    // Histogram
    // -----------------------------------------------------------------

    #[test]
    fn histogram_bucket_edges() {
        // Bucket 0 is exactly {0}; bucket b covers [2^(b-1), 2^b).
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        // Every bucket's bounds round-trip through bucket_of.
        for b in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(b);
            assert_eq!(Histogram::bucket_of(lo), b, "lo of bucket {b}");
            assert_eq!(Histogram::bucket_of(hi), b, "hi of bucket {b}");
        }
        // Adjacent buckets are contiguous and non-overlapping.
        for b in 1..HISTOGRAM_BUCKETS {
            let (lo, _) = Histogram::bucket_bounds(b);
            let (_, prev_hi) = Histogram::bucket_bounds(b - 1);
            assert_eq!(lo, prev_hi + 1, "gap between buckets {} and {b}", b - 1);
        }
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.nonzero_buckets(), vec![]);
        assert_eq!(h.render_line(), "-");
        let j = h.to_json();
        assert!(j.contains("\"count\":0"));
        assert!(j.contains("\"p50\":null"));
    }

    #[test]
    fn histogram_single_sample() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 42);
        assert_eq!(h.min(), Some(42));
        assert_eq!(h.max(), Some(42));
        // Interpolation clamps to observed min/max, so every percentile
        // of a single sample is the sample itself.
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(42.0), "p{p}");
        }
    }

    #[test]
    fn histogram_zero_and_percentiles() {
        let mut h = Histogram::new();
        for v in [0u64, 0, 100, 100, 100, 100, 100, 100, 100, 100] {
            h.record(v);
        }
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(100));
        // p20 targets rank 2 → still in the zero bucket.
        assert_eq!(h.percentile(20.0), Some(0.0));
        // p95 targets rank 10 → the 100s bucket, clamped to max.
        let p95 = h.percentile(95.0).unwrap();
        assert!((64.0..=100.0).contains(&p95), "p95 = {p95}");
    }

    #[test]
    fn histogram_merge_associative_and_exact() {
        let streams: [&[u64]; 3] = [&[1, 5, 9, 120], &[0, 3, 3, 700_000], &[42, 64, 65]];
        let make = |xs: &[u64]| {
            let mut h = Histogram::new();
            for &x in xs {
                h.record(x);
            }
            h
        };
        let [a, b, c] = [make(streams[0]), make(streams[1]), make(streams[2])];
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge is associative");
        // c ⊕ b ⊕ a (commutes)
        let mut rev = c.clone();
        rev.merge(&b);
        rev.merge(&a);
        assert_eq!(left, rev, "merge is commutative");
        // Merge of merges ≡ direct recording of the concatenated stream.
        let mut direct = Histogram::new();
        for s in streams {
            for &x in s {
                direct.record(x);
            }
        }
        assert_eq!(left, direct, "merge is exact");
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(1000);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn histogram_json_shape() {
        let mut h = Histogram::new();
        h.record(3);
        h.record(5);
        let j = h.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in ["count", "sum", "min", "max", "p50", "p95", "p99", "buckets"] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key} in {j}");
        }
        // 3 → bucket 2, 5 → bucket 3.
        assert!(j.contains("[2,1]") && j.contains("[3,1]"), "{j}");
    }
}
