//! Small statistics helpers used by benches and experiment harnesses.

/// Summary statistics over a sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    pub n: usize,
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub max: f64,
    pub median: f64,
}

impl Summary {
    /// Compute summary statistics. Panics on an empty sample.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(!samples.is_empty(), "Summary::of: empty sample");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
        }
    }

    /// Relative standard deviation (coefficient of variation).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }
}

/// Percentile (0..=100) of an already-sorted slice, linear interpolation.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    assert!((0.0..=100.0).contains(&p));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Percentile of an unsorted slice.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in sample"));
    percentile_sorted(&sorted, p)
}

/// Speedup series relative to the first element (the paper reports speedup
/// against the smallest task count).
pub fn speedups(times: &[f64]) -> Vec<f64> {
    assert!(!times.is_empty());
    let base = times[0];
    times.iter().map(|t| base / t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert!((s.std - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert!((percentile(&xs, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_series() {
        let s = speedups(&[100.0, 50.0, 25.0]);
        assert_eq!(s, vec![1.0, 2.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn empty_summary_panics() {
        let _ = Summary::of(&[]);
    }
}
