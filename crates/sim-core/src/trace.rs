//! Structured event trace: instant events and duration spans.
//!
//! Components record instant `(time, category, message)` triples and
//! begin/end **spans** — intervals with stable ids, parent links and
//! key/value attributes. Tests and examples use the trace to assert on and
//! display causal timelines; the phase profiler ([`crate::profile`]) walks
//! the span tree to attribute wall-clock to the paper's phases. When
//! disabled (the default) every recording call is a no-op, so an
//! uninstrumented run stays bit-identical to an instrumented one.
//!
//! Scaling (DESIGN.md §11): span names and attributes are interned
//! [`Symbol`]s (4 bytes instead of an owned `String` each), and spans live
//! in fixed-size chunks (`Vec<Vec<Span>>`) — an append-only sink that
//! never reallocates or moves recorded spans, so a 100k-unit run appends
//! in O(1) and readers stream chunk-by-chunk ([`Trace::iter_spans`],
//! [`Trace::write_chrome_json`]) instead of demanding one contiguous
//! buffer. The trace also tracks the live (begun-but-unended) span count
//! and its high-water mark, which the scale gate caps.

use std::io;

pub use crate::intern::{Symbol, SymbolTable};
use crate::time::SimTime;

/// Spans per storage chunk. Chunks are never resized once full, so a
/// reader holding `&Span` across appends would stay valid (Rust's borrow
/// rules are stricter, but exports never pay a move/copy of the tail).
const CHUNK: usize = 1024;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub time: SimTime,
    pub category: &'static str,
    pub message: String,
}

/// Identifier of a span. Ids are assigned sequentially from 1 in begin
/// order; `SpanId::NONE` (0) is the sentinel returned when tracing is
/// disabled — every span operation on it is a no-op, so call sites never
/// need to branch on whether observability is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const NONE: SpanId = SpanId(0);

    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// A begin/end interval in virtual time. `end` is `None` while the span is
/// open (and stays `None` forever for spans abandoned by a fault-killed
/// attempt — exports and the profiler only consider completed spans).
///
/// `name` and `attrs` are [`Symbol`]s into the owning trace's intern
/// table; resolve with [`Trace::span_name`] / [`Trace::attr`].
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub id: SpanId,
    pub parent: Option<SpanId>,
    pub category: &'static str,
    pub name: Symbol,
    pub begin: SimTime,
    pub end: Option<SimTime>,
    pub attrs: Vec<(Symbol, Symbol)>,
}

impl Span {
    /// Duration, if the span is complete.
    pub fn duration(&self) -> Option<crate::time::SimDuration> {
        Some(self.end?.since(self.begin))
    }
}

/// A span assembled off the engine thread (it is `Send`; no access to the
/// intern table is needed to build one). The parallel engine's prepare
/// closures format span names/attributes into drafts; the apply closure
/// commits them via [`Trace::begin_draft`], which interns on the owning
/// thread in the same order the serial path would — so symbol and span
/// ids stay bit-identical across engine modes.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanDraft {
    pub category: &'static str,
    pub name: String,
    pub attrs: Vec<(String, String)>,
}

impl SpanDraft {
    pub fn new(category: &'static str, name: impl Into<String>) -> Self {
        SpanDraft {
            category,
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    /// Builder-style attribute append (attributes commit in push order).
    pub fn attr(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.attrs.push((key.into(), value.into()));
        self
    }
}

/// Append-only trace log with chunked span storage.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
    chunks: Vec<Vec<Span>>,
    count: usize,
    open: usize,
    peak_open: usize,
    syms: SymbolTable,
}

impl Trace {
    pub fn disabled() -> Self {
        Trace::default()
    }

    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            ..Trace::default()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an instant event (no-op when disabled).
    pub fn record(&mut self, time: SimTime, category: &'static str, message: impl Into<String>) {
        if self.enabled {
            self.events.push(TraceEvent {
                time,
                category,
                message: message.into(),
            });
        }
    }

    /// Open a span. Returns `SpanId::NONE` when disabled; pass
    /// `SpanId::NONE` as `parent` for a root span.
    pub fn span_begin(
        &mut self,
        time: SimTime,
        category: &'static str,
        name: &str,
        parent: SpanId,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let id = SpanId(self.count as u64 + 1);
        let name = self.syms.intern(name);
        if self.chunks.last().is_none_or(|c| c.len() == CHUNK) {
            self.chunks.push(Vec::with_capacity(CHUNK));
        }
        let last = self.chunks.len() - 1;
        self.chunks[last].push(Span {
            id,
            parent: if parent.is_none() { None } else { Some(parent) },
            category,
            name,
            begin: time,
            end: None,
            attrs: Vec::new(),
        });
        self.count += 1;
        self.open += 1;
        self.peak_open = self.peak_open.max(self.open);
        id
    }

    /// Attach a key/value attribute to an open span (no-op on `NONE`).
    pub fn span_attr(&mut self, id: SpanId, key: &str, value: impl AsRef<str>) {
        if id.is_none() {
            return;
        }
        let key = self.syms.intern(key);
        let value = self.syms.intern(value.as_ref());
        let span = self.span_mut(id);
        span.attrs.push((key, value));
    }

    /// Close a span (no-op on `NONE` or if already closed).
    pub fn span_end(&mut self, time: SimTime, id: SpanId) {
        if id.is_none() {
            return;
        }
        let span = self.span_mut(id);
        if span.end.is_none() {
            debug_assert!(time >= span.begin, "span ends before it begins");
            span.end = Some(time);
            self.open -= 1;
        }
    }

    /// Commit a [`SpanDraft`] assembled off-thread: begins the span and
    /// attaches its attributes. Interning happens here, on the owning
    /// thread, in exactly the order the equivalent inline
    /// `span_begin` + `span_attr` calls would — symbol ids and span ids
    /// are therefore identical whether a span was drafted or not.
    pub fn begin_draft(&mut self, time: SimTime, draft: SpanDraft, parent: SpanId) -> SpanId {
        let id = self.span_begin(time, draft.category, &draft.name, parent);
        for (key, value) in &draft.attrs {
            self.span_attr(id, key, value);
        }
        id
    }

    fn span_mut(&mut self, id: SpanId) -> &mut Span {
        let idx = id.0 as usize - 1;
        &mut self.chunks[idx / CHUNK][idx % CHUNK]
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// All spans in begin (= id) order, streamed chunk-by-chunk (open
    /// spans included).
    pub fn iter_spans(&self) -> impl DoubleEndedIterator<Item = &Span> + Clone + '_ {
        self.chunks.iter().flatten()
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        self.count
    }

    /// Spans currently open (begun but not ended).
    pub fn live_spans(&self) -> usize {
        self.open
    }

    /// High-water mark of [`Trace::live_spans`] over the run — the figure
    /// the scale gate caps (bounded live set ⇒ bounded resident memory
    /// for the mutable frontier of the trace).
    pub fn peak_live_spans(&self) -> usize {
        self.peak_open
    }

    /// Per-name aggregate over all *completed* spans: `(name, count,
    /// total duration)`, sorted by name. The same aggregation
    /// `trace_diff` reconstructs from an exported Chrome trace — tests
    /// use this to cross-check the export round trip.
    pub fn name_totals(&self) -> Vec<(String, u64, crate::time::SimDuration)> {
        let mut totals: std::collections::BTreeMap<&str, (u64, crate::time::SimDuration)> =
            std::collections::BTreeMap::new();
        for s in self.iter_spans() {
            if let Some(d) = s.duration() {
                let e = totals
                    .entry(self.syms.resolve(s.name))
                    .or_insert((0, crate::time::SimDuration(0)));
                e.0 += 1;
                e.1 += d;
            }
        }
        totals
            .into_iter()
            .map(|(name, (n, d))| (name.to_string(), n, d))
            .collect()
    }

    pub fn span(&self, id: SpanId) -> Option<&Span> {
        if id.is_none() || id.0 as usize > self.count {
            return None;
        }
        let idx = id.0 as usize - 1;
        Some(&self.chunks[idx / CHUNK][idx % CHUNK])
    }

    /// Resolve an interned symbol (empty string for `Symbol::NONE`).
    pub fn name(&self, sym: Symbol) -> &str {
        self.syms.resolve(sym)
    }

    /// Resolved name of a span.
    pub fn span_name(&self, span: &Span) -> &str {
        self.syms.resolve(span.name)
    }

    /// Look up the symbol for `s`, if it was ever recorded.
    pub fn symbol(&self, s: &str) -> Option<Symbol> {
        self.syms.lookup(s)
    }

    /// Intern a string in this trace's table (for building comparison
    /// symbols in tests/tools; recording paths intern implicitly).
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.syms.intern(s)
    }

    /// The intern table (read-only; index side tables by `Symbol::index`).
    pub fn symbols(&self) -> &SymbolTable {
        &self.syms
    }

    /// Value of a span attribute, resolved.
    pub fn attr<'a>(&'a self, span: &Span, key: &str) -> Option<&'a str> {
        let key = self.syms.lookup(key)?;
        span.attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| self.syms.resolve(v))
    }

    /// A span's attributes as resolved `(key, value)` pairs.
    pub fn attrs<'a>(&'a self, span: &'a Span) -> impl Iterator<Item = (&'a str, &'a str)> {
        span.attrs
            .iter()
            .map(|&(k, v)| (self.syms.resolve(k), self.syms.resolve(v)))
    }

    /// Completed root spans (no parent) with the given name, in id order.
    pub fn roots_named<'a>(&'a self, name: &str) -> impl Iterator<Item = &'a Span> + 'a {
        let sym = self.syms.lookup(name);
        self.iter_spans()
            .filter(move |s| s.parent.is_none() && Some(s.name) == sym && s.end.is_some())
    }

    /// Events in a given category.
    pub fn in_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// First event whose message contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.message.contains(needle))
    }

    /// Export as Chrome tracing JSON (`chrome://tracing` / Perfetto):
    /// instant events as `"ph":"i"`, completed spans as async-nestable
    /// `"ph":"b"`/`"ph":"e"` pairs keyed by span id (no per-thread stack
    /// discipline required), grouped by category as thread names.
    ///
    /// Streams chunk-by-chunk into `w` — peak memory is one span's
    /// rendering, not the document, so scale-run traces export without
    /// materializing hundreds of MB. [`Trace::to_chrome_json`] wraps this
    /// for small traces.
    pub fn write_chrome_json<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        let mut cats: Vec<&'static str> = self
            .events
            .iter()
            .map(|e| e.category)
            .chain(self.iter_spans().map(|s| s.category))
            .collect();
        cats.sort_unstable();
        cats.dedup();
        let tid = |c: &str| cats.iter().position(|&x| x == c).unwrap_or(0) + 1;
        w.write_all(b"[")?;
        for (i, c) in cats.iter().enumerate() {
            if i > 0 {
                w.write_all(b",")?;
            }
            write!(
                w,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                tid(c),
                escape_json(c)
            )?;
        }
        for e in &self.events {
            write!(
                w,
                ",{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\"}}",
                escape_json(&e.message),
                e.time.0,
                tid(e.category)
            )?;
        }
        for s in self.iter_spans() {
            let Some(end) = s.end else { continue };
            let mut args = String::new();
            if let Some(p) = s.parent {
                args.push_str(&format!("\"parent\":\"0x{:x}\"", p.0));
            }
            for (k, v) in &s.attrs {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!(
                    "\"{}\":\"{}\"",
                    escape_json(self.syms.resolve(*k)),
                    escape_json(self.syms.resolve(*v))
                ));
            }
            let name = escape_json(self.syms.resolve(s.name));
            write!(
                w,
                ",{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"b\",\"ts\":{},\"pid\":1,\"tid\":{},\"id\":\"0x{:x}\",\"args\":{{{}}}}}",
                name,
                escape_json(s.category),
                s.begin.0,
                tid(s.category),
                s.id.0,
                args
            )?;
            write!(
                w,
                ",{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"e\",\"ts\":{},\"pid\":1,\"tid\":{},\"id\":\"0x{:x}\"}}",
                name,
                escape_json(s.category),
                end.0,
                tid(s.category),
                s.id.0
            )?;
        }
        w.write_all(b"]")?;
        Ok(())
    }

    /// [`Trace::write_chrome_json`] into a `String` (small traces,
    /// tests).
    pub fn to_chrome_json(&self) -> String {
        let mut out = Vec::new();
        self.write_chrome_json(&mut out).expect("write to Vec");
        String::from_utf8(out).expect("escaped JSON is UTF-8")
    }

    /// Render the trace as an aligned timeline (for examples / debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{:>12} [{:<10}] {}\n",
                format!("{}", e.time),
                e.category,
                e.message
            ));
        }
        out
    }

    /// Render the span list, one line per span (for goldens / debugging).
    pub fn render_spans(&self) -> String {
        let mut out = String::new();
        for s in self.iter_spans() {
            let end = match s.end {
                Some(t) => format!("{}", t.0),
                None => "open".into(),
            };
            let parent = match s.parent {
                Some(p) => format!("{}", p.0),
                None => "-".into(),
            };
            out.push_str(&format!(
                "#{} parent={} [{}] {} {}..{}\n",
                s.id.0,
                parent,
                s.category,
                self.syms.resolve(s.name),
                s.begin.0,
                end
            ));
        }
        out
    }
}

/// Parent → children adjacency over a trace, in CSR form: one O(n) build,
/// then `children(id)` is a slice lookup. Replaces the legacy full-scan
/// (`spans.iter().filter(|s| s.parent == id)`) that made the profiler and
/// critical-path walker O(n²) on scale runs. Children are listed in id
/// (= begin) order, matching the scan order the legacy walk produced.
#[derive(Debug)]
pub struct SpanIndex {
    off: Vec<u32>,
    kids: Vec<SpanId>,
}

impl SpanIndex {
    pub fn build(trace: &Trace) -> SpanIndex {
        let n = trace.span_count();
        let mut counts = vec![0u32; n + 2];
        for s in trace.iter_spans() {
            if let Some(p) = s.parent {
                counts[p.0 as usize] += 1;
            }
        }
        let mut off = vec![0u32; n + 2];
        for id in 1..=n {
            off[id + 1] = off[id] + counts[id];
        }
        let mut next = off.clone();
        let mut kids = vec![SpanId::NONE; off[n + 1] as usize];
        for s in trace.iter_spans() {
            if let Some(p) = s.parent {
                kids[next[p.0 as usize] as usize] = s.id;
                next[p.0 as usize] += 1;
            }
        }
        SpanIndex { off, kids }
    }

    /// Direct children of `id`, in id order.
    pub fn children(&self, id: SpanId) -> &[SpanId] {
        let i = id.0 as usize;
        if id.is_none() || i + 1 >= self.off.len() {
            return &[];
        }
        &self.kids[self.off[i] as usize..self.off[i + 1] as usize]
    }
}

/// JSON string escaping covering quotes, backslashes and all control
/// characters (newlines and tabs in messages used to produce invalid JSON).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Summary of a validated Chrome trace (see [`validate_chrome_json`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceStats {
    pub objects: usize,
    pub instants: usize,
    pub begins: usize,
    pub ends: usize,
}

/// Shared per-element check between the in-memory and streaming
/// validators.
fn check_chrome_element(
    item: &crate::json::Value,
    i: usize,
    stats: &mut ChromeTraceStats,
    open: &mut std::collections::BTreeMap<String, i64>,
) -> Result<(), String> {
    use crate::json;
    let json::Value::Object(fields) = item else {
        return Err(format!("array element {i} is not an object"));
    };
    let get = |key: &str| -> Option<&json::Value> {
        fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    };
    let Some(json::Value::String(ph)) = get("ph") else {
        return Err(format!("array element {i} has no \"ph\" field"));
    };
    match ph.as_str() {
        "i" => stats.instants += 1,
        "b" | "e" => {
            let Some(json::Value::String(id)) = get("id") else {
                return Err(format!("async event {i} has no \"id\" field"));
            };
            let n = open.entry(id.clone()).or_insert(0);
            if ph == "b" {
                stats.begins += 1;
                *n += 1;
            } else {
                stats.ends += 1;
                *n -= 1;
                if *n < 0 {
                    return Err(format!("\"e\" for id {id} without a matching \"b\""));
                }
            }
        }
        _ => {}
    }
    Ok(())
}

fn check_chrome_balance(open: &std::collections::BTreeMap<String, i64>) -> Result<(), String> {
    if let Some((id, n)) = open.iter().find(|(_, &n)| n != 0) {
        return Err(format!("id {id} has {n} unclosed \"b\" event(s)"));
    }
    Ok(())
}

/// Validate a Chrome tracing JSON document held in memory: it must parse
/// as a JSON array of objects, and every async `"ph":"b"` must have a
/// matching `"ph":"e"` with the same id (balanced, never closing an
/// unopened id). For large on-disk traces use [`validate_chrome_reader`],
/// which checks the same properties chunk-by-chunk in bounded memory.
pub fn validate_chrome_json(s: &str) -> Result<ChromeTraceStats, String> {
    use crate::json;
    let value = json::parse(s)?;
    let json::Value::Array(items) = value else {
        return Err("top-level JSON value is not an array".into());
    };
    let mut stats = ChromeTraceStats {
        objects: items.len(),
        instants: 0,
        begins: 0,
        ends: 0,
    };
    let mut open: std::collections::BTreeMap<String, i64> = std::collections::BTreeMap::new();
    for (i, item) in items.iter().enumerate() {
        check_chrome_element(item, i, &mut stats, &mut open)?;
    }
    check_chrome_balance(&open)?;
    Ok(stats)
}

/// Streaming variant of [`validate_chrome_json`]: scans the top-level
/// array one element at a time, parsing each object individually, so peak
/// memory is one element plus the open-id table — a multi-GB scale-run
/// trace validates without being materialized. Byte-for-byte the same
/// accept/reject decisions as the in-memory validator.
pub fn validate_chrome_reader<R: io::Read>(r: R) -> Result<ChromeTraceStats, String> {
    use io::Read as _;
    let mut bytes = io::BufReader::new(r).bytes();
    let mut next = || -> Result<Option<u8>, String> {
        match bytes.next() {
            Some(Ok(b)) => Ok(Some(b)),
            Some(Err(e)) => Err(format!("read error: {e}")),
            None => Ok(None),
        }
    };
    // Leading whitespace then '['.
    let mut c = next()?;
    while matches!(c, Some(b) if (b as char).is_ascii_whitespace()) {
        c = next()?;
    }
    if c != Some(b'[') {
        return Err("top-level JSON value is not an array".into());
    }
    let mut stats = ChromeTraceStats {
        objects: 0,
        instants: 0,
        begins: 0,
        ends: 0,
    };
    let mut open: std::collections::BTreeMap<String, i64> = std::collections::BTreeMap::new();
    let mut expect_element = false; // after a comma an element is mandatory
    loop {
        // Between elements: skip whitespace, handle ',' and ']'.
        let mut b = match next()? {
            Some(b) => b,
            None => return Err("unexpected end of document inside array".into()),
        };
        if (b as char).is_ascii_whitespace() {
            continue;
        }
        match b {
            b']' if !expect_element => break,
            b',' if !expect_element && stats.objects > 0 => {
                expect_element = true;
                continue;
            }
            b',' | b']' => return Err("malformed array separators".into()),
            _ => {}
        }
        // Accumulate one balanced element. Trace documents contain only
        // objects; scalars are accumulated too and rejected by the parse.
        let mut elem: Vec<u8> = Vec::new();
        let mut depth = 0usize;
        let mut in_str = false;
        let mut escaped = false;
        loop {
            elem.push(b);
            if in_str {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    in_str = false;
                }
            } else {
                match b {
                    b'"' => in_str = true,
                    b'{' | b'[' => depth += 1,
                    b'}' | b']' => {
                        depth = depth
                            .checked_sub(1)
                            .ok_or_else(|| "unbalanced brackets in array element".to_string())?;
                    }
                    _ => {}
                }
                // A scalar element ends at the next top-level ',' or ']';
                // push-back is handled by peeking below.
                if depth == 0 && !matches!(b, b'0'..=b'9' | b'a'..=b'z' | b'.' | b'-' | b'+' | b'E')
                {
                    break;
                }
            }
            b = match next()? {
                Some(b) => b,
                None => {
                    if depth == 0 && !in_str {
                        break;
                    }
                    return Err("unexpected end of document inside array element".into());
                }
            };
            // Scalar elements (numbers, literals) end before ',' / ']'.
            if depth == 0 && !in_str && (b == b',' || b == b']') {
                break;
            }
        }
        let text = std::str::from_utf8(&elem).map_err(|e| format!("invalid UTF-8: {e}"))?;
        let value = crate::json::parse(text.trim())?;
        check_chrome_element(&value, stats.objects, &mut stats, &mut open)?;
        stats.objects += 1;
        expect_element = false;
        // If the element scan stopped *on* the separator byte, honor it.
        if depth == 0 && !in_str && (b == b',' || b == b']') {
            if b == b']' {
                break;
            }
            expect_element = true;
        }
    }
    check_chrome_balance(&open)?;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime(5), "x", "hello");
        let id = t.span_begin(SimTime(5), "x", "s", SpanId::NONE);
        assert!(id.is_none());
        t.span_attr(id, "k", "v");
        t.span_end(SimTime(9), id);
        assert!(t.events().is_empty());
        assert_eq!(t.span_count(), 0);
        assert_eq!(t.iter_spans().count(), 0);
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let mut t = Trace::enabled();
        t.record(SimTime(1), "pilot", "launch");
        t.record(SimTime(2), "yarn", "rm up");
        t.record(SimTime(3), "pilot", "active");
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.in_category("pilot").count(), 2);
        assert_eq!(t.find("rm up").unwrap().time, SimTime(2));
        assert!(t.find("nope").is_none());
    }

    #[test]
    fn spans_nest_and_complete() {
        let mut t = Trace::enabled();
        let root = t.span_begin(SimTime(0), "pilot", "pilot.run", SpanId::NONE);
        let child = t.span_begin(SimTime(10), "pilot", "pilot.bootstrap", root);
        t.span_attr(child, "mode", "I");
        t.span_end(SimTime(50), child);
        t.span_end(SimTime(90), root);
        assert_eq!(root, SpanId(1));
        assert_eq!(child, SpanId(2));
        let c = t.span(child).unwrap();
        assert_eq!(c.parent, Some(root));
        assert_eq!(c.duration().unwrap().0, 40);
        assert_eq!(t.span_name(c), "pilot.bootstrap");
        assert_eq!(t.attr(c, "mode"), Some("I"));
        assert_eq!(t.attr(c, "nope"), None);
        assert_eq!(t.attrs(c).collect::<Vec<_>>(), vec![("mode", "I")],);
        assert_eq!(t.roots_named("pilot.run").count(), 1);
    }

    #[test]
    fn span_names_are_interned() {
        let mut t = Trace::enabled();
        let a = t.span_begin(SimTime(1), "x", "unit.run", SpanId::NONE);
        let b = t.span_begin(SimTime(2), "x", "unit.run", SpanId::NONE);
        assert_eq!(t.span(a).unwrap().name, t.span(b).unwrap().name);
        assert_eq!(t.symbol("unit.run"), Some(t.span(a).unwrap().name));
        assert_eq!(t.symbol("never.recorded"), None);
    }

    #[test]
    fn drafted_span_is_bit_identical_to_inline_calls() {
        // Same sequence of spans, one trace via drafts, one inline: the
        // symbol tables, span ids and attr symbols must match exactly.
        let mut inline = Trace::enabled();
        let a = inline.span_begin(SimTime(1), "unit", "unit.compute", SpanId::NONE);
        inline.span_attr(a, "pilot", "3");
        inline.span_attr(a, "cores", "8");
        let b = inline.span_begin(SimTime(2), "unit", "unit.io", a);
        inline.span_end(SimTime(3), b);
        inline.span_end(SimTime(4), a);

        let mut drafted = Trace::enabled();
        let draft = SpanDraft::new("unit", "unit.compute")
            .attr("pilot", "3")
            .attr("cores", "8");
        let a2 = drafted.begin_draft(SimTime(1), draft, SpanId::NONE);
        let b2 = drafted.begin_draft(SimTime(2), SpanDraft::new("unit", "unit.io"), a2);
        drafted.span_end(SimTime(3), b2);
        drafted.span_end(SimTime(4), a2);

        assert_eq!(a, a2);
        assert_eq!(b, b2);
        assert!(inline.iter_spans().eq(drafted.iter_spans()));
        assert_eq!(
            inline.attr(inline.span(a).unwrap(), "pilot"),
            drafted.attr(drafted.span(a2).unwrap(), "pilot")
        );
    }

    #[test]
    fn live_span_accounting_tracks_peak() {
        let mut t = Trace::enabled();
        let a = t.span_begin(SimTime(1), "x", "a", SpanId::NONE);
        let b = t.span_begin(SimTime(2), "x", "b", a);
        assert_eq!(t.live_spans(), 2);
        t.span_end(SimTime(3), b);
        let c = t.span_begin(SimTime(4), "x", "c", a);
        t.span_end(SimTime(5), c);
        t.span_end(SimTime(6), a);
        assert_eq!(t.live_spans(), 0);
        assert_eq!(t.peak_live_spans(), 2);
        // Idempotent re-end must not underflow the live counter.
        t.span_end(SimTime(7), a);
        assert_eq!(t.live_spans(), 0);
    }

    #[test]
    fn chunked_storage_spans_multiple_chunks() {
        let mut t = Trace::enabled();
        let n = CHUNK * 2 + 7;
        for i in 0..n {
            let id = t.span_begin(SimTime(i as u64), "x", "s", SpanId::NONE);
            t.span_end(SimTime(i as u64 + 1), id);
        }
        assert_eq!(t.span_count(), n);
        assert_eq!(t.iter_spans().count(), n);
        // Ids remain sequential and addressable across chunk boundaries.
        for probe in [1u64, CHUNK as u64, CHUNK as u64 + 1, n as u64] {
            assert_eq!(t.span(SpanId(probe)).unwrap().id, SpanId(probe));
        }
        assert!(t.span(SpanId(n as u64 + 1)).is_none());
    }

    #[test]
    fn span_end_is_idempotent() {
        let mut t = Trace::enabled();
        let s = t.span_begin(SimTime(1), "x", "s", SpanId::NONE);
        t.span_end(SimTime(5), s);
        t.span_end(SimTime(9), s);
        assert_eq!(t.span(s).unwrap().end, Some(SimTime(5)));
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Trace::enabled();
        t.record(SimTime(1_000), "pilot", r#"launch "x""#);
        t.record(SimTime(2_000), "yarn", "rm up");
        let j = t.to_chrome_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        // Metadata rows for both categories + two instant events.
        assert_eq!(j.matches("thread_name").count(), 2);
        assert_eq!(j.matches("\"ph\":\"i\"").count(), 2);
        // Quotes in messages are escaped.
        assert!(j.contains("launch \\\"x\\\""));
        validate_chrome_json(&j).unwrap();
    }

    #[test]
    fn chrome_json_escapes_control_characters() {
        let mut t = Trace::enabled();
        t.record(SimTime(1), "x", "line1\nline2\tcol\rret\u{1}bell");
        let j = t.to_chrome_json();
        assert!(j.contains("line1\\nline2\\tcol\\rret\\u0001bell"));
        assert!(!j.contains('\n'));
        validate_chrome_json(&j).unwrap();
    }

    #[test]
    fn chrome_json_emits_balanced_span_pairs() {
        let mut t = Trace::enabled();
        let root = t.span_begin(SimTime(0), "unit", "unit.run", SpanId::NONE);
        let child = t.span_begin(SimTime(5), "unit", "unit.stage_in", root);
        t.span_attr(child, "bytes", "1024");
        t.span_end(SimTime(9), child);
        t.span_end(SimTime(20), root);
        let open = t.span_begin(SimTime(21), "unit", "abandoned", SpanId::NONE);
        assert!(!open.is_none());
        let j = t.to_chrome_json();
        let stats = validate_chrome_json(&j).unwrap();
        // Only completed spans are exported; the open one is skipped.
        assert_eq!(stats.begins, 2);
        assert_eq!(stats.ends, 2);
        assert!(j.contains("\"bytes\":\"1024\""));
        assert!(j.contains("\"parent\":\"0x1\""));
    }

    #[test]
    fn streaming_validator_matches_in_memory_validator() {
        let mut t = Trace::enabled();
        t.record(SimTime(1), "pilot", "launch \"x\"\nnext");
        let root = t.span_begin(SimTime(0), "unit", "unit.run", SpanId::NONE);
        let child = t.span_begin(SimTime(5), "unit", "unit.stage_in", root);
        t.span_attr(child, "bytes", "1024");
        t.span_end(SimTime(9), child);
        t.span_end(SimTime(20), root);
        let j = t.to_chrome_json();
        let a = validate_chrome_json(&j).unwrap();
        let b = validate_chrome_reader(j.as_bytes()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_validator_rejects_what_the_in_memory_one_rejects() {
        for doc in [
            "[",
            "{}",
            "[1]",
            r#"[{"name":"s","cat":"c","ph":"b","ts":1,"pid":1,"tid":1,"id":"0x1","args":{}}]"#,
            r#"[{"name":"s","cat":"c","ph":"e","ts":1,"pid":1,"tid":1,"id":"0x1"}]"#,
            "[{\"ph\":\"i\",\"name\":\"a\nb\"}]",
            "[,]",
            "[{\"ph\":\"i\"},]",
        ] {
            assert!(
                validate_chrome_reader(doc.as_bytes()).is_err(),
                "accepted {doc:?}"
            );
        }
        // Whitespace layouts the in-memory parser accepts also pass.
        let ok = " [ {\"ph\":\"i\"} , {\"ph\":\"i\"} ] ";
        assert_eq!(validate_chrome_reader(ok.as_bytes()).unwrap().instants, 2);
        assert_eq!(validate_chrome_reader("[]".as_bytes()).unwrap().objects, 0);
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_chrome_json("[").is_err());
        assert!(validate_chrome_json("{}").is_err());
        assert!(validate_chrome_json("[1]").is_err());
        // Unbalanced: a "b" with no matching "e".
        let unbalanced =
            r#"[{"name":"s","cat":"c","ph":"b","ts":1,"pid":1,"tid":1,"id":"0x1","args":{}}]"#;
        assert!(validate_chrome_json(unbalanced).is_err());
        // "e" before any "b" for that id.
        let inverted = r#"[{"name":"s","cat":"c","ph":"e","ts":1,"pid":1,"tid":1,"id":"0x1"}]"#;
        assert!(validate_chrome_json(inverted).is_err());
        // Raw newline inside a string is invalid JSON.
        assert!(validate_chrome_json("[{\"ph\":\"i\",\"name\":\"a\nb\"}]").is_err());
    }

    #[test]
    fn span_index_matches_naive_children_scan() {
        let mut t = Trace::enabled();
        let root = t.span_begin(SimTime(0), "x", "root", SpanId::NONE);
        let a = t.span_begin(SimTime(1), "x", "a", root);
        let _b = t.span_begin(SimTime(2), "x", "b", root);
        let c = t.span_begin(SimTime(3), "x", "c", a);
        let idx = SpanIndex::build(&t);
        assert_eq!(idx.children(root).len(), 2);
        assert_eq!(idx.children(a), &[c]);
        assert_eq!(idx.children(c), &[] as &[SpanId]);
        assert_eq!(idx.children(SpanId::NONE), &[] as &[SpanId]);
        for s in t.iter_spans() {
            let naive: Vec<SpanId> = t
                .iter_spans()
                .filter(|k| k.parent == Some(s.id))
                .map(|k| k.id)
                .collect();
            assert_eq!(idx.children(s.id), &naive[..]);
        }
    }

    #[test]
    fn render_is_one_line_per_event() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_secs_f64(1.0), "a", "m1");
        t.record(SimTime::from_secs_f64(2.0), "b", "m2");
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("m1") && s.contains("m2"));
    }

    #[test]
    fn render_spans_shows_open_and_closed() {
        let mut t = Trace::enabled();
        let a = t.span_begin(SimTime(1), "x", "a", SpanId::NONE);
        t.span_begin(SimTime(2), "x", "b", a);
        t.span_end(SimTime(7), a);
        let s = t.render_spans();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("1..7"));
        assert!(s.contains("open"));
    }
}
