//! Structured event trace.
//!
//! Components record `(time, category, message)` triples; tests and examples
//! use the trace to assert on and display causal timelines. When disabled
//! (the default) recording is a no-op.

use crate::time::SimTime;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub time: SimTime,
    pub category: &'static str,
    pub message: String,
}

/// Append-only trace log.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
}

impl Trace {
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            events: Vec::new(),
        }
    }

    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn record(&mut self, time: SimTime, category: &'static str, message: impl Into<String>) {
        if self.enabled {
            self.events.push(TraceEvent {
                time,
                category,
                message: message.into(),
            });
        }
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events in a given category.
    pub fn in_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// First event whose message contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.message.contains(needle))
    }

    /// Export as Chrome tracing JSON (`chrome://tracing` / Perfetto):
    /// one instant event per record, grouped by category as thread names.
    pub fn to_chrome_json(&self) -> String {
        let mut cats: Vec<&'static str> = self.events.iter().map(|e| e.category).collect();
        cats.sort_unstable();
        cats.dedup();
        let tid = |c: &str| cats.iter().position(|&x| x == c).unwrap_or(0) + 1;
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = String::from("[");
        for (i, c) in cats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                tid(c),
                escape(c)
            ));
        }
        for e in &self.events {
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\"}}",
                escape(&e.message),
                e.time.0,
                tid(e.category)
            ));
        }
        out.push(']');
        out
    }

    /// Render the trace as an aligned timeline (for examples / debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{:>12} [{:<10}] {}\n",
                format!("{}", e.time),
                e.category,
                e.message
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime(5), "x", "hello");
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let mut t = Trace::enabled();
        t.record(SimTime(1), "pilot", "launch");
        t.record(SimTime(2), "yarn", "rm up");
        t.record(SimTime(3), "pilot", "active");
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.in_category("pilot").count(), 2);
        assert_eq!(t.find("rm up").unwrap().time, SimTime(2));
        assert!(t.find("nope").is_none());
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Trace::enabled();
        t.record(SimTime(1_000), "pilot", r#"launch "x""#);
        t.record(SimTime(2_000), "yarn", "rm up");
        let j = t.to_chrome_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        // Metadata rows for both categories + two instant events.
        assert_eq!(j.matches("thread_name").count(), 2);
        assert_eq!(j.matches("\"ph\":\"i\"").count(), 2);
        // Quotes in messages are escaped.
        assert!(j.contains("launch \\\"x\\\""));
    }

    #[test]
    fn render_is_one_line_per_event() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_secs_f64(1.0), "a", "m1");
        t.record(SimTime::from_secs_f64(2.0), "b", "m2");
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("m1") && s.contains("m2"));
    }
}
