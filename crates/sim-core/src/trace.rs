//! Structured event trace: instant events and duration spans.
//!
//! Components record instant `(time, category, message)` triples and
//! begin/end **spans** — intervals with stable ids, parent links and
//! key/value attributes. Tests and examples use the trace to assert on and
//! display causal timelines; the phase profiler ([`crate::profile`]) walks
//! the span tree to attribute wall-clock to the paper's phases. When
//! disabled (the default) every recording call is a no-op, so an
//! uninstrumented run stays bit-identical to an instrumented one.

use crate::time::SimTime;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub time: SimTime,
    pub category: &'static str,
    pub message: String,
}

/// Identifier of a span. Ids are assigned sequentially from 1 in begin
/// order; `SpanId::NONE` (0) is the sentinel returned when tracing is
/// disabled — every span operation on it is a no-op, so call sites never
/// need to branch on whether observability is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    pub const NONE: SpanId = SpanId(0);

    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// A begin/end interval in virtual time. `end` is `None` while the span is
/// open (and stays `None` forever for spans abandoned by a fault-killed
/// attempt — exports and the profiler only consider completed spans).
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub id: SpanId,
    pub parent: Option<SpanId>,
    pub category: &'static str,
    pub name: String,
    pub begin: SimTime,
    pub end: Option<SimTime>,
    pub attrs: Vec<(String, String)>,
}

impl Span {
    /// Duration, if the span is complete.
    pub fn duration(&self) -> Option<crate::time::SimDuration> {
        Some(self.end?.since(self.begin))
    }
}

/// Append-only trace log.
#[derive(Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
    spans: Vec<Span>,
}

impl Trace {
    pub fn disabled() -> Self {
        Trace::default()
    }

    pub fn enabled() -> Self {
        Trace {
            enabled: true,
            ..Trace::default()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an instant event (no-op when disabled).
    pub fn record(&mut self, time: SimTime, category: &'static str, message: impl Into<String>) {
        if self.enabled {
            self.events.push(TraceEvent {
                time,
                category,
                message: message.into(),
            });
        }
    }

    /// Open a span. Returns `SpanId::NONE` when disabled; pass
    /// `SpanId::NONE` as `parent` for a root span.
    pub fn span_begin(
        &mut self,
        time: SimTime,
        category: &'static str,
        name: impl Into<String>,
        parent: SpanId,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        let id = SpanId(self.spans.len() as u64 + 1);
        self.spans.push(Span {
            id,
            parent: if parent.is_none() { None } else { Some(parent) },
            category,
            name: name.into(),
            begin: time,
            end: None,
            attrs: Vec::new(),
        });
        id
    }

    /// Attach a key/value attribute to an open span (no-op on `NONE`).
    pub fn span_attr(&mut self, id: SpanId, key: impl Into<String>, value: impl Into<String>) {
        if id.is_none() {
            return;
        }
        let span = &mut self.spans[id.0 as usize - 1];
        span.attrs.push((key.into(), value.into()));
    }

    /// Close a span (no-op on `NONE` or if already closed).
    pub fn span_end(&mut self, time: SimTime, id: SpanId) {
        if id.is_none() {
            return;
        }
        let span = &mut self.spans[id.0 as usize - 1];
        if span.end.is_none() {
            debug_assert!(time >= span.begin, "span ends before it begins");
            span.end = Some(time);
        }
    }

    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// All spans, in begin order (open spans included).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    pub fn span(&self, id: SpanId) -> Option<&Span> {
        if id.is_none() {
            return None;
        }
        self.spans.get(id.0 as usize - 1)
    }

    /// Completed root spans (no parent) with the given name, in id order.
    pub fn roots_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans
            .iter()
            .filter(move |s| s.parent.is_none() && s.name == name && s.end.is_some())
    }

    /// Events in a given category.
    pub fn in_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceEvent> {
        self.events.iter().filter(move |e| e.category == category)
    }

    /// First event whose message contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.message.contains(needle))
    }

    /// Export as Chrome tracing JSON (`chrome://tracing` / Perfetto):
    /// instant events as `"ph":"i"`, completed spans as async-nestable
    /// `"ph":"b"`/`"ph":"e"` pairs keyed by span id (no per-thread stack
    /// discipline required), grouped by category as thread names.
    pub fn to_chrome_json(&self) -> String {
        let mut cats: Vec<&'static str> = self
            .events
            .iter()
            .map(|e| e.category)
            .chain(self.spans.iter().map(|s| s.category))
            .collect();
        cats.sort_unstable();
        cats.dedup();
        let tid = |c: &str| cats.iter().position(|&x| x == c).unwrap_or(0) + 1;
        let mut out = String::from("[");
        for (i, c) in cats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                tid(c),
                escape_json(c)
            ));
        }
        for e in &self.events {
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\"}}",
                escape_json(&e.message),
                e.time.0,
                tid(e.category)
            ));
        }
        for s in &self.spans {
            let Some(end) = s.end else { continue };
            let mut args = String::new();
            if let Some(p) = s.parent {
                args.push_str(&format!("\"parent\":\"0x{:x}\"", p.0));
            }
            for (k, v) in &s.attrs {
                if !args.is_empty() {
                    args.push(',');
                }
                args.push_str(&format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)));
            }
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"b\",\"ts\":{},\"pid\":1,\"tid\":{},\"id\":\"0x{:x}\",\"args\":{{{}}}}}",
                escape_json(&s.name),
                escape_json(s.category),
                s.begin.0,
                tid(s.category),
                s.id.0,
                args
            ));
            out.push_str(&format!(
                ",{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"e\",\"ts\":{},\"pid\":1,\"tid\":{},\"id\":\"0x{:x}\"}}",
                escape_json(&s.name),
                escape_json(s.category),
                end.0,
                tid(s.category),
                s.id.0
            ));
        }
        out.push(']');
        out
    }

    /// Render the trace as an aligned timeline (for examples / debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "{:>12} [{:<10}] {}\n",
                format!("{}", e.time),
                e.category,
                e.message
            ));
        }
        out
    }

    /// Render the span list, one line per span (for goldens / debugging).
    pub fn render_spans(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let end = match s.end {
                Some(t) => format!("{}", t.0),
                None => "open".into(),
            };
            let parent = match s.parent {
                Some(p) => format!("{}", p.0),
                None => "-".into(),
            };
            out.push_str(&format!(
                "#{} parent={} [{}] {} {}..{}\n",
                s.id.0, parent, s.category, s.name, s.begin.0, end
            ));
        }
        out
    }
}

/// JSON string escaping covering quotes, backslashes and all control
/// characters (newlines and tabs in messages used to produce invalid JSON).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Summary of a validated Chrome trace (see [`validate_chrome_json`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChromeTraceStats {
    pub objects: usize,
    pub instants: usize,
    pub begins: usize,
    pub ends: usize,
}

/// Validate a Chrome tracing JSON document: it must parse as a JSON array
/// of objects, and every async `"ph":"b"` must have a matching `"ph":"e"`
/// with the same id (balanced, never closing an unopened id). Used by CI
/// on the artifact the quickstart example emits.
pub fn validate_chrome_json(s: &str) -> Result<ChromeTraceStats, String> {
    use crate::json;
    let value = json::parse(s)?;
    let json::Value::Array(items) = value else {
        return Err("top-level JSON value is not an array".into());
    };
    let mut stats = ChromeTraceStats {
        objects: items.len(),
        instants: 0,
        begins: 0,
        ends: 0,
    };
    let mut open: std::collections::BTreeMap<String, i64> = std::collections::BTreeMap::new();
    for (i, item) in items.iter().enumerate() {
        let json::Value::Object(fields) = item else {
            return Err(format!("array element {i} is not an object"));
        };
        let get = |key: &str| -> Option<&json::Value> {
            fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        };
        let Some(json::Value::String(ph)) = get("ph") else {
            return Err(format!("array element {i} has no \"ph\" field"));
        };
        match ph.as_str() {
            "i" => stats.instants += 1,
            "b" | "e" => {
                let Some(json::Value::String(id)) = get("id") else {
                    return Err(format!("async event {i} has no \"id\" field"));
                };
                let n = open.entry(id.clone()).or_insert(0);
                if ph == "b" {
                    stats.begins += 1;
                    *n += 1;
                } else {
                    stats.ends += 1;
                    *n -= 1;
                    if *n < 0 {
                        return Err(format!("\"e\" for id {id} without a matching \"b\""));
                    }
                }
            }
            _ => {}
        }
    }
    if let Some((id, n)) = open.iter().find(|(_, &n)| n != 0) {
        return Err(format!("id {id} has {n} unclosed \"b\" event(s)"));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime(5), "x", "hello");
        let id = t.span_begin(SimTime(5), "x", "s", SpanId::NONE);
        assert!(id.is_none());
        t.span_attr(id, "k", "v");
        t.span_end(SimTime(9), id);
        assert!(t.events().is_empty());
        assert!(t.spans().is_empty());
    }

    #[test]
    fn enabled_trace_records_and_filters() {
        let mut t = Trace::enabled();
        t.record(SimTime(1), "pilot", "launch");
        t.record(SimTime(2), "yarn", "rm up");
        t.record(SimTime(3), "pilot", "active");
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.in_category("pilot").count(), 2);
        assert_eq!(t.find("rm up").unwrap().time, SimTime(2));
        assert!(t.find("nope").is_none());
    }

    #[test]
    fn spans_nest_and_complete() {
        let mut t = Trace::enabled();
        let root = t.span_begin(SimTime(0), "pilot", "pilot.run", SpanId::NONE);
        let child = t.span_begin(SimTime(10), "pilot", "pilot.bootstrap", root);
        t.span_attr(child, "mode", "I");
        t.span_end(SimTime(50), child);
        t.span_end(SimTime(90), root);
        assert_eq!(root, SpanId(1));
        assert_eq!(child, SpanId(2));
        let c = t.span(child).unwrap();
        assert_eq!(c.parent, Some(root));
        assert_eq!(c.duration().unwrap().0, 40);
        assert_eq!(c.attrs, vec![("mode".to_string(), "I".to_string())]);
        assert_eq!(t.roots_named("pilot.run").count(), 1);
    }

    #[test]
    fn span_end_is_idempotent() {
        let mut t = Trace::enabled();
        let s = t.span_begin(SimTime(1), "x", "s", SpanId::NONE);
        t.span_end(SimTime(5), s);
        t.span_end(SimTime(9), s);
        assert_eq!(t.span(s).unwrap().end, Some(SimTime(5)));
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Trace::enabled();
        t.record(SimTime(1_000), "pilot", r#"launch "x""#);
        t.record(SimTime(2_000), "yarn", "rm up");
        let j = t.to_chrome_json();
        assert!(j.starts_with('[') && j.ends_with(']'));
        // Metadata rows for both categories + two instant events.
        assert_eq!(j.matches("thread_name").count(), 2);
        assert_eq!(j.matches("\"ph\":\"i\"").count(), 2);
        // Quotes in messages are escaped.
        assert!(j.contains("launch \\\"x\\\""));
        validate_chrome_json(&j).unwrap();
    }

    #[test]
    fn chrome_json_escapes_control_characters() {
        let mut t = Trace::enabled();
        t.record(SimTime(1), "x", "line1\nline2\tcol\rret\u{1}bell");
        let j = t.to_chrome_json();
        assert!(j.contains("line1\\nline2\\tcol\\rret\\u0001bell"));
        assert!(!j.contains('\n'));
        validate_chrome_json(&j).unwrap();
    }

    #[test]
    fn chrome_json_emits_balanced_span_pairs() {
        let mut t = Trace::enabled();
        let root = t.span_begin(SimTime(0), "unit", "unit.run", SpanId::NONE);
        let child = t.span_begin(SimTime(5), "unit", "unit.stage_in", root);
        t.span_attr(child, "bytes", "1024");
        t.span_end(SimTime(9), child);
        t.span_end(SimTime(20), root);
        let open = t.span_begin(SimTime(21), "unit", "abandoned", SpanId::NONE);
        assert!(!open.is_none());
        let j = t.to_chrome_json();
        let stats = validate_chrome_json(&j).unwrap();
        // Only completed spans are exported; the open one is skipped.
        assert_eq!(stats.begins, 2);
        assert_eq!(stats.ends, 2);
        assert!(j.contains("\"bytes\":\"1024\""));
        assert!(j.contains("\"parent\":\"0x1\""));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_chrome_json("[").is_err());
        assert!(validate_chrome_json("{}").is_err());
        assert!(validate_chrome_json("[1]").is_err());
        // Unbalanced: a "b" with no matching "e".
        let unbalanced =
            r#"[{"name":"s","cat":"c","ph":"b","ts":1,"pid":1,"tid":1,"id":"0x1","args":{}}]"#;
        assert!(validate_chrome_json(unbalanced).is_err());
        // "e" before any "b" for that id.
        let inverted = r#"[{"name":"s","cat":"c","ph":"e","ts":1,"pid":1,"tid":1,"id":"0x1"}]"#;
        assert!(validate_chrome_json(inverted).is_err());
        // Raw newline inside a string is invalid JSON.
        assert!(validate_chrome_json("[{\"ph\":\"i\",\"name\":\"a\nb\"}]").is_err());
    }

    #[test]
    fn render_is_one_line_per_event() {
        let mut t = Trace::enabled();
        t.record(SimTime::from_secs_f64(1.0), "a", "m1");
        t.record(SimTime::from_secs_f64(2.0), "b", "m2");
        let s = t.render();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("m1") && s.contains("m2"));
    }

    #[test]
    fn render_spans_shows_open_and_closed() {
        let mut t = Trace::enabled();
        let a = t.span_begin(SimTime(1), "x", "a", SpanId::NONE);
        t.span_begin(SimTime(2), "x", "b", a);
        t.span_end(SimTime(7), a);
        let s = t.render_spans();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("1..7"));
        assert!(s.contains("open"));
    }
}
