//! Run-wide metrics registry: named counters, gauges and time-stamped
//! series with label support.
//!
//! The registry lives on the [`crate::Engine`] next to the trace and is
//! enabled together with it; when disabled every write is a no-op so an
//! unobserved run stays bit-identical. Keys are plain strings formatted
//! `name{label=value,...}` and stored in `BTreeMap`s, so a
//! [`MetricsSnapshot`] is deterministic and directly comparable across
//! runs (the determinism suite does exactly that).

use std::collections::BTreeMap;

use crate::stats::Summary;
use crate::time::SimTime;
use crate::trace::escape_json;

/// Format a metric key with labels: `name{a=1,b=2}` (no braces without
/// labels). Label order is preserved as given — call sites use a fixed
/// order so keys stay stable.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::from(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push('=');
        out.push_str(v);
    }
    out.push('}');
    out
}

/// Registry of named counters, gauges and series.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, Vec<(SimTime, f64)>>,
}

impl MetricsRegistry {
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    pub fn enabled() -> Self {
        MetricsRegistry {
            enabled: true,
            ..MetricsRegistry::default()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Add to a counter (no-op when disabled). Existing keys take a
    /// borrowed-lookup fast path — no per-call `String` allocation on the
    /// hot counters an at-scale run bumps millions of times.
    pub fn add(&mut self, name: &str, n: u64) {
        if self.enabled {
            if let Some(v) = self.counters.get_mut(name) {
                *v += n;
            } else {
                self.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Increment a counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment a labelled counter, e.g. `incr_labeled("yarn.containers",
    /// &[("kind", "am")])`.
    pub fn incr_labeled(&mut self, name: &str, labels: &[(&str, &str)]) {
        if self.enabled {
            let key = metric_key(name, labels);
            *self.counters.entry(key).or_insert(0) += 1;
        }
    }

    /// Current counter value (0 if never written or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to the latest value (no-op when disabled).
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        if self.enabled {
            if let Some(v) = self.gauges.get_mut(name) {
                *v = value;
            } else {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Append a time-stamped observation to a series (no-op when disabled).
    pub fn observe(&mut self, name: &str, time: SimTime, value: f64) {
        if self.enabled {
            if let Some(points) = self.series.get_mut(name) {
                points.push((time, value));
            } else {
                self.series.insert(name.to_string(), vec![(time, value)]);
            }
        }
    }

    pub fn series(&self, name: &str) -> Vec<(SimTime, f64)> {
        self.series.get(name).cloned().unwrap_or_default()
    }

    /// Summary statistics over a series' values.
    pub fn series_summary(&self, name: &str) -> Summary {
        let values: Vec<f64> = self
            .series
            .get(name)
            .map(|s| s.iter().map(|&(_, v)| v).collect())
            .unwrap_or_default();
        Summary::of(&values)
    }

    /// Apply a [`MetricDraft`] assembled off-thread: operations replay in
    /// push order against this registry, exactly as the equivalent inline
    /// calls would.
    pub fn apply(&mut self, draft: MetricDraft) {
        for op in draft.ops {
            match op {
                MetricOp::Add(name, n) => self.add(&name, n),
                MetricOp::GaugeSet(name, value) => self.gauge_set(&name, value),
                MetricOp::Observe(name, time, value) => self.observe(&name, time, value),
            }
        }
    }

    /// Deterministic point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            gauges: self.gauges.iter().map(|(k, &v)| (k.clone(), v)).collect(),
            series: self
                .series
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// One deferred metric operation (keys pre-formatted with
/// [`metric_key`] where labels are involved).
#[derive(Debug, Clone, PartialEq)]
enum MetricOp {
    Add(String, u64),
    GaugeSet(String, f64),
    Observe(String, SimTime, f64),
}

/// A batch of metric updates assembled off the engine thread (it is
/// `Send`; key formatting — the expensive part — happens where the draft
/// is built). [`MetricsRegistry::apply`] replays the operations in push
/// order, so a drafted update is indistinguishable from inline calls.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricDraft {
    ops: Vec<MetricOp>,
}

impl MetricDraft {
    pub fn new() -> Self {
        MetricDraft::default()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Queue a counter increment by `n` (use [`metric_key`] for labels).
    pub fn add(mut self, name: impl Into<String>, n: u64) -> Self {
        self.ops.push(MetricOp::Add(name.into(), n));
        self
    }

    /// Queue a counter increment by 1.
    pub fn incr(self, name: impl Into<String>) -> Self {
        self.add(name, 1)
    }

    /// Queue a gauge assignment.
    pub fn gauge_set(mut self, name: impl Into<String>, value: f64) -> Self {
        self.ops.push(MetricOp::GaugeSet(name.into(), value));
        self
    }

    /// Queue a time-stamped series observation.
    pub fn observe(mut self, name: impl Into<String>, time: SimTime, value: f64) -> Self {
        self.ops.push(MetricOp::Observe(name.into(), time, value));
        self
    }
}

/// Sorted, comparable export of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub series: Vec<(String, Vec<(SimTime, f64)>)>,
}

impl MetricsSnapshot {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.series.is_empty()
    }

    /// Aligned text table of counters and gauges (series shown as count +
    /// last value).
    pub fn render_table(&self) -> String {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (k, v) in &self.counters {
            rows.push((k.clone(), v.to_string()));
        }
        for (k, v) in &self.gauges {
            rows.push((k.clone(), format!("{v:.3}")));
        }
        for (k, v) in &self.series {
            let last = v
                .last()
                .map(|&(_, x)| format!("{x:.3}"))
                .unwrap_or_default();
            rows.push((k.clone(), format!("n={} last={last}", v.len())));
        }
        let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        let mut out = String::new();
        for (k, v) in rows {
            out.push_str(&format!("{k:<width$}  {v}\n"));
        }
        out
    }

    /// CSV export: `kind,name,value` (series flattened to one row per point
    /// with the timestamp in microseconds appended).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::from("kind,name,time_us,value\n");
        for (k, v) in &self.counters {
            out.push_str(&format!("counter,{},,{v}\n", quote(k)));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge,{},,{v}\n", quote(k)));
        }
        for (k, points) in &self.series {
            for (t, v) in points {
                out.push_str(&format!("series,{},{},{v}\n", quote(k), t.0));
            }
        }
        out
    }

    /// JSON export.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape_json(k)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", escape_json(k)));
        }
        out.push_str("},\"series\":{");
        for (i, (k, points)) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":[", escape_json(k)));
            for (j, (t, v)) in points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{v}]", t.0));
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = MetricsRegistry::disabled();
        m.incr("a");
        m.gauge_set("g", 1.0);
        m.observe("s", SimTime(1), 2.0);
        assert_eq!(m.counter("a"), 0);
        assert_eq!(m.gauge("g"), None);
        assert!(m.snapshot().is_empty());
    }

    #[test]
    fn counters_and_labels_accumulate() {
        let mut m = MetricsRegistry::enabled();
        m.incr("jobs");
        m.add("jobs", 4);
        m.incr_labeled("containers", &[("kind", "am")]);
        m.incr_labeled("containers", &[("kind", "task")]);
        m.incr_labeled("containers", &[("kind", "task")]);
        assert_eq!(m.counter("jobs"), 5);
        assert_eq!(m.counter("containers{kind=am}"), 1);
        assert_eq!(m.counter("containers{kind=task}"), 2);
        assert_eq!(metric_key("x", &[("a", "1"), ("b", "2")]), "x{a=1,b=2}");
    }

    #[test]
    fn snapshot_is_deterministic_and_comparable() {
        let build = || {
            let mut m = MetricsRegistry::enabled();
            m.incr("z.last");
            m.incr("a.first");
            m.gauge_set("util", 0.5);
            m.observe("queue", SimTime(1), 3.0);
            m.observe("queue", SimTime(2), 4.0);
            m.snapshot()
        };
        let s1 = build();
        let s2 = build();
        assert_eq!(s1, s2);
        // BTreeMap ordering: sorted by key.
        assert_eq!(s1.counters[0].0, "a.first");
        assert_eq!(s1.counters[1].0, "z.last");
        assert_eq!(s1.series[0].1.len(), 2);
    }

    #[test]
    fn series_summary_matches_values() {
        let mut m = MetricsRegistry::enabled();
        m.observe("s", SimTime(1), 10.0);
        m.observe("s", SimTime(2), 20.0);
        assert_eq!(m.series_summary("s").mean, 15.0);
        assert_eq!(m.series("s").len(), 2);
    }

    #[test]
    fn exports_are_parseable_and_complete() {
        let mut m = MetricsRegistry::enabled();
        m.incr_labeled("c", &[("k", "v")]);
        m.gauge_set("g", 2.5);
        m.observe("s", SimTime(7), 1.0);
        let snap = m.snapshot();
        let table = snap.render_table();
        assert!(table.contains("c{k=v}") && table.contains("2.500"));
        let csv = snap.to_csv();
        assert!(csv.lines().count() == 4); // header + counter + gauge + 1 point
        assert!(csv.contains("series,s,7,1"));
        let json = snap.to_json();
        assert!(json.contains("\"c{k=v}\":1"));
        assert!(json.contains("\"s\":[[7,1]]"));
    }

    #[test]
    fn drafted_metrics_match_inline_calls() {
        let mut inline = MetricsRegistry::enabled();
        inline.incr_labeled("units", &[("pilot", "1")]);
        inline.add("bytes", 42);
        inline.gauge_set("load", 0.5);
        inline.observe("lat", SimTime(3), 1.25);

        let mut drafted = MetricsRegistry::enabled();
        let draft = MetricDraft::new()
            .incr(metric_key("units", &[("pilot", "1")]))
            .add("bytes", 42)
            .gauge_set("load", 0.5)
            .observe("lat", SimTime(3), 1.25);
        assert!(!draft.is_empty());
        drafted.apply(draft);

        assert_eq!(inline.snapshot(), drafted.snapshot());
        // Empty draft is a no-op.
        drafted.apply(MetricDraft::new());
        assert_eq!(inline.snapshot(), drafted.snapshot());
    }
}
