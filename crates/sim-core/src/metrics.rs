//! Lightweight metrics: counters and time-stamped series.
//!
//! Experiment harnesses read these after a run; they are intentionally
//! simple (no registry, no atomics — the simulator core is single-threaded).

use std::cell::RefCell;
use std::rc::Rc;

use crate::stats::Summary;
use crate::time::SimTime;

/// A shared monotonic counter.
#[derive(Clone, Default)]
pub struct Counter {
    value: Rc<RefCell<u64>>,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    pub fn add(&self, n: u64) {
        *self.value.borrow_mut() += n;
    }

    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        *self.value.borrow()
    }
}

/// A shared time-stamped series of float observations.
#[derive(Clone, Default)]
pub struct Series {
    points: Rc<RefCell<Vec<(SimTime, f64)>>>,
}

impl Series {
    pub fn new() -> Self {
        Series::default()
    }

    pub fn record(&self, time: SimTime, value: f64) {
        self.points.borrow_mut().push((time, value));
    }

    pub fn len(&self) -> usize {
        self.points.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.borrow().is_empty()
    }

    pub fn values(&self) -> Vec<f64> {
        self.points.borrow().iter().map(|&(_, v)| v).collect()
    }

    pub fn points(&self) -> Vec<(SimTime, f64)> {
        self.points.borrow().clone()
    }

    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.borrow().last().copied()
    }

    /// Summary statistics of the recorded values.
    pub fn summary(&self) -> Summary {
        Summary::of(&self.values())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_shares() {
        let c = Counter::new();
        let c2 = c.clone();
        c.incr();
        c2.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn series_records_in_order() {
        let s = Series::new();
        s.record(SimTime(1), 10.0);
        s.record(SimTime(2), 20.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.values(), vec![10.0, 20.0]);
        assert_eq!(s.last(), Some((SimTime(2), 20.0)));
        let sum = s.summary();
        assert_eq!(sum.mean, 15.0);
    }
}
