//! A minimal JSON parser — enough to validate trace exports and to read the
//! schema-versioned `BENCH_*.json` artifacts back in `bench_compare`, with
//! zero external dependencies.
//!
//! Numbers are parsed as `f64`; object fields preserve document order and
//! duplicate keys are kept (lookup returns the first). Surrogate pairs in
//! `\u` escapes are not supported — none of our emitters produce them.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// First field with this key, if `self` is an object that has one.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if `self` is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string slice, if `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Parse a complete JSON document (trailing data is an error).
pub fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8".into());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => {
                            out.push(c);
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push(b'\n');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push(b'\t');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push(b'\r');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push(0x08);
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push(0x0c);
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            // Surrogate pairs are not needed for our traces.
                            let c = char::from_u32(code)
                                .ok_or_else(|| "invalid \\u codepoint".to_string())?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control character 0x{c:02x} in string"));
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document_and_accessors_work() {
        let doc = r#"{"schema": 1, "name": "fig5", "phases": [{"p": "compute", "s": 2.5}], "ok": true, "none": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("schema").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("name").and_then(Value::as_str), Some("fig5"));
        let phases = v.get("phases").and_then(Value::as_array).unwrap();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].get("s").and_then(Value::as_f64), Some(2.5));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
        assert!(v.as_object().is_some());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("[nul]").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\n\t\"\\A""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\A"));
    }
}
