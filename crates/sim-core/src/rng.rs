//! Seeded randomness for stochastic latency/overhead models.
//!
//! Wraps a `rand` PRNG and adds the few distributions the simulator needs
//! (normal via Box–Muller, lognormal, truncated variants) so that we do not
//! pull in `rand_distr`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random source used by every stochastic model in a run.
pub struct SimRng {
    inner: StdRng,
    /// Cached second value from Box–Muller.
    spare_normal: Option<f64>,
}

impl SimRng {
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derive an independent child RNG (for splitting streams between
    /// components without coupling their consumption order).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.inner.gen())
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform: lo {lo} > hi {hi}");
        if lo == hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Pick an index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0,1] to keep ln() finite.
        let u1: f64 = 1.0 - self.inner.gen::<f64>();
        let u2: f64 = self.inner.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean/std.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.standard_normal()
    }

    /// Normal truncated below at `min` (used for latencies: never negative).
    pub fn normal_min(&mut self, mean: f64, std: f64, min: f64) -> f64 {
        self.normal(mean, std).max(min)
    }

    /// Lognormal parameterised by the *underlying* normal's mu/sigma.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = 1.0 - self.inner.gen::<f64>();
        -mean * u.ln()
    }

    /// Access to the raw `rand::Rng` for anything else.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0)).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut r = SimRng::new(7);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn normal_min_truncates() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.normal_min(0.0, 5.0, 0.25) >= 0.25);
        }
    }

    #[test]
    fn exponential_is_positive_with_right_mean() {
        let mut r = SimRng::new(9);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.exponential(3.0)).collect();
        assert!(xs.iter().all(|&x| x >= 0.0));
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.12, "mean {mean}");
    }

    #[test]
    fn fork_decouples_streams() {
        let mut a = SimRng::new(5);
        let mut fork1 = a.fork();
        let x = fork1.uniform(0.0, 1.0);
        // Consuming from the fork must not affect the parent's stream
        // relative to a parent that never forked-and-consumed.
        let mut b = SimRng::new(5);
        let _fork2 = b.fork();
        assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        let _ = x;
    }
}
