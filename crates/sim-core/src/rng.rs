//! Seeded randomness for stochastic latency/overhead models.
//!
//! Self-contained PRNG (SplitMix64-seeded xoshiro256++) plus the few
//! distributions the simulator needs (normal via Box–Muller, lognormal,
//! truncated variants), so the workspace builds with no external crates.

/// SplitMix64: used to expand a 64-bit seed into the xoshiro state (the
/// construction recommended by the xoshiro authors).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic random source used by every stochastic model in a run.
pub struct SimRng {
    s: [u64; 4],
    /// Cached second value from Box–Muller.
    spare_normal: Option<f64>,
}

impl SimRng {
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            spare_normal: None,
        }
    }

    /// Derive an independent child RNG (for splitting streams between
    /// components without coupling their consumption order).
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform: lo {lo} > hi {hi}");
        if lo == hi {
            return lo;
        }
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_u64: lo {lo} > hi {hi}");
        let span = (hi - lo).wrapping_add(1);
        if span == 0 {
            // Full u64 range.
            return self.next_u64();
        }
        lo + self.next_u64() % span
    }

    /// Pick an index in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0,1] to keep ln() finite.
        let u1: f64 = 1.0 - self.next_f64();
        let u2: f64 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean/std.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.standard_normal()
    }

    /// Normal truncated below at `min` (used for latencies: never negative).
    pub fn normal_min(&mut self, mean: f64, std: f64, min: f64) -> f64 {
        self.normal(mean, std).max(min)
    }

    /// Lognormal parameterised by the *underlying* normal's mu/sigma.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = 1.0 - self.next_f64();
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32)
            .filter(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            let x = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x), "{x}");
            let k = r.uniform_u64(5, 9);
            assert!((5..=9).contains(&k), "{k}");
            assert!(r.index(7) < 7);
        }
    }

    #[test]
    fn chance_extremes_are_exact() {
        let mut r = SimRng::new(13);
        for _ in 0..1000 {
            assert!(r.chance(1.0));
            assert!(!r.chance(0.0));
        }
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut r = SimRng::new(7);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn normal_min_truncates() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            assert!(r.normal_min(0.0, 5.0, 0.25) >= 0.25);
        }
    }

    #[test]
    fn exponential_is_positive_with_right_mean() {
        let mut r = SimRng::new(9);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.exponential(3.0)).collect();
        assert!(xs.iter().all(|&x| x >= 0.0));
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.12, "mean {mean}");
    }

    #[test]
    fn fork_decouples_streams() {
        let mut a = SimRng::new(5);
        let mut fork1 = a.fork();
        let x = fork1.uniform(0.0, 1.0);
        // Consuming from the fork must not affect the parent's stream
        // relative to a parent that never forked-and-consumed.
        let mut b = SimRng::new(5);
        let _fork2 = b.fork();
        assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        let _ = x;
    }
}
