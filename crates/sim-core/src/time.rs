//! Virtual time for the discrete-event engine.
//!
//! All simulation time is kept as integer **microseconds** so that event
//! ordering is exact and runs are bit-reproducible. Floating-point seconds
//! are only used at the edges (cost models, reporting).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An absolute instant on the virtual clock (microseconds since simulation
/// start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

pub const MICROS_PER_SEC: u64 = 1_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    /// Time as fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid time: {secs}");
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Duration since an earlier instant. Panics if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// Saturating version of [`SimTime::since`].
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0 && secs.is_finite(), "invalid duration: {secs}");
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Scale a duration by a non-negative factor.
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor >= 0.0 && factor.is_finite());
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000);
        let t2 = t + SimDuration::from_millis(250);
        assert_eq!(t2.as_secs_f64(), 1.75);
        assert_eq!((t2 - t).as_millis(), 250);
    }

    #[test]
    fn since_measures_span() {
        let a = SimTime::from_secs_f64(2.0);
        let b = SimTime::from_secs_f64(5.0);
        assert_eq!(b.since(a), SimDuration::from_secs(3));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn since_panics_on_future() {
        let a = SimTime::from_secs_f64(2.0);
        let b = SimTime::from_secs_f64(5.0);
        let _ = a.since(b);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(1.25)), "1.250s");
        assert_eq!(format!("{}", SimDuration::from_millis(30)), "0.030s");
    }
}
