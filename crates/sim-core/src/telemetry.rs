//! Engine flight recorder: host-side-only telemetry.
//!
//! The simulator's observability layer (spans, metrics, profiler) watches
//! the *simulated workload*; this module watches the *engine itself* —
//! where host time goes (prepare batches, apply windows), how full PDES
//! batches run, which domains carry the event load, how often the batch
//! horizon stalls parallelism and which lookahead source is the binding
//! constraint, plus periodic high-water samples of the slab, the live
//! span set and the coordination backlog.
//!
//! **Contract: telemetry never feeds back into the simulation.** It reads
//! wall-clock time (this is the only sim-core module allowed to — the
//! `wallclock` lint enforces it) and it is only ever *written*; no engine
//! or model decision consults it. `tests/telemetry.rs` holds runs
//! bit-identical with the recorder on vs off in both engine modes.
//!
//! Everything aggregates into mergeable [`Histogram`]s and counters, so
//! snapshots from a serial pass and a parallel pass (or from many bench
//! repetitions) combine exactly. [`TelemetrySnapshot::to_json`] renders
//! the schema-v1 document embedded in `BENCH_*.json` under
//! `host.telemetry` and diffed by `trace_diff`.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::stats::Histogram;
use crate::time::SimDuration;

/// Version stamp of [`TelemetrySnapshot::to_json`]'s document shape.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// Applied events per high-water/apply-window sample. Sampling (rather
/// than per-event clock reads) bounds recorder overhead to well under a
/// microsecond per event even with telemetry on.
pub const SAMPLE_EVERY: u64 = 1024;

/// How the engine derived a batch horizon when a prepare batch was
/// attempted — the stall-accounting taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HorizonOutcome {
    /// The queue was empty: no horizon exists.
    NoHorizon,
    /// Horizon clamped to the queue head's own time (global head, or no
    /// lookahead registered) — zero speculation depth.
    Clamped,
    /// Horizon extended past the head by the registered lookahead.
    Extended,
}

/// Opaque wall-clock timer handle. Engine code holds one of these across
/// a prepare batch without ever touching `Instant` itself, keeping all
/// wall-clock reads inside this module.
#[derive(Debug)]
pub struct BatchTimer(Option<Instant>);

/// The flight recorder an [`crate::engine::Engine`] carries. Disabled by
/// default; every hook is a cheap early-return when off.
#[derive(Debug, Default, Clone)]
pub struct EngineTelemetry {
    enabled: bool,
    /// Host µs per parallel prepare batch (collection + worker scope).
    prep_batch_us: Histogram,
    /// Host µs per window of [`SAMPLE_EVERY`] applied events.
    apply_window_us: Histogram,
    /// Split events prepared per non-empty parallel batch.
    batch_occupancy: Histogram,
    /// Applied events per [`crate::engine::Domain`] id.
    domain_events: BTreeMap<u32, u64>,
    batches_attempted: u64,
    empty_batches: u64,
    horizon_none: u64,
    horizon_clamped: u64,
    horizon_extended: u64,
    /// Minimum delay registered per lookahead source label.
    lookahead_sources: BTreeMap<&'static str, SimDuration>,
    window_start: Option<Instant>,
    window_events: u64,
    samples: u64,
    slab_len_hw: u64,
    live_spans_hw: u64,
    coord_backlog_hw: u64,
    coord_backlog_samples: u64,
    lease_renewals: u64,
    fence_rejections: u64,
    partition_windows: u64,
}

impl EngineTelemetry {
    pub fn new() -> EngineTelemetry {
        EngineTelemetry::default()
    }

    /// Turn the recorder on (idempotent). There is deliberately no `off`
    /// switch mid-run: a snapshot must describe one contiguous recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Hook: one event applied on the main thread. Counts the domain and,
    /// every [`SAMPLE_EVERY`] applies, closes an apply window (recording
    /// its host µs) and samples high-water marks.
    pub fn on_apply(&mut self, domain: u32, slab_len: usize, live_spans: usize) {
        if !self.enabled {
            return;
        }
        *self.domain_events.entry(domain).or_insert(0) += 1;
        self.window_events += 1;
        if self.window_events >= SAMPLE_EVERY {
            let now = Instant::now();
            if let Some(t0) = self.window_start {
                self.apply_window_us
                    .record(saturating_micros(now.duration_since(t0)));
            }
            self.window_start = Some(now);
            self.window_events = 0;
            self.samples += 1;
            self.slab_len_hw = self.slab_len_hw.max(slab_len as u64);
            self.live_spans_hw = self.live_spans_hw.max(live_spans as u64);
        }
    }

    /// Hook: a prepare batch was attempted with the given horizon outcome.
    pub fn note_batch_attempt(&mut self, outcome: HorizonOutcome) {
        if !self.enabled {
            return;
        }
        self.batches_attempted += 1;
        match outcome {
            HorizonOutcome::NoHorizon => self.horizon_none += 1,
            HorizonOutcome::Clamped => self.horizon_clamped += 1,
            HorizonOutcome::Extended => self.horizon_extended += 1,
        }
    }

    /// Hook: an attempted batch admitted no split event (horizon stall).
    pub fn note_empty_batch(&mut self) {
        if self.enabled {
            self.empty_batches += 1;
        }
    }

    /// Start timing a prepare batch. Returns an armed timer only when
    /// enabled, so the disabled path never reads the clock.
    pub fn start_batch_timer(&self) -> BatchTimer {
        BatchTimer(self.enabled.then(Instant::now))
    }

    /// Finish a prepare batch: record its host µs and its occupancy
    /// (split events prepared). No-op when the timer was unarmed.
    pub fn finish_batch(&mut self, timer: BatchTimer, occupancy: u64) {
        if let Some(t0) = timer.0 {
            self.prep_batch_us.record(saturating_micros(t0.elapsed()));
            self.batch_occupancy.record(occupancy);
        }
    }

    /// Hook: a component registered a labelled lookahead source. Recorded
    /// unconditionally (it is deterministic configuration, not a host
    /// measurement) so the binding constraint is known even when the
    /// recorder is enabled after setup.
    pub fn note_lookahead_source(&mut self, source: &'static str, delay: SimDuration) {
        let entry = self.lookahead_sources.entry(source).or_insert(delay);
        if delay < *entry {
            *entry = delay;
        }
    }

    /// Hook: observed coordination-store backlog depth (sampled by the
    /// store's apply path, not per message).
    pub fn sample_coord_backlog(&mut self, depth: usize) {
        if !self.enabled {
            return;
        }
        self.coord_backlog_samples += 1;
        self.coord_backlog_hw = self.coord_backlog_hw.max(depth as u64);
    }

    /// Hook: an agent's pilot lease was renewed through the store.
    pub fn note_lease_renewal(&mut self) {
        if self.enabled {
            self.lease_renewals += 1;
        }
    }

    /// Hook: the store rejected a stale-fencing-epoch effect (a healed
    /// zombie's write arrived after ownership moved on).
    pub fn note_fence_rejection(&mut self) {
        if self.enabled {
            self.fence_rejections += 1;
        }
    }

    /// Hook: a partition reachability window opened against a pilot.
    pub fn note_partition_window(&mut self) {
        if self.enabled {
            self.partition_windows += 1;
        }
    }

    /// Freeze the recorder into a mergeable snapshot. The engine passes
    /// its parallel counters in (they live on the engine, outside the
    /// recorder, because they are maintained even with telemetry off).
    pub fn snapshot(&self, par_batches: u64, par_prepared: u64) -> TelemetrySnapshot {
        TelemetrySnapshot {
            enabled: self.enabled,
            par_batches,
            par_prepared,
            prep_batch_us: self.prep_batch_us.clone(),
            apply_window_us: self.apply_window_us.clone(),
            batch_occupancy: self.batch_occupancy.clone(),
            events_per_domain: self.domain_events.clone(),
            batches_attempted: self.batches_attempted,
            empty_batches: self.empty_batches,
            horizon_none: self.horizon_none,
            horizon_clamped: self.horizon_clamped,
            horizon_extended: self.horizon_extended,
            lookahead_sources: self.lookahead_sources.clone(),
            highwater_samples: self.samples,
            slab_len_hw: self.slab_len_hw,
            live_spans_hw: self.live_spans_hw,
            coord_backlog_hw: self.coord_backlog_hw,
            coord_backlog_samples: self.coord_backlog_samples,
            lease_renewals: self.lease_renewals,
            fence_rejections: self.fence_rejections,
            partition_windows: self.partition_windows,
        }
    }
}

fn saturating_micros(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Frozen, mergeable view of an [`EngineTelemetry`] recorder plus the
/// engine's parallel counters. Snapshots from independent runs (serial
/// and parallel bench passes, repetitions) merge exactly: histograms add
/// bucket-wise, counters add, high-water marks take the max, lookahead
/// sources take the per-label minimum.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    pub enabled: bool,
    pub par_batches: u64,
    pub par_prepared: u64,
    pub prep_batch_us: Histogram,
    pub apply_window_us: Histogram,
    pub batch_occupancy: Histogram,
    pub events_per_domain: BTreeMap<u32, u64>,
    pub batches_attempted: u64,
    pub empty_batches: u64,
    pub horizon_none: u64,
    pub horizon_clamped: u64,
    pub horizon_extended: u64,
    pub lookahead_sources: BTreeMap<&'static str, SimDuration>,
    pub highwater_samples: u64,
    pub slab_len_hw: u64,
    pub live_spans_hw: u64,
    pub coord_backlog_hw: u64,
    pub coord_backlog_samples: u64,
    pub lease_renewals: u64,
    pub fence_rejections: u64,
    pub partition_windows: u64,
}

/// How many domains get their own entry in the JSON document; the rest
/// roll up into `"other"` so scale runs (thousands of domains) keep
/// artifacts small.
const DOMAIN_TOP_K: usize = 16;

impl TelemetrySnapshot {
    /// Merge another snapshot into this one (exact; see type docs).
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        self.enabled |= other.enabled;
        self.par_batches += other.par_batches;
        self.par_prepared += other.par_prepared;
        self.prep_batch_us.merge(&other.prep_batch_us);
        self.apply_window_us.merge(&other.apply_window_us);
        self.batch_occupancy.merge(&other.batch_occupancy);
        for (&d, &n) in &other.events_per_domain {
            *self.events_per_domain.entry(d).or_insert(0) += n;
        }
        self.batches_attempted += other.batches_attempted;
        self.empty_batches += other.empty_batches;
        self.horizon_none += other.horizon_none;
        self.horizon_clamped += other.horizon_clamped;
        self.horizon_extended += other.horizon_extended;
        for (&src, &delay) in &other.lookahead_sources {
            let entry = self.lookahead_sources.entry(src).or_insert(delay);
            if delay < *entry {
                *entry = delay;
            }
        }
        self.highwater_samples += other.highwater_samples;
        self.slab_len_hw = self.slab_len_hw.max(other.slab_len_hw);
        self.live_spans_hw = self.live_spans_hw.max(other.live_spans_hw);
        self.coord_backlog_hw = self.coord_backlog_hw.max(other.coord_backlog_hw);
        self.coord_backlog_samples += other.coord_backlog_samples;
        self.lease_renewals += other.lease_renewals;
        self.fence_rejections += other.fence_rejections;
        self.partition_windows += other.partition_windows;
    }

    /// The binding lookahead constraint: the labelled source with the
    /// smallest registered delay (ties break to the lexicographically
    /// first label — `lookahead_sources` is a `BTreeMap`).
    pub fn binding_lookahead(&self) -> Option<(&'static str, SimDuration)> {
        self.lookahead_sources
            .iter()
            .min_by_key(|&(src, &d)| (d, *src))
            .map(|(&src, &d)| (src, d))
    }

    /// Total applied events across all domains.
    pub fn total_events(&self) -> u64 {
        self.events_per_domain.values().sum()
    }

    /// Render the schema-v1 JSON document (stable key order; `null` for
    /// absent optionals; domain breakdown capped at the top
    /// [`DOMAIN_TOP_K`] by event count with an `"other"` rollup).
    pub fn to_json(&self) -> String {
        let mut domains: Vec<(u32, u64)> = self
            .events_per_domain
            .iter()
            .map(|(&d, &n)| (d, n))
            .collect();
        // Largest counts first; domain id breaks ties for determinism.
        domains.sort_by_key(|&(d, n)| (std::cmp::Reverse(n), d));
        let mut top = String::new();
        let mut other = 0u64;
        for (i, &(d, n)) in domains.iter().enumerate() {
            if i < DOMAIN_TOP_K {
                if i > 0 {
                    top.push(',');
                }
                top.push_str(&format!("\"{d}\":{n}"));
            } else {
                other += n;
            }
        }
        let mut sources = String::new();
        for (i, (src, d)) in self.lookahead_sources.iter().enumerate() {
            if i > 0 {
                sources.push(',');
            }
            sources.push_str(&format!("\"{src}\":{}", d.0));
        }
        let (binding, binding_us) = match self.binding_lookahead() {
            Some((src, d)) => (format!("\"{src}\""), d.0.to_string()),
            None => ("null".into(), "null".into()),
        };
        format!(
            concat!(
                "{{\"schema\":{schema},\"enabled\":{enabled},",
                "\"par\":{{\"batches\":{pb},\"prepared\":{pp}}},",
                "\"stalls\":{{\"attempted\":{att},\"empty\":{emp},\"no_horizon\":{hn},",
                "\"clamped\":{hc},\"extended\":{he}}},",
                "\"lookahead\":{{\"binding\":{binding},\"binding_us\":{binding_us},",
                "\"sources\":{{{sources}}}}},",
                "\"prep_batch_us\":{prep},",
                "\"apply_window_us\":{apply},",
                "\"batch_occupancy\":{occ},",
                "\"events_per_domain\":{{\"domains\":{nd},\"total\":{tot},",
                "\"top\":{{{top}}},\"other\":{other}}},",
                "\"highwater\":{{\"samples\":{hs},\"slab_len\":{slab},",
                "\"live_spans\":{live},\"coord_backlog\":{cb},\"coord_samples\":{cs}}},",
                "\"ownership\":{{\"lease_renewals\":{lr},\"fence_rejections\":{fr},",
                "\"partition_windows\":{pw}}}}}"
            ),
            schema = TELEMETRY_SCHEMA_VERSION,
            enabled = self.enabled,
            pb = self.par_batches,
            pp = self.par_prepared,
            att = self.batches_attempted,
            emp = self.empty_batches,
            hn = self.horizon_none,
            hc = self.horizon_clamped,
            he = self.horizon_extended,
            binding = binding,
            binding_us = binding_us,
            sources = sources,
            prep = self.prep_batch_us.to_json(),
            apply = self.apply_window_us.to_json(),
            occ = self.batch_occupancy.to_json(),
            nd = domains.len(),
            tot = self.total_events(),
            top = top,
            other = other,
            hs = self.highwater_samples,
            slab = self.slab_len_hw,
            live = self.live_spans_hw,
            cb = self.coord_backlog_hw,
            cs = self.coord_backlog_samples,
            lr = self.lease_renewals,
            fr = self.fence_rejections,
            pw = self.partition_windows,
        )
    }

    /// One-line human summary for report footers.
    pub fn summary_line(&self) -> String {
        let binding = match self.binding_lookahead() {
            Some((src, d)) => format!("{src} ({d})"),
            None => "none registered".into(),
        };
        format!(
            "engine telemetry: {} events over {} domains; par {} batches / {} prepared \
             (occupancy {}); prep {}; apply/{}ev {}; stalls {}/{} empty \
             ({} clamped, {} extended); binding lookahead {binding}; \
             high-water slab={} live_spans={} coord_backlog={}",
            self.total_events(),
            self.events_per_domain.len(),
            self.par_batches,
            self.par_prepared,
            self.batch_occupancy.render_line(),
            self.prep_batch_us.render_line(),
            SAMPLE_EVERY,
            self.apply_window_us.render_line(),
            self.empty_batches,
            self.batches_attempted,
            self.horizon_clamped,
            self.horizon_extended,
            self.slab_len_hw,
            self.live_spans_hw,
            self.coord_backlog_hw,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot(seed: u64) -> TelemetrySnapshot {
        let mut t = EngineTelemetry::new();
        t.enable();
        t.note_lookahead_source("link.transfer", SimDuration::from_millis(50 + seed));
        t.note_lookahead_source("store.write", SimDuration::from_millis(5));
        t.note_batch_attempt(HorizonOutcome::Extended);
        t.note_batch_attempt(HorizonOutcome::Clamped);
        t.note_empty_batch();
        let timer = t.start_batch_timer();
        t.finish_batch(timer, 3 + seed);
        for i in 0..(SAMPLE_EVERY * 2 + 7) {
            t.on_apply((i % 3) as u32, 10, 2);
        }
        t.sample_coord_backlog(4 + seed as usize);
        t.note_lease_renewal();
        t.note_fence_rejection();
        t.note_partition_window();
        t.snapshot(2, 6)
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut t = EngineTelemetry::new();
        assert!(!t.is_enabled());
        t.on_apply(1, 100, 5);
        t.note_batch_attempt(HorizonOutcome::Extended);
        t.note_empty_batch();
        t.sample_coord_backlog(9);
        t.note_lease_renewal();
        t.note_fence_rejection();
        t.note_partition_window();
        let timer = t.start_batch_timer();
        t.finish_batch(timer, 5);
        let snap = t.snapshot(0, 0);
        assert_eq!(snap.total_events(), 0);
        assert_eq!(snap.batches_attempted, 0);
        assert!(snap.prep_batch_us.is_empty());
        assert!(snap.batch_occupancy.is_empty());
        assert_eq!(snap.coord_backlog_samples, 0);
        assert_eq!(snap.lease_renewals, 0);
        assert_eq!(snap.fence_rejections, 0);
        assert_eq!(snap.partition_windows, 0);
    }

    #[test]
    fn binding_lookahead_is_min_with_lexicographic_ties() {
        let mut t = EngineTelemetry::new();
        t.note_lookahead_source("b.source", SimDuration::from_millis(10));
        t.note_lookahead_source("a.source", SimDuration::from_millis(10));
        t.note_lookahead_source("c.source", SimDuration::from_millis(90));
        let snap = t.snapshot(0, 0);
        assert_eq!(
            snap.binding_lookahead(),
            Some(("a.source", SimDuration::from_millis(10)))
        );
        // Re-registering a source keeps the minimum.
        t.note_lookahead_source("c.source", SimDuration::from_millis(1));
        let snap = t.snapshot(0, 0);
        assert_eq!(
            snap.binding_lookahead(),
            Some(("c.source", SimDuration::from_millis(1)))
        );
    }

    #[test]
    fn merge_adds_counters_and_maxes_highwater() {
        let a = sample_snapshot(1);
        let b = sample_snapshot(2);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.par_batches, a.par_batches + b.par_batches);
        assert_eq!(m.total_events(), a.total_events() + b.total_events());
        assert_eq!(
            m.batches_attempted,
            a.batches_attempted + b.batches_attempted
        );
        assert_eq!(
            m.coord_backlog_hw,
            a.coord_backlog_hw.max(b.coord_backlog_hw)
        );
        assert_eq!(
            m.batch_occupancy.count(),
            a.batch_occupancy.count() + b.batch_occupancy.count()
        );
        // Lookahead sources keep the per-label minimum.
        assert_eq!(
            m.lookahead_sources["link.transfer"],
            SimDuration::from_millis(51)
        );
        // Merge is commutative.
        let mut m2 = b.clone();
        m2.merge(&a);
        assert_eq!(m, m2);
    }

    #[test]
    fn json_document_schema() {
        let snap = sample_snapshot(1);
        let j = snap.to_json();
        let doc = crate::json::parse(&j).expect("telemetry JSON parses");
        assert_eq!(doc.get("schema").and_then(|v| v.as_f64()), Some(1.0));
        for key in [
            "enabled",
            "par",
            "stalls",
            "lookahead",
            "prep_batch_us",
            "apply_window_us",
            "batch_occupancy",
            "events_per_domain",
            "highwater",
            "ownership",
        ] {
            assert!(doc.get(key).is_some(), "missing {key} in {j}");
        }
        let own = doc.get("ownership").expect("ownership");
        for key in ["lease_renewals", "fence_rejections", "partition_windows"] {
            assert_eq!(
                own.get(key).and_then(|v| v.as_f64()),
                Some(1.0),
                "ownership.{key}"
            );
        }
        let look = doc.get("lookahead").expect("lookahead");
        assert_eq!(
            look.get("binding").and_then(|v| v.as_str()),
            Some("store.write")
        );
        assert_eq!(
            look.get("binding_us").and_then(|v| v.as_f64()),
            Some(5000.0)
        );
        let domains = doc.get("events_per_domain").expect("events_per_domain");
        assert_eq!(domains.get("domains").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(
            domains.get("total").and_then(|v| v.as_f64()),
            Some((SAMPLE_EVERY * 2 + 7) as f64)
        );
    }

    #[test]
    fn summary_line_names_binding_constraint() {
        let snap = sample_snapshot(1);
        let line = snap.summary_line();
        assert!(line.contains("store.write"), "{line}");
        assert!(line.contains("engine telemetry"), "{line}");
    }
}
