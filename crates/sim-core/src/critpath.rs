//! Critical-path analysis over the span tree plus cross-span causal edges.
//!
//! The phase profiler ([`crate::profile`]) answers "where did this span's
//! wall-clock go" by sweeping one root's timeline. This module answers a
//! different question: **which chain of activities determined the
//! makespan**, and how much could everything else have slipped. The two
//! disagree exactly where the run is parallel — eight concurrent map tasks
//! contribute 8× their duration to an aggregate sweep, but only the
//! last-finishing map sits on the critical path.
//!
//! ## Model
//!
//! Activities are completed spans. Dependencies come from three sources:
//!
//! 1. **Tree edges** — a parent's completion waits on its children
//!    (containment), and time-ordered siblings gate each other: the unit
//!    phase chain `unit.scheduling → yarn.am_allocation →
//!    yarn.container_allocation → unit.stage_in → unit.exec →
//!    unit.stage_out` and the MapReduce barrier chain `mr.map → mr.shuffle
//!    → mr.reduce` are sequential spans under one parent, so the
//!    last-finisher rule below walks them without extra bookkeeping.
//! 2. **Pilot → unit causal edges** — `unit.run` spans are trace roots,
//!    but a pilot only ends after its units complete, so every `unit.run`
//!    whose `pilot` attribute matches a `pilot.run` root is *adopted* as a
//!    causal child of that pilot span.
//! 3. **Unit → pilot-bootstrap causal edges** — a unit's first
//!    `unit.scheduling` span covers submission → agent pickup, which is
//!    gated on the pilot's queue wait and bootstrap. Those pilot children
//!    are adopted under the first scheduling span so the startup portion of
//!    the critical path decomposes into the paper's Fig. 5 phases
//!    (queue wait / bootstrap / YARN startup / HDFS startup) instead of
//!    reading as one opaque scheduling wait.
//!
//! ## Algorithm
//!
//! A backward walk (the classic "last finishing predecessor" rule): start
//! at the root's end; the activity that gated that instant is the causal
//! child with the latest end not after the cursor; the gap between that
//! child's end and the cursor is the current span's own time; recurse into
//! the child and continue from its begin. The result is a contiguous chain
//! of segments partitioning `[root.begin, root.end]` — so the per-phase
//! critical-path durations sum *exactly* to the makespan, the same
//! integer-microsecond guarantee the profiler gives.
//!
//! **Slack** is local slack: a completed off-path span could have run
//! until the end of the critical-path segment its own end falls inside
//! without displacing the activity that was actually gating the run. That
//! is a deterministic lower bound on scheduling headroom, reported per
//! span and summarised per phase.
//!
//! Scaling: the walk shares one [`Profiler`] per analysis — the CSR
//! children index replaces the per-node full-trace rescans the legacy
//! walk did, and causal-edge construction compares interned [`Symbol`]s
//! instead of strings. The rendered output is pinned byte-for-byte
//! against the legacy walk by `tests/stream_equivalence.rs`.

use std::collections::{BTreeMap, BTreeSet};

use crate::intern::Symbol;
use crate::profile::{Phase, PhaseBreakdown, Profiler};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Span, SpanId, Trace};

/// One maximal interval of the critical path, charged to a single span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSegment {
    /// Span whose activity gated the run over this interval.
    pub span: SpanId,
    /// That span's name (resolved out of the intern table so segments can
    /// be rendered without a trace handle).
    pub name: String,
    /// Effective phase (own mapping or nearest mapped ancestor's).
    pub phase: Phase,
    pub begin: SimTime,
    pub end: SimTime,
}

impl PathSegment {
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.begin)
    }
}

/// Per-phase critical-path attribution: on-path time, off-path busy time,
/// and the tightest local slack of the phase's off-path spans.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CritPhaseRow {
    pub phase: Phase,
    /// Seconds of the critical path charged to this phase.
    pub path_s: f64,
    /// Busy seconds of this phase on completed spans *off* the path
    /// (span durations clamped to the analysis window; concurrent spans
    /// count multiply — this is work, not wall-clock).
    pub off_path_s: f64,
    /// Minimum local slack over the phase's off-path spans (`None` when
    /// every span of the phase is on the path or the phase is absent).
    pub min_slack_s: Option<f64>,
}

/// Result of a critical-path walk.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    pub begin: SimTime,
    pub end: SimTime,
    /// Time-ordered, contiguous segments partitioning `[begin, end]`.
    pub segments: Vec<PathSegment>,
    /// Critical-path time per phase; `phases.total` equals the makespan.
    pub phases: PhaseBreakdown,
    /// Local slack of every completed off-path span in the analysis set,
    /// in span-id order.
    pub slack: Vec<(SpanId, SimDuration)>,
    /// Off-path busy time per phase (work that did not gate the makespan).
    off_path: [SimDuration; Phase::ALL.len()],
    /// Minimum local slack per phase over off-path spans.
    min_slack: [Option<SimDuration>; Phase::ALL.len()],
}

impl CriticalPath {
    pub fn makespan(&self) -> SimDuration {
        self.end.since(self.begin)
    }

    pub fn makespan_secs(&self) -> f64 {
        self.makespan().as_secs_f64()
    }

    /// Whether `id` owns at least one critical-path segment.
    pub fn on_path(&self, id: SpanId) -> bool {
        self.segments.iter().any(|s| s.span == id)
    }

    /// Per-phase rows for every phase that is non-zero somewhere, in
    /// [`Phase::ALL`] order.
    pub fn phase_rows(&self) -> Vec<CritPhaseRow> {
        Phase::ALL
            .iter()
            .enumerate()
            .filter_map(|(i, &phase)| {
                let row = CritPhaseRow {
                    phase,
                    path_s: self.phases.secs(phase),
                    off_path_s: self.off_path[i].as_secs_f64(),
                    min_slack_s: self.min_slack[i].map(|d| d.as_secs_f64()),
                };
                (row.path_s > 0.0 || row.off_path_s > 0.0).then_some(row)
            })
            .collect()
    }

    /// One line per segment (for goldens / debugging).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.segments {
            out.push_str(&format!(
                "{:>12}..{:<12} {:<22} {} (#{})\n",
                s.begin.0,
                s.end.0,
                s.phase.label(),
                s.name,
                s.span.0
            ));
        }
        out
    }
}

/// Extra finish-to-start causal edges: `parent span → adopted children`.
/// Built once per analysis from the `pilot` attributes (see module docs).
struct CausalEdges {
    adopted: BTreeMap<SpanId, Vec<SpanId>>,
}

impl CausalEdges {
    fn build(profiler: &Profiler) -> CausalEdges {
        let trace = profiler.trace();
        let mut adopted: BTreeMap<SpanId, Vec<SpanId>> = BTreeMap::new();
        let pilot_run = trace.symbol("pilot.run");
        let unit_run = trace.symbol("unit.run");
        let scheduling = trace.symbol("unit.scheduling");
        let queue_wait = trace.symbol("pilot.queue_wait");
        let bootstrap = trace.symbol("pilot.bootstrap");
        // pilot id -> pilot.run span id (completed roots only).
        let pilots: BTreeMap<&str, SpanId> = trace
            .iter_spans()
            .filter(|s| Some(s.name) == pilot_run && s.parent.is_none() && s.end.is_some())
            .filter_map(|s| trace.attr(s, "pilot").map(|p| (p, s.id)))
            .collect();
        for unit in trace
            .iter_spans()
            .filter(|s| Some(s.name) == unit_run && s.parent.is_none() && s.end.is_some())
        {
            let Some(&pilot_span) = trace.attr(unit, "pilot").and_then(|p| pilots.get(p)) else {
                continue;
            };
            // Edge 2: the pilot's completion causally waits on its units.
            adopted.entry(pilot_span).or_default().push(unit.id);
            // Edge 3: the unit's first scheduling span waits on the pilot's
            // queue wait + bootstrap.
            let Some(first_sched) = profiler
                .children(unit.id)
                .iter()
                .filter_map(|&c| trace.span(c))
                .find(|s| Some(s.name) == scheduling && s.end.is_some())
            else {
                continue;
            };
            let startup: Vec<SpanId> = profiler
                .children(pilot_span)
                .iter()
                .filter_map(|&c| trace.span(c))
                .filter(|s| {
                    (Some(s.name) == queue_wait || Some(s.name) == bootstrap) && s.end.is_some()
                })
                .map(|s| s.id)
                .collect();
            adopted.entry(first_sched.id).or_default().extend(startup);
        }
        CausalEdges { adopted }
    }

    fn children_of<'a>(&self, profiler: &Profiler<'a>, id: SpanId) -> Vec<&'a Span> {
        let trace = profiler.trace();
        let mut kids: Vec<&Span> = profiler
            .children(id)
            .iter()
            .filter_map(|&c| trace.span(c))
            .filter(|s| s.end.is_some())
            .collect();
        if let Some(extra) = self.adopted.get(&id) {
            kids.extend(extra.iter().filter_map(|&c| trace.span(c)));
        }
        kids
    }
}

/// Critical path of the subtree (plus causal adoptions) rooted at `root`.
/// Returns `None` if the root is missing or never ended.
pub fn critical_path(trace: &Trace, root: SpanId) -> Option<CriticalPath> {
    let root_span = trace.span(root)?;
    let end = root_span.end?;
    let profiler = Profiler::new(trace);
    let edges = CausalEdges::build(&profiler);
    let mut state = WalkState::new(&profiler, &edges, root_span.begin, end);
    state.descend(root_span, end);
    state.finish(root_span.begin, end)
}

/// Critical path of the whole run: a virtual root spanning the earliest
/// begin to the latest end of all completed root spans, whose children are
/// the completed roots not already adopted under a pilot. Returns `None`
/// on a trace with no completed root spans.
pub fn critical_path_run(trace: &Trace) -> Option<CriticalPath> {
    let profiler = Profiler::new(trace);
    let edges = CausalEdges::build(&profiler);
    let adopted_units: BTreeSet<SpanId> = edges.adopted.values().flatten().copied().collect();
    let tops: Vec<&Span> = trace
        .iter_spans()
        .filter(|s| s.parent.is_none() && s.end.is_some() && !adopted_units.contains(&s.id))
        .collect();
    let begin = tops.iter().map(|s| s.begin).min()?;
    let end = tops.iter().map(|s| s.end.unwrap()).max()?;
    // Virtual root: walk the top-level roots as the children of an
    // unnamed containing activity charged to Overhead. `Symbol::NONE`
    // marks it; rendering special-cases it to "run".
    let virtual_root = Span {
        id: SpanId::NONE,
        parent: None,
        category: "run",
        name: Symbol::NONE,
        begin,
        end: Some(end),
        attrs: Vec::new(),
    };
    let mut state = WalkState::new(&profiler, &edges, begin, end);
    state.walk_children(&virtual_root, tops, end);
    state.finish(begin, end)
}

struct WalkState<'p, 'a> {
    profiler: &'p Profiler<'a>,
    edges: &'p CausalEdges,
    lo: SimTime,
    hi: SimTime,
    /// Segments in reverse time order while walking.
    segments: Vec<PathSegment>,
    /// Every span visited as a candidate set member (for slack).
    considered: Vec<SpanId>,
    /// Spans the walk descended into. A span fully covered by its gating
    /// child owns no segment but still lies on the path.
    visited: Vec<SpanId>,
}

impl<'p, 'a> WalkState<'p, 'a> {
    fn new(profiler: &'p Profiler<'a>, edges: &'p CausalEdges, lo: SimTime, hi: SimTime) -> Self {
        WalkState {
            profiler,
            edges,
            lo,
            hi,
            segments: Vec::new(),
            considered: Vec::new(),
            visited: Vec::new(),
        }
    }

    fn push(&mut self, span: &Span, begin: SimTime, end: SimTime) {
        let begin = SimTime(begin.0.max(self.lo.0));
        let end = SimTime(end.0.min(self.hi.0));
        if end <= begin {
            return;
        }
        let (name, phase) = if span.id.is_none() {
            ("run".to_string(), Phase::Overhead)
        } else {
            (
                self.profiler.trace().span_name(span).to_string(),
                self.profiler.effective_phase(span),
            )
        };
        self.segments.push(PathSegment {
            span: span.id,
            name,
            phase,
            begin,
            end,
        });
    }

    /// Charge `[span.begin, clamp_end]` of `span`, descending into the
    /// gating children.
    fn descend(&mut self, span: &Span, clamp_end: SimTime) {
        self.visited.push(span.id);
        let end = SimTime(
            span.end
                .expect("walk only visits completed spans")
                .0
                .min(clamp_end.0),
        );
        let kids = self.edges.children_of(self.profiler, span.id);
        self.walk_children_inner(span, kids, span.begin, end);
    }

    /// Like [`descend`] for the virtual run root (children supplied).
    fn walk_children(&mut self, span: &Span, kids: Vec<&'a Span>, end: SimTime) {
        self.walk_children_inner(span, kids, span.begin, end);
    }

    fn walk_children_inner(
        &mut self,
        span: &Span,
        kids: Vec<&Span>,
        span_begin: SimTime,
        span_end: SimTime,
    ) {
        for k in &kids {
            self.considered.push(k.id);
        }
        let mut t = span_end;
        while t > span_begin {
            // Gating child: the last finisher not after the cursor.
            // Zero-length spans carry no time and are skipped (also
            // guarantees the cursor strictly decreases). Ties broken by
            // later begin then higher id, matching the profiler sweep.
            let gate = kids
                .iter()
                .filter(|c| {
                    let ce = c.end.unwrap();
                    ce <= t && ce > c.begin && ce > span_begin
                })
                .max_by_key(|c| (c.end.unwrap().0, c.begin.0, c.id.0))
                .copied();
            let Some(gate) = gate else {
                self.push(span, span_begin, t);
                break;
            };
            let gate_end = gate.end.unwrap();
            if gate_end < t {
                // Gap between the gating child's end and the cursor is the
                // parent's own time.
                self.push(span, gate_end, t);
            }
            self.descend(gate, gate_end);
            t = SimTime(gate.begin.0.max(span_begin.0));
        }
    }

    fn finish(mut self, lo: SimTime, hi: SimTime) -> Option<CriticalPath> {
        self.segments.reverse();
        // The walk emits segments back-to-front; adopted spans can overlap
        // tree spans at the boundaries, so clip any overlap in favour of
        // the earlier-emitted (later-time) segment to keep the chain a
        // partition.
        let mut clipped: Vec<PathSegment> = Vec::with_capacity(self.segments.len());
        let mut cursor = lo;
        for mut seg in std::mem::take(&mut self.segments) {
            if seg.begin < cursor {
                seg.begin = cursor;
            }
            if seg.end <= seg.begin {
                continue;
            }
            cursor = seg.end;
            clipped.push(seg);
        }
        let mut phases = PhaseBreakdown::default();
        for seg in &clipped {
            phases.charge(seg.phase, seg.end.0 - seg.begin.0);
        }
        // Uncovered tail/head intervals (an open gap can only appear if the
        // root itself was virtual) are charged to Overhead so the phase
        // total still equals the makespan.
        let covered: u64 = clipped.iter().map(|s| s.end.0 - s.begin.0).sum();
        let span_total = hi.0.saturating_sub(lo.0);
        if covered < span_total {
            phases.charge(Phase::Overhead, span_total - covered);
        }

        // Slack + off-path busy time over the considered set.
        let mut on_path: BTreeSet<SpanId> = clipped.iter().map(|s| s.span).collect();
        on_path.extend(self.visited.iter().copied());
        let mut considered: Vec<SpanId> = std::mem::take(&mut self.considered);
        considered.sort_unstable();
        considered.dedup();
        let mut slack = Vec::new();
        let mut off_path = [SimDuration(0); Phase::ALL.len()];
        let mut min_slack: [Option<SimDuration>; Phase::ALL.len()] = [None; Phase::ALL.len()];
        for id in considered {
            if on_path.contains(&id) {
                continue;
            }
            let Some(span) = self.profiler.trace().span(id) else {
                continue;
            };
            let Some(end) = span.end else { continue };
            let b = span.begin.0.clamp(lo.0, hi.0);
            let e = end.0.clamp(lo.0, hi.0);
            if e <= b {
                continue;
            }
            // Off-path busy time: profile the span's own subtree so nested
            // work lands on its real phases (a skipped `unit.run` shows up
            // as compute + staging, not as one opaque blob). The sweep
            // charges intervals with no active descendant to Overhead;
            // those are this span's self-time, so fold them back into its
            // own phase when it has one.
            let sub = self.profiler.profile(id);
            let phase = self.profiler.effective_phase(span);
            for (idx, &p) in Phase::ALL.iter().enumerate() {
                let mut d = sub.get(p).0;
                if phase != Phase::Overhead {
                    if p == Phase::Overhead {
                        d = 0;
                    } else if p == phase {
                        d += sub.get(Phase::Overhead).0;
                    }
                }
                off_path[idx].0 += d;
            }
            let idx = Phase::ALL.iter().position(|&p| p == phase).unwrap();
            // Local slack: distance from this span's end to the end of the
            // critical-path segment its end falls inside.
            let gate_end = clipped
                .iter()
                .find(|s| s.begin.0 < e && e <= s.end.0)
                .map(|s| s.end.0)
                .unwrap_or(e);
            let d = SimDuration(gate_end - e);
            slack.push((id, d));
            min_slack[idx] = Some(match min_slack[idx] {
                Some(cur) if cur <= d => cur,
                _ => d,
            });
        }

        Some(CriticalPath {
            begin: lo,
            end: hi,
            segments: clipped,
            phases,
            slack,
            off_path,
            min_slack,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000)
    }

    /// Serial chain: the critical path is the whole timeline and matches
    /// the profiler's attribution exactly.
    #[test]
    fn serial_chain_partitions_makespan() {
        let mut tr = Trace::enabled();
        let root = tr.span_begin(t(0), "unit", "unit.run", SpanId::NONE);
        let s = tr.span_begin(t(0), "unit", "unit.scheduling", root);
        tr.span_end(t(5), s);
        let si = tr.span_begin(t(5), "unit", "unit.stage_in", root);
        tr.span_end(t(8), si);
        let ex = tr.span_begin(t(8), "unit", "unit.exec", root);
        let c = tr.span_begin(t(8), "unit", "unit.compute", ex);
        tr.span_end(t(20), c);
        tr.span_end(t(20), ex);
        let so = tr.span_begin(t(20), "unit", "unit.stage_out", root);
        tr.span_end(t(23), so);
        tr.span_end(t(23), root);
        let cp = critical_path(&tr, root).unwrap();
        assert_eq!(cp.makespan_secs(), 23.0);
        assert_eq!(cp.phases.total_secs(), 23.0);
        assert_eq!(cp.phases.secs(Phase::QueueWait), 5.0);
        assert_eq!(cp.phases.secs(Phase::StageIn), 3.0);
        assert_eq!(cp.phases.secs(Phase::Compute), 12.0);
        assert_eq!(cp.phases.secs(Phase::StageOut), 3.0);
        let p = crate::profile::profile_span(&tr, root);
        for ph in Phase::ALL {
            assert_eq!(cp.phases.secs(ph), p.secs(ph), "{ph:?}");
        }
        // Contiguity: segments tile [0, 23].
        let mut cursor = cp.begin;
        for seg in &cp.segments {
            assert_eq!(seg.begin, cursor);
            cursor = seg.end;
        }
        assert_eq!(cursor, cp.end);
        assert!(cp.slack.is_empty());
    }

    /// Parallel barrier: only the last-finishing map gates the shuffle;
    /// the others carry slack.
    #[test]
    fn barrier_picks_last_finisher_and_assigns_slack() {
        let mut tr = Trace::enabled();
        let job = tr.span_begin(t(0), "mr", "job", SpanId::NONE);
        let m1 = tr.span_begin(t(10), "mr", "mr.map", job);
        let m2 = tr.span_begin(t(10), "mr", "mr.map", job);
        let m3 = tr.span_begin(t(10), "mr", "mr.map", job);
        tr.span_end(t(50), m1);
        tr.span_end(t(40), m2);
        tr.span_end(t(20), m3);
        let sh = tr.span_begin(t(50), "mr", "mr.shuffle", job);
        tr.span_end(t(80), sh);
        let r = tr.span_begin(t(80), "mr", "mr.reduce", job);
        tr.span_end(t(100), r);
        tr.span_end(t(100), job);
        let cp = critical_path(&tr, job).unwrap();
        assert_eq!(cp.makespan_secs(), 100.0);
        // Path: job-self [0,10], m1 [10,50], shuffle [50,80], reduce [80,100].
        assert!(cp.on_path(m1));
        assert!(!cp.on_path(m2));
        assert!(!cp.on_path(m3));
        assert_eq!(cp.phases.secs(Phase::Compute), 60.0); // m1 + reduce
        assert_eq!(cp.phases.secs(Phase::Shuffle), 30.0);
        assert_eq!(cp.phases.secs(Phase::Overhead), 10.0);
        // Slack: m2 ends at 40 inside m1's [10,50] segment → 10 s; m3 → 30 s.
        let slack: BTreeMap<SpanId, u64> = cp
            .slack
            .iter()
            .map(|&(id, d)| (id, d.0 / 1_000_000))
            .collect();
        assert_eq!(slack[&m2], 10);
        assert_eq!(slack[&m3], 30);
        let rows = cp.phase_rows();
        let compute = rows.iter().find(|r| r.phase == Phase::Compute).unwrap();
        assert_eq!(compute.off_path_s, 40.0); // m2 (30) + m3 (10)
        assert_eq!(compute.min_slack_s, Some(10.0));
    }

    /// Pilot → unit adoption: the run-level walk descends from the pilot
    /// into the last-finishing unit, and the unit's first scheduling span
    /// decomposes into the pilot's startup phases.
    #[test]
    fn adoption_attributes_startup_phases_across_roots() {
        let mut tr = Trace::enabled();
        let pr = tr.span_begin(t(0), "pilot", "pilot.run", SpanId::NONE);
        tr.span_attr(pr, "pilot", "0");
        let q = tr.span_begin(t(0), "pilot", "pilot.queue_wait", pr);
        tr.span_end(t(10), q);
        let b = tr.span_begin(t(10), "pilot", "pilot.bootstrap", pr);
        let y = tr.span_begin(t(12), "yarn", "yarn.startup", b);
        tr.span_end(t(40), y);
        tr.span_end(t(40), b);
        // Unit submitted at t=0, picked up once the pilot is active.
        let ur = tr.span_begin(t(0), "unit", "unit.run", SpanId::NONE);
        tr.span_attr(ur, "pilot", "0");
        let s = tr.span_begin(t(0), "unit", "unit.scheduling", ur);
        tr.span_end(t(41), s);
        let ex = tr.span_begin(t(41), "unit", "unit.exec", ur);
        let c = tr.span_begin(t(41), "unit", "unit.compute", ex);
        tr.span_end(t(90), c);
        tr.span_end(t(90), ex);
        tr.span_end(t(90), ur);
        tr.span_end(t(95), pr);
        let cp = critical_path_run(&tr).unwrap();
        assert_eq!(cp.makespan_secs(), 95.0);
        assert_eq!(cp.phases.total_secs(), 95.0);
        // Startup decomposes through the causal edges instead of reading
        // as 41 s of queue wait.
        assert_eq!(cp.phases.secs(Phase::QueueWait), 11.0); // pilot queue 10 + pickup gap 1
        assert_eq!(cp.phases.secs(Phase::PilotBootstrap), 2.0); // 10..12
        assert_eq!(cp.phases.secs(Phase::YarnStartup), 28.0); // 12..40
        assert_eq!(cp.phases.secs(Phase::Compute), 49.0); // 41..90
        assert_eq!(cp.phases.secs(Phase::Overhead), 5.0); // pilot teardown 90..95
    }

    /// Open or missing roots yield no path; zero-length spans are skipped.
    #[test]
    fn degenerate_inputs() {
        let mut tr = Trace::enabled();
        assert!(critical_path_run(&tr).is_none());
        let open = tr.span_begin(t(0), "x", "pilot.run", SpanId::NONE);
        assert!(critical_path(&tr, open).is_none());
        assert!(critical_path(&tr, SpanId(99)).is_none());
        // A root whose only child is zero-length: the whole interval is the
        // root's own time.
        let root = tr.span_begin(t(0), "unit", "unit.run", SpanId::NONE);
        let z = tr.span_begin(t(5), "unit", "unit.stage_in", root);
        tr.span_end(t(5), z);
        tr.span_end(t(10), root);
        let cp = critical_path(&tr, root).unwrap();
        assert_eq!(cp.segments.len(), 1);
        assert_eq!(cp.phases.total_secs(), 10.0);
    }

    /// The run-level path over several independent roots follows the last
    /// finisher backwards across roots.
    #[test]
    fn run_level_walk_spans_multiple_roots() {
        let mut tr = Trace::enabled();
        for (b, e) in [(0u64, 30u64), (5, 60), (10, 45)] {
            let r = tr.span_begin(t(b), "unit", "unit.run", SpanId::NONE);
            let c = tr.span_begin(t(b), "unit", "unit.compute", r);
            tr.span_end(t(e), c);
            tr.span_end(t(e), r);
        }
        let cp = critical_path_run(&tr).unwrap();
        assert_eq!(cp.makespan_secs(), 60.0);
        // [5,60] is gated by the last-finishing unit; nothing *finished*
        // before t=5, so [0,5] has no known cause and reads as Overhead.
        assert_eq!(cp.phases.secs(Phase::Compute), 55.0);
        assert_eq!(cp.phases.secs(Phase::Overhead), 5.0);
        assert_eq!(cp.phases.total_secs(), 60.0);
        // The two skipped roots are off-path; their ends fall inside the
        // winner's [5,60] segment.
        let slack: BTreeMap<SpanId, u64> = cp
            .slack
            .iter()
            .map(|&(id, d)| (id, d.0 / 1_000_000))
            .collect();
        assert_eq!(slack.len(), 2);
        assert_eq!(slack[&SpanId(1)], 30); // ended at 30, gate runs to 60
        assert_eq!(slack[&SpanId(5)], 15); // ended at 45
                                           // Their compute time lands on the Compute phase via the subtree
                                           // profile, not on Overhead.
        let rows = cp.phase_rows();
        let compute = rows.iter().find(|r| r.phase == Phase::Compute).unwrap();
        assert_eq!(compute.off_path_s, 65.0); // 30 + 35
    }
}
