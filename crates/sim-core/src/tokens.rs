//! Counted resource with FIFO waiters (virtual-time semaphore).
//!
//! Used for anything slot-shaped: CPU cores on a node, YARN vcores/memory,
//! concurrent-transfer limits. Grants are FIFO to keep runs deterministic
//! and starvation-free (a large request at the head blocks later small ones;
//! schedulers that want backfilling implement it above this primitive).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::engine::Engine;

type GrantFn = Box<dyn FnOnce(&mut Engine)>;

struct Inner {
    capacity: u64,
    available: u64,
    waiters: VecDeque<(u64, GrantFn)>,
}

/// A shared counted resource. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct Tokens {
    inner: Rc<RefCell<Inner>>,
}

impl Tokens {
    pub fn new(capacity: u64) -> Self {
        Tokens {
            inner: Rc::new(RefCell::new(Inner {
                capacity,
                available: capacity,
                waiters: VecDeque::new(),
            })),
        }
    }

    pub fn capacity(&self) -> u64 {
        self.inner.borrow().capacity
    }

    pub fn available(&self) -> u64 {
        self.inner.borrow().available
    }

    pub fn waiting(&self) -> usize {
        self.inner.borrow().waiters.len()
    }

    /// Request `n` tokens; `granted` fires (as a fresh event at the grant
    /// instant) once they are held. Panics if `n` exceeds capacity — such a
    /// request could never be satisfied.
    pub fn acquire(
        &self,
        engine: &mut Engine,
        n: u64,
        granted: impl FnOnce(&mut Engine) + 'static,
    ) {
        let mut inner = self.inner.borrow_mut();
        assert!(
            n <= inner.capacity,
            "acquire({n}) exceeds capacity {}",
            inner.capacity
        );
        if inner.waiters.is_empty() && inner.available >= n {
            inner.available -= n;
            drop(inner);
            engine.schedule_now(granted);
        } else {
            inner.waiters.push_back((n, Box::new(granted)));
        }
    }

    /// Try to take `n` tokens immediately; returns whether it succeeded.
    /// Does not queue.
    pub fn try_acquire(&self, n: u64) -> bool {
        let mut inner = self.inner.borrow_mut();
        if inner.waiters.is_empty() && inner.available >= n {
            inner.available -= n;
            true
        } else {
            false
        }
    }

    /// Return `n` tokens and hand them to waiting requests in FIFO order.
    pub fn release(&self, engine: &mut Engine, n: u64) {
        let mut grants: Vec<GrantFn> = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            inner.available += n;
            assert!(
                inner.available <= inner.capacity,
                "release overflow: {} > capacity {}",
                inner.available,
                inner.capacity
            );
            while inner
                .waiters
                .front()
                .is_some_and(|w| w.0 <= inner.available)
            {
                let (need, cb) = inner.waiters.pop_front().unwrap();
                inner.available -= need;
                grants.push(cb);
            }
        }
        for g in grants {
            engine.schedule_now(g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{SimDuration, SimTime};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn immediate_grant_when_available() {
        let mut e = Engine::new(1);
        let t = Tokens::new(4);
        let got = Rc::new(RefCell::new(false));
        let g = got.clone();
        t.acquire(&mut e, 3, move |_| *g.borrow_mut() = true);
        e.run();
        assert!(*got.borrow());
        assert_eq!(t.available(), 1);
    }

    #[test]
    fn queued_grant_fires_on_release() {
        let mut e = Engine::new(1);
        let t = Tokens::new(2);
        let order = Rc::new(RefCell::new(Vec::new()));

        let o = order.clone();
        t.acquire(&mut e, 2, move |_| o.borrow_mut().push((0, SimTime::ZERO)));
        let o = order.clone();
        t.acquire(&mut e, 1, move |eng| o.borrow_mut().push((1, eng.now())));

        let t2 = t.clone();
        e.schedule_in(SimDuration::from_secs(5), move |eng| {
            t2.release(eng, 2);
        });
        e.run();
        let order = order.borrow();
        assert_eq!(order.len(), 2);
        assert_eq!(order[1].0, 1);
        assert_eq!(order[1].1, SimTime::from_secs_f64(5.0));
    }

    #[test]
    fn fifo_ordering_holds() {
        let mut e = Engine::new(1);
        let t = Tokens::new(1);
        let order = Rc::new(RefCell::new(Vec::new()));
        // First grabs the token; 2nd (big... here all 1) and 3rd queue.
        for tag in 0..3 {
            let o = order.clone();
            let tc = t.clone();
            t.acquire(&mut e, 1, move |eng| {
                o.borrow_mut().push(tag);
                let tc = tc.clone();
                eng.schedule_in(SimDuration::from_secs(1), move |eng| tc.release(eng, 1));
            });
        }
        e.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn large_request_blocks_later_small_ones() {
        let mut e = Engine::new(1);
        let t = Tokens::new(4);
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = order.clone();
        t.acquire(&mut e, 3, move |_| o.borrow_mut().push("a"));
        let o = order.clone();
        t.acquire(&mut e, 4, move |_| o.borrow_mut().push("big"));
        let o = order.clone();
        // 1 token is free, but FIFO means "small" must wait behind "big".
        t.acquire(&mut e, 1, move |_| o.borrow_mut().push("small"));
        e.run();
        assert_eq!(*order.borrow(), vec!["a"]);
        t.release(&mut e, 3);
        e.run();
        assert_eq!(*order.borrow(), vec!["a", "big"]);
        t.release(&mut e, 4);
        e.run();
        assert_eq!(*order.borrow(), vec!["a", "big", "small"]);
    }

    #[test]
    fn try_acquire_never_queues() {
        let mut e = Engine::new(1);
        let t = Tokens::new(2);
        assert!(t.try_acquire(2));
        assert!(!t.try_acquire(1));
        assert_eq!(t.waiting(), 0);
        t.release(&mut e, 2);
        assert!(t.try_acquire(1));
    }

    #[test]
    #[should_panic]
    fn over_release_panics() {
        let mut e = Engine::new(1);
        let t = Tokens::new(2);
        t.release(&mut e, 1);
    }

    #[test]
    #[should_panic]
    fn impossible_request_panics() {
        let mut e = Engine::new(1);
        let t = Tokens::new(2);
        t.acquire(&mut e, 3, |_| {});
    }
}
