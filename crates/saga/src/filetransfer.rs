//! SAGA file transfer: staging data between the outside world, the shared
//! parallel filesystem and node-local storage.
//!
//! Compute-Unit `input_staging` / `output_staging` directives resolve to
//! these endpoint pairs; the Pilot agent's Stage-In/Stage-Out workers call
//! [`transfer`] for each directive.

use rp_hpc::{Cluster, IoKind, NodeId, StorageTarget};
use rp_sim::{Engine, SimDuration, MB};

/// One end of a transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Endpoint {
    /// Outside the machine (campus storage, web): fixed WAN bandwidth.
    Remote { bandwidth_mbps: f64 },
    /// The machine's shared parallel filesystem.
    Lustre,
    /// A node's local disk.
    Local(NodeId),
}

/// Move `bytes` from `from` to `to`; `done` fires at completion.
///
/// Remote legs run at the remote endpoint's bandwidth; machine-internal
/// legs go through the storage/network models (and therefore contend with
/// everything else). Remote→Remote is rejected — it never touches this
/// machine and has no meaning here.
pub fn transfer(
    engine: &mut Engine,
    cluster: &Cluster,
    from: Endpoint,
    to: Endpoint,
    bytes: f64,
    done: impl FnOnce(&mut Engine) + 'static,
) {
    assert!(bytes >= 0.0 && bytes.is_finite());
    engine.metrics.incr("saga.transfers");
    engine.metrics.add("saga.transfer_bytes", bytes as u64);
    match (from, to) {
        (Endpoint::Remote { .. }, Endpoint::Remote { .. }) => {
            panic!("remote→remote transfer does not involve this machine")
        }
        // Ingest: WAN leg, then write to the target backend.
        (Endpoint::Remote { bandwidth_mbps }, to) => {
            let wan = SimDuration::from_secs_f64(bytes / (bandwidth_mbps * MB));
            let cluster = cluster.clone();
            engine.schedule_in(wan, move |eng| {
                write_local(eng, &cluster, to, bytes, done);
            });
        }
        // Egress: read from the source backend, then the WAN leg.
        (from, Endpoint::Remote { bandwidth_mbps }) => {
            let cluster2 = cluster.clone();
            read_local(engine, cluster, from, bytes, move |eng| {
                let wan = SimDuration::from_secs_f64(bytes / (bandwidth_mbps * MB));
                eng.schedule_in(wan, done);
                let _ = &cluster2;
            });
        }
        // Machine-internal: read source, move over fabric if needed, write.
        (from, to) => {
            let cluster2 = cluster.clone();
            read_local(engine, cluster, from, bytes, move |eng| {
                let (src_node, dst_node) = (node_of(from), node_of(to));
                match (src_node, dst_node) {
                    (Some(a), Some(b)) if a != b => {
                        let c3 = cluster2.clone();
                        cluster2.net_transfer(eng, a, b, bytes, move |eng| {
                            write_local(eng, &c3, to, bytes, done);
                        });
                    }
                    _ => write_local(eng, &cluster2, to, bytes, done),
                }
            });
        }
    }
}

/// Direct node-to-node streaming (the paper's §V future work: "data can
/// be directly streamed between these two environments" instead of
/// persisting files and re-reading them). Only the fabric is traversed —
/// no filesystem round trip.
pub fn stream(
    engine: &mut Engine,
    cluster: &Cluster,
    from_node: NodeId,
    to_node: NodeId,
    bytes: f64,
    done: impl FnOnce(&mut Engine) + 'static,
) {
    cluster.net_transfer(engine, from_node, to_node, bytes, done);
}

fn node_of(e: Endpoint) -> Option<NodeId> {
    match e {
        Endpoint::Local(n) => Some(n),
        _ => None,
    }
}

fn read_local(
    engine: &mut Engine,
    cluster: &Cluster,
    from: Endpoint,
    bytes: f64,
    done: impl FnOnce(&mut Engine) + 'static,
) {
    let target = match from {
        Endpoint::Lustre => StorageTarget::Lustre,
        Endpoint::Local(n) => StorageTarget::LocalDisk(n),
        Endpoint::Remote { .. } => unreachable!("remote handled by caller"),
    };
    cluster.storage_io(engine, target, IoKind::Read, bytes, done);
}

fn write_local(
    engine: &mut Engine,
    cluster: &Cluster,
    to: Endpoint,
    bytes: f64,
    done: impl FnOnce(&mut Engine) + 'static,
) {
    let target = match to {
        Endpoint::Lustre => StorageTarget::Lustre,
        Endpoint::Local(n) => StorageTarget::LocalDisk(n),
        Endpoint::Remote { .. } => unreachable!("remote handled by caller"),
    };
    cluster.storage_io(engine, target, IoKind::Write, bytes, done);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_hpc::MachineSpec;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn finish_time(from: Endpoint, to: Endpoint, bytes_mb: f64) -> f64 {
        let mut e = Engine::new(1);
        let cluster = Cluster::new(MachineSpec::localhost());
        let t = Rc::new(RefCell::new(0.0));
        let t2 = t.clone();
        transfer(&mut e, &cluster, from, to, bytes_mb * MB, move |eng| {
            *t2.borrow_mut() = eng.now().as_secs_f64();
        });
        e.run();
        let out = *t.borrow();
        out
    }

    #[test]
    fn ingest_pays_wan_plus_write() {
        // 100 MB over a 10 MB/s WAN (10 s) + Lustre write (~0.2 s).
        let t = finish_time(
            Endpoint::Remote {
                bandwidth_mbps: 10.0,
            },
            Endpoint::Lustre,
            100.0,
        );
        assert!((10.0..11.0).contains(&t), "{t}");
    }

    #[test]
    fn egress_pays_read_plus_wan() {
        let t = finish_time(
            Endpoint::Lustre,
            Endpoint::Remote {
                bandwidth_mbps: 50.0,
            },
            100.0,
        );
        assert!((2.0..3.0).contains(&t), "{t}");
    }

    #[test]
    fn lustre_to_local_crosses_storage_only() {
        // 400 MB: Lustre read (0.8 s) + local write (1.0 s) ≈ 1.8 s.
        let t = finish_time(Endpoint::Lustre, Endpoint::Local(NodeId(1)), 400.0);
        assert!((1.5..2.3).contains(&t), "{t}");
    }

    #[test]
    fn local_to_local_includes_fabric_leg() {
        let same = finish_time(
            Endpoint::Local(NodeId(0)),
            Endpoint::Local(NodeId(0)),
            400.0,
        );
        let cross = finish_time(
            Endpoint::Local(NodeId(0)),
            Endpoint::Local(NodeId(1)),
            400.0,
        );
        assert!(cross > same, "cross {cross} vs same {same}");
    }

    #[test]
    fn streaming_beats_persist_and_reload() {
        let cluster = Cluster::new(MachineSpec::localhost());
        // Persist + reload: local → Lustre, then Lustre → other local.
        let mut e = Engine::new(1);
        let t_persist = Rc::new(RefCell::new(0.0));
        let tp = t_persist.clone();
        let c2 = cluster.clone();
        transfer(
            &mut e,
            &cluster,
            Endpoint::Local(NodeId(0)),
            Endpoint::Lustre,
            800.0 * MB,
            move |eng| {
                let tp = tp.clone();
                transfer(
                    eng,
                    &c2,
                    Endpoint::Lustre,
                    Endpoint::Local(NodeId(1)),
                    800.0 * MB,
                    move |eng| *tp.borrow_mut() = eng.now().as_secs_f64(),
                );
            },
        );
        e.run();
        // Direct stream over the fabric.
        let mut e = Engine::new(1);
        let t_stream = Rc::new(RefCell::new(0.0));
        let ts = t_stream.clone();
        stream(
            &mut e,
            &cluster,
            NodeId(0),
            NodeId(1),
            800.0 * MB,
            move |eng| {
                *ts.borrow_mut() = eng.now().as_secs_f64();
            },
        );
        e.run();
        assert!(
            *t_stream.borrow() < *t_persist.borrow() / 2.0,
            "stream {} vs persist {}",
            t_stream.borrow(),
            t_persist.borrow()
        );
    }

    #[test]
    fn zero_bytes_complete_fast() {
        let t = finish_time(Endpoint::Lustre, Endpoint::Local(NodeId(0)), 0.0);
        assert!(t < 0.01, "{t}");
    }

    #[test]
    #[should_panic]
    fn remote_to_remote_rejected() {
        finish_time(
            Endpoint::Remote {
                bandwidth_mbps: 1.0,
            },
            Endpoint::Remote {
                bandwidth_mbps: 1.0,
            },
            1.0,
        );
    }
}
