//! The SAGA Job API: a standardized, adaptor-based interface to
//! heterogeneous resource managers (SLURM, Torque, SGE, fork).
//!
//! RADICAL-Pilot launches its placeholder jobs exclusively through this
//! layer (paper §II: "The interoperability layer of both frameworks is
//! SAGA"). An adaptor validates the URL scheme against the machine's
//! batch flavour and applies the flavour's submission-latency profile.

use rp_hpc::{Allocation, BatchSystem, JobId, JobRequest, JobState, SchedulerKind};
use rp_sim::{Engine, SimDuration};

/// A SAGA resource URL, e.g. `slurm://stampede/normal`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SagaUrl {
    pub scheme: String,
    pub host: String,
    pub queue: Option<String>,
}

impl SagaUrl {
    /// Parse `scheme://host[/queue]`.
    pub fn parse(s: &str) -> Result<SagaUrl, SagaError> {
        let (scheme, rest) = s
            .split_once("://")
            .ok_or_else(|| SagaError::BadUrl(s.into()))?;
        if scheme.is_empty() || rest.is_empty() {
            return Err(SagaError::BadUrl(s.into()));
        }
        let (host, queue) = match rest.split_once('/') {
            Some((h, q)) if !q.is_empty() => (h, Some(q.to_string())),
            Some((h, _)) => (h, None),
            None => (rest, None),
        };
        if host.is_empty() {
            return Err(SagaError::BadUrl(s.into()));
        }
        Ok(SagaUrl {
            scheme: scheme.to_string(),
            host: host.to_string(),
            queue,
        })
    }
}

impl std::fmt::Display for SagaUrl {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}://{}", self.scheme, self.host)?;
        if let Some(q) = &self.queue {
            write!(f, "/{q}")?;
        }
        Ok(())
    }
}

/// SAGA job description (the subset the Pilot layer uses).
#[derive(Debug, Clone)]
pub struct JobDescription {
    pub executable: String,
    pub arguments: Vec<String>,
    pub nodes: u32,
    pub wall_time: SimDuration,
    pub project: Option<String>,
}

impl JobDescription {
    pub fn new(executable: impl Into<String>, nodes: u32, wall_time: SimDuration) -> Self {
        JobDescription {
            executable: executable.into(),
            arguments: Vec::new(),
            nodes,
            wall_time,
            project: None,
        }
    }
}

/// Errors surfaced by the SAGA layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SagaError {
    BadUrl(String),
    /// URL scheme does not match the machine's batch system.
    AdaptorMismatch {
        requested: String,
        machine: String,
    },
    UnknownScheme(String),
}

impl std::fmt::Display for SagaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SagaError::BadUrl(u) => write!(f, "malformed SAGA url: {u}"),
            SagaError::AdaptorMismatch { requested, machine } => write!(
                f,
                "adaptor {requested} does not match machine scheduler {machine}"
            ),
            SagaError::UnknownScheme(s) => write!(f, "no adaptor for scheme {s}"),
        }
    }
}

impl std::error::Error for SagaError {}

fn scheme_kind(scheme: &str) -> Result<SchedulerKind, SagaError> {
    match scheme {
        "slurm" => Ok(SchedulerKind::Slurm),
        "torque" | "pbs" => Ok(SchedulerKind::Torque),
        "sge" => Ok(SchedulerKind::Sge),
        "fork" | "ssh" => Ok(SchedulerKind::Fork),
        other => Err(SagaError::UnknownScheme(other.into())),
    }
}

/// A connected job service (one machine, one adaptor).
#[derive(Clone)]
pub struct JobService {
    url: SagaUrl,
    batch: BatchSystem,
}

/// Handle to a submitted SAGA job.
#[derive(Clone)]
pub struct SagaJob {
    id: JobId,
    batch: BatchSystem,
}

impl JobService {
    /// Connect to a machine's batch system, validating the adaptor scheme
    /// ("pbs" is accepted as an alias for torque, "ssh" for fork).
    pub fn connect(url: SagaUrl, batch: BatchSystem) -> Result<JobService, SagaError> {
        let kind = scheme_kind(&url.scheme)?;
        let machine = batch.cluster().spec().scheduler;
        if kind != machine {
            return Err(SagaError::AdaptorMismatch {
                requested: url.scheme.clone(),
                machine: machine.scheme().to_string(),
            });
        }
        Ok(JobService { url, batch })
    }

    pub fn url(&self) -> &SagaUrl {
        &self.url
    }

    pub fn batch(&self) -> &BatchSystem {
        &self.batch
    }

    /// Submit a job; `on_start` receives the allocation when nodes are
    /// granted, `on_end` the final state.
    pub fn submit(
        &self,
        engine: &mut Engine,
        jd: JobDescription,
        on_start: impl FnOnce(&mut Engine, Allocation) + 'static,
        on_end: impl FnOnce(&mut Engine, JobState) + 'static,
    ) -> SagaJob {
        let id = self.batch.submit_with_end(
            engine,
            JobRequest {
                name: jd.executable.clone(),
                nodes: jd.nodes,
                walltime: jd.wall_time,
            },
            on_start,
            on_end,
        );
        engine.trace.record(
            engine.now(),
            "saga",
            format!(
                "submitted '{}' ({} nodes) via {}",
                jd.executable, jd.nodes, self.url
            ),
        );
        engine
            .metrics
            .incr_labeled("saga.jobs_submitted", &[("scheme", &self.url.scheme)]);
        SagaJob {
            id,
            batch: self.batch.clone(),
        }
    }
}

impl SagaJob {
    pub fn id(&self) -> JobId {
        self.id
    }

    pub fn state(&self) -> JobState {
        self.batch.state(self.id)
    }

    pub fn cancel(&self, engine: &mut Engine) {
        self.batch.cancel(engine, self.id);
    }

    /// Signal normal completion (the payload shut itself down).
    pub fn complete(&self, engine: &mut Engine) {
        self.batch.complete(engine, self.id);
    }

    /// Kill the job as a hardware/queue fault would (fault injection).
    pub fn fail(&self, engine: &mut Engine) {
        self.batch.fail_job(engine, self.id);
    }

    pub fn wait_time(&self) -> Option<SimDuration> {
        self.batch.wait_time(self.id)
    }

    /// Hard end of the allocation (start + walltime); None until running.
    pub fn deadline(&self) -> Option<rp_sim::SimTime> {
        self.batch.deadline(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_hpc::{Cluster, MachineSpec};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn url_parse_roundtrip() {
        let u = SagaUrl::parse("slurm://stampede/normal").unwrap();
        assert_eq!(u.scheme, "slurm");
        assert_eq!(u.host, "stampede");
        assert_eq!(u.queue.as_deref(), Some("normal"));
        assert_eq!(u.to_string(), "slurm://stampede/normal");

        let u = SagaUrl::parse("fork://localhost").unwrap();
        assert_eq!(u.queue, None);
    }

    #[test]
    fn bad_urls_rejected() {
        for bad in ["", "slurm", "://host", "slurm://", "slurm:///q"] {
            assert!(SagaUrl::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn adaptor_mismatch_detected() {
        let batch = BatchSystem::new(Cluster::new(MachineSpec::stampede()));
        let err = JobService::connect(SagaUrl::parse("sge://stampede").unwrap(), batch)
            .err()
            .unwrap();
        assert!(matches!(err, SagaError::AdaptorMismatch { .. }));
    }

    #[test]
    fn pbs_is_torque_alias() {
        let mut spec = MachineSpec::localhost();
        spec.scheduler = rp_hpc::SchedulerKind::Torque;
        let batch = BatchSystem::new(Cluster::new(spec));
        assert!(JobService::connect(SagaUrl::parse("pbs://localhost").unwrap(), batch).is_ok());
    }

    #[test]
    fn unknown_scheme_rejected() {
        let batch = BatchSystem::new(Cluster::new(MachineSpec::localhost()));
        let err = JobService::connect(SagaUrl::parse("htcondor://x").unwrap(), batch)
            .err()
            .unwrap();
        assert!(matches!(err, SagaError::UnknownScheme(_)));
    }

    #[test]
    fn submit_runs_job_lifecycle() {
        let mut e = rp_sim::Engine::new(1);
        let batch = BatchSystem::new(Cluster::new(MachineSpec::localhost()));
        let svc = JobService::connect(SagaUrl::parse("fork://localhost").unwrap(), batch).unwrap();
        let events = Rc::new(RefCell::new(Vec::new()));
        let ev1 = events.clone();
        let ev2 = events.clone();
        let job = svc.submit(
            &mut e,
            JobDescription::new("agent.sh", 2, SimDuration::from_secs(600)),
            move |_, alloc| {
                ev1.borrow_mut()
                    .push(format!("start:{}", alloc.nodes.len()))
            },
            move |_, st| ev2.borrow_mut().push(format!("end:{st:?}")),
        );
        e.run_until(rp_sim::SimTime::from_secs_f64(5.0));
        assert_eq!(job.state(), JobState::Running);
        job.complete(&mut e);
        e.run();
        assert_eq!(
            *events.borrow(),
            vec!["start:2".to_string(), "end:Completed".to_string()]
        );
    }
}
