//! # rp-saga — standardized access layer (SAGA)
//!
//! The interoperability layer RADICAL-Pilot builds on:
//!
//! * [`job`] — the SAGA Job API with scheme-validated adaptors
//!   (`slurm://`, `torque://`/`pbs://`, `sge://`, `fork://`).
//! * [`filetransfer`] — staging between remote storage, the parallel
//!   filesystem and node-local disks.
//! * [`hadoop`] — **SAGA-Hadoop** (paper §III-A): spawn/control Hadoop or
//!   Spark clusters inside an HPC-scheduler-managed environment via
//!   framework plugins, without the full Pilot machinery.

pub mod filetransfer;
pub mod hadoop;
pub mod job;

pub use filetransfer::{stream, transfer, Endpoint};
pub use hadoop::{start_cluster, Framework, FrameworkHandle, ManagedCluster};
pub use job::{JobDescription, JobService, SagaError, SagaJob, SagaUrl};
