//! SAGA-Hadoop: the light-weight Mode I tool (paper §III-A, Fig. 2).
//!
//! Spawns and controls Hadoop/Spark clusters inside an environment managed
//! by an HPC scheduler. The framework specifics live in plugins ("adaptors"
//! in the paper's wording): the YARN plugin launches ResourceManager +
//! NodeManager daemons, the Spark plugin Master + Workers. The lifecycle is
//! exactly the paper's figure: 1. start cluster → 2. submit application →
//! 3. poll status → 4. stop cluster.

use std::cell::RefCell;
use std::rc::Rc;

use rp_hpc::{Allocation, JobState};
use rp_sim::{Engine, SimDuration};
use rp_spark::{SparkCluster, SparkConfig};
use rp_yarn::{bootstrap_mode_i, HadoopEnv, YarnConfig};

use crate::job::{JobDescription, JobService, SagaJob};

/// Which framework plugin to bootstrap.
#[derive(Debug, Clone)]
pub enum Framework {
    /// YARN (+ HDFS when `with_hdfs`).
    Yarn { config: YarnConfig, with_hdfs: bool },
    /// Spark standalone.
    Spark { config: SparkConfig },
    /// A user-supplied framework plugin — the extensibility point the
    /// paper calls out ("new frameworks, e.g. Flink, can easily be
    /// added"). Only the bootstrap shape is modelled: fixed preparation
    /// plus per-node daemon starts (paid as the max, nodes in parallel).
    Custom {
        name: String,
        prepare_s: f64,
        daemon_start_s: f64,
    },
}

/// A running framework cluster handed to the user once bootstrapped.
#[derive(Clone)]
pub enum FrameworkHandle {
    Yarn(HadoopEnv),
    Spark(SparkCluster),
    /// Name + node count of a custom framework.
    Custom(String, usize),
}

/// A SAGA-Hadoop managed cluster: placeholder batch job + framework.
pub struct ManagedCluster {
    pub framework: FrameworkHandle,
    pub allocation: Allocation,
    job: SagaJob,
    /// Batch submission → framework ready.
    pub startup_time: SimDuration,
}

impl ManagedCluster {
    /// Stop the framework daemons and release the HPC allocation
    /// (step 4 of Fig. 2).
    pub fn stop(&self, engine: &mut Engine) {
        match &self.framework {
            FrameworkHandle::Yarn(env) => {
                env.yarn.shutdown(engine);
                self.job.complete(engine);
            }
            FrameworkHandle::Spark(spark) => {
                let job = self.job.clone();
                spark.shutdown(engine, move |eng| {
                    job.complete(eng);
                });
            }
            FrameworkHandle::Custom(name, _) => {
                engine
                    .trace
                    .record(engine.now(), "saga", format!("stopping {name}"));
                self.job.complete(engine);
            }
        }
    }

    pub fn job_state(&self) -> JobState {
        self.job.state()
    }
}

/// Start a framework cluster on `nodes` nodes via the given job service
/// (step 1 of Fig. 2). `on_ready` receives the managed cluster.
pub fn start_cluster(
    engine: &mut Engine,
    service: &JobService,
    framework: Framework,
    nodes: u32,
    walltime: SimDuration,
    on_ready: impl FnOnce(&mut Engine, ManagedCluster) + 'static,
) {
    let t0 = engine.now();
    let cluster = service.batch().cluster().clone();
    let jd = JobDescription::new(
        match &framework {
            Framework::Yarn { .. } => "saga-hadoop-bootstrap-yarn",
            Framework::Spark { .. } => "saga-hadoop-bootstrap-spark",
            Framework::Custom { .. } => "saga-hadoop-bootstrap-custom",
        },
        nodes,
        walltime,
    );
    // The job handle only exists after submit returns; stash it for the
    // start callback (which always fires strictly later).
    let job_slot: Rc<RefCell<Option<SagaJob>>> = Rc::new(RefCell::new(None));
    let job_slot2 = job_slot.clone();
    let on_ready = Rc::new(RefCell::new(Some(on_ready)));
    let job = service.submit(
        engine,
        jd,
        move |eng, alloc| {
            let job = job_slot2
                .borrow_mut()
                .take()
                .expect("job handle set before start");
            match framework {
                Framework::Yarn { config, with_hdfs } => {
                    let on_ready = on_ready.clone();
                    let alloc2 = alloc.clone();
                    bootstrap_mode_i(
                        eng,
                        cluster,
                        alloc.nodes.clone(),
                        config,
                        with_hdfs,
                        move |eng, env| {
                            let cb = on_ready.borrow_mut().take().expect("ready fired twice");
                            cb(
                                eng,
                                ManagedCluster {
                                    framework: FrameworkHandle::Yarn(env),
                                    allocation: alloc2,
                                    job,
                                    startup_time: eng.now().since(t0),
                                },
                            );
                        },
                    );
                }
                Framework::Custom {
                    name,
                    prepare_s,
                    daemon_start_s,
                } => {
                    let on_ready = on_ready.clone();
                    let alloc2 = alloc.clone();
                    let n = alloc.nodes.len();
                    let mut daemons_max = 0.0f64;
                    for _ in 0..n {
                        daemons_max = daemons_max.max(eng.rng.normal_min(
                            daemon_start_s,
                            daemon_start_s * 0.15,
                            0.01,
                        ));
                    }
                    let total = rp_sim::SimDuration::from_secs_f64(
                        eng.rng.normal_min(prepare_s, prepare_s * 0.1, 0.01) + daemons_max,
                    );
                    eng.schedule_in(total, move |eng| {
                        let cb = on_ready.borrow_mut().take().expect("ready fired twice");
                        cb(
                            eng,
                            ManagedCluster {
                                framework: FrameworkHandle::Custom(name, n),
                                allocation: alloc2,
                                job,
                                startup_time: eng.now().since(t0),
                            },
                        );
                    });
                }
                Framework::Spark { config } => {
                    let on_ready = on_ready.clone();
                    let alloc2 = alloc.clone();
                    SparkCluster::bootstrap(
                        eng,
                        &cluster,
                        alloc.nodes.clone(),
                        config,
                        move |eng, spark, _boot| {
                            let cb = on_ready.borrow_mut().take().expect("ready fired twice");
                            cb(
                                eng,
                                ManagedCluster {
                                    framework: FrameworkHandle::Spark(spark),
                                    allocation: alloc2,
                                    job,
                                    startup_time: eng.now().since(t0),
                                },
                            );
                        },
                    );
                }
            }
        },
        |_, _| {},
    );
    *job_slot.borrow_mut() = Some(job);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::SagaUrl;
    use rp_hpc::{BatchSystem, Cluster, MachineSpec};
    use rp_yarn::ResourceRequest;

    fn service() -> JobService {
        let batch = BatchSystem::new(Cluster::new(MachineSpec::localhost()));
        JobService::connect(SagaUrl::parse("fork://localhost").unwrap(), batch).unwrap()
    }

    #[test]
    fn yarn_cluster_lifecycle() {
        let mut e = Engine::new(1);
        let svc = service();
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        start_cluster(
            &mut e,
            &svc,
            Framework::Yarn {
                config: YarnConfig::test_profile(),
                with_hdfs: true,
            },
            2,
            SimDuration::from_secs(3600),
            move |_, mc| *g.borrow_mut() = Some(mc),
        );
        e.run_until(rp_sim::SimTime::from_secs_f64(60.0));
        let mc = got.borrow_mut().take().expect("cluster ready");
        assert_eq!(mc.allocation.nodes.len(), 2);
        assert_eq!(mc.job_state(), JobState::Running);
        assert!(mc.startup_time.as_secs_f64() < 10.0); // test profile

        // Step 2/3: submit an application and watch it finish.
        let done = Rc::new(RefCell::new(false));
        let d = done.clone();
        if let FrameworkHandle::Yarn(env) = &mc.framework {
            assert!(env.hdfs.is_some());
            env.yarn.submit_app(
                &mut e,
                "probe",
                ResourceRequest::new(1, 1024),
                move |eng, am| {
                    *d.borrow_mut() = true;
                    am.finish(eng);
                },
            );
        } else {
            panic!("expected yarn handle");
        }
        e.run_until(rp_sim::SimTime::from_secs_f64(120.0));
        assert!(*done.borrow());

        // Step 4: stop cluster → allocation released.
        mc.stop(&mut e);
        e.run();
        assert_eq!(mc.job_state(), JobState::Completed);
    }

    #[test]
    fn spark_cluster_lifecycle() {
        let mut e = Engine::new(2);
        let svc = service();
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        start_cluster(
            &mut e,
            &svc,
            Framework::Spark {
                config: SparkConfig::test_profile(),
            },
            3,
            SimDuration::from_secs(3600),
            move |_, mc| *g.borrow_mut() = Some(mc),
        );
        e.run_until(rp_sim::SimTime::from_secs_f64(60.0));
        let mc = got.borrow_mut().take().expect("cluster ready");
        if let FrameworkHandle::Spark(spark) = &mc.framework {
            assert_eq!(spark.total_cores(), 3 * 8);
        } else {
            panic!("expected spark handle");
        }
        mc.stop(&mut e);
        e.run();
        assert_eq!(mc.job_state(), JobState::Completed);
    }

    #[test]
    fn custom_framework_plugin_bootstraps() {
        // "This architecture allows for extensibility – new frameworks,
        // e.g. Flink, can easily be added."
        let mut e = Engine::new(5);
        let svc = service();
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        start_cluster(
            &mut e,
            &svc,
            Framework::Custom {
                name: "flink".into(),
                prepare_s: 5.0,
                daemon_start_s: 3.0,
            },
            2,
            SimDuration::from_secs(3600),
            move |_, mc| *g.borrow_mut() = Some(mc),
        );
        e.run_until(rp_sim::SimTime::from_secs_f64(60.0));
        let mc = got.borrow_mut().take().expect("cluster ready");
        match &mc.framework {
            FrameworkHandle::Custom(name, nodes) => {
                assert_eq!(name, "flink");
                assert_eq!(*nodes, 2);
            }
            _ => panic!("expected custom handle"),
        }
        assert!(mc.startup_time.as_secs_f64() > 7.0);
        mc.stop(&mut e);
        e.run();
        assert_eq!(mc.job_state(), JobState::Completed);
    }

    #[test]
    fn walltime_expiry_ends_cluster_job() {
        let mut e = Engine::new(3);
        let svc = service();
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        start_cluster(
            &mut e,
            &svc,
            Framework::Yarn {
                config: YarnConfig::test_profile(),
                with_hdfs: false,
            },
            1,
            SimDuration::from_secs(30),
            move |_, mc| *g.borrow_mut() = Some(mc),
        );
        e.run();
        let mc = got.borrow_mut().take().expect("ready before walltime");
        assert_eq!(mc.job_state(), JobState::TimedOut);
    }
}
