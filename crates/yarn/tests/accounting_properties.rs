//! Property-style tests of YARN resource accounting under random app
//! workloads, generated deterministically from fixed `SimRng` seeds.

use std::cell::RefCell;
use std::rc::Rc;

use rp_hpc::{Cluster, MachineSpec, NodeId};
use rp_sim::{Engine, SimDuration, SimRng};
use rp_yarn::{ResourceRequest, YarnCluster, YarnConfig};

/// Any mix of apps/containers/hold-times: per-node free never exceeds
/// total, everything completes, and the cluster returns to fully free.
#[test]
fn vcores_and_memory_always_balance() {
    let mut rng = SimRng::new(0xBA1A9CE);
    for case in 0..32 {
        let n_apps = rng.uniform_u64(1, 11) as usize;
        let apps: Vec<(u32, u64, u64)> = (0..n_apps)
            .map(|_| {
                (
                    rng.uniform_u64(1, 3) as u32, // containers
                    rng.uniform_u64(1, 3),        // vcores each
                    rng.uniform_u64(1, 19),       // hold seconds
                )
            })
            .collect();
        let mut e = Engine::new(1);
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let yarn = YarnCluster::start(&mut e, &cluster, &nodes, YarnConfig::test_profile());
        let finished = Rc::new(RefCell::new(0usize));
        for (i, (containers, vcores, hold)) in apps.into_iter().enumerate() {
            let f = finished.clone();
            yarn.submit_app(
                &mut e,
                format!("a{i}"),
                ResourceRequest::new(1, 1024),
                move |eng, am| {
                    let held = Rc::new(RefCell::new(Vec::new()));
                    for _ in 0..containers {
                        let am2 = am.clone();
                        let held = held.clone();
                        let f = f.clone();
                        am.request_container(
                            eng,
                            ResourceRequest::new(vcores as u32, 1024),
                            move |eng, c| {
                                held.borrow_mut().push(c.id);
                                if held.borrow().len() == containers as usize {
                                    let am3 = am2.clone();
                                    let held2 = held.clone();
                                    let f = f.clone();
                                    eng.schedule_in(SimDuration::from_secs(hold), move |eng| {
                                        for id in held2.borrow().iter() {
                                            am3.release_container(eng, *id);
                                        }
                                        am3.finish(eng);
                                        *f.borrow_mut() += 1;
                                    });
                                }
                            },
                        );
                    }
                },
            );
        }
        // Drive with a step bound: must drain without eternal ticks.
        let mut steps = 0u64;
        while e.step() {
            steps += 1;
            assert!(steps < 3_000_000, "case {case}: engine never drained");
            let s = yarn.cluster_state();
            assert!(s.available.vcores <= s.total.vcores, "case {case}");
            assert!(s.available.mem_mb <= s.total.mem_mb, "case {case}");
            for (_, total, free) in &s.per_node {
                assert!(free.vcores <= total.vcores, "case {case}");
                assert!(free.mem_mb <= total.mem_mb, "case {case}");
            }
        }
        assert_eq!(*finished.borrow(), n_apps, "case {case}");
        let s = yarn.cluster_state();
        assert_eq!(s.available.vcores, s.total.vcores, "case {case}");
        assert_eq!(s.available.mem_mb, s.total.mem_mb, "case {case}");
        assert_eq!(s.containers_running, 0, "case {case}");
    }
}

/// Random preemptions mid-flight never corrupt accounting.
#[test]
fn preemption_preserves_accounting() {
    let mut rng = SimRng::new(0x92EE397);
    for case in 0..32 {
        let n_batches = rng.uniform_u64(1, 4) as usize;
        let preempt_batches: Vec<usize> = (0..n_batches)
            .map(|_| rng.uniform_u64(1, 3) as usize)
            .collect();
        let mut e = Engine::new(2);
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let yarn = YarnCluster::start(&mut e, &cluster, &nodes, YarnConfig::test_profile());
        // One long-lived app holding several preemptible containers that
        // always re-request on loss.
        yarn.submit_app(&mut e, "resilient", ResourceRequest::new(1, 1024), {
            let yarn2 = yarn.clone();
            move |eng, am| {
                fn hold(eng: &mut Engine, am: rp_yarn::AmHandle, yarn: YarnCluster) {
                    let am2 = am.clone();
                    let yarn2 = yarn.clone();
                    am.request_container_preemptible(
                        eng,
                        ResourceRequest::new(1, 1024),
                        move |eng, _lost| {
                            // Re-request on preemption.
                            hold(eng, am2.clone(), yarn2.clone());
                        },
                        |_, _| {},
                    );
                }
                for _ in 0..6 {
                    hold(eng, am.clone(), yarn2.clone());
                }
            }
        });
        e.run_until(rp_sim::SimTime::from_secs_f64(5.0));
        for n in preempt_batches {
            yarn.preempt(&mut e, n);
            let now = e.now();
            e.run_until(rp_sim::SimTime(now.0 + 2_000_000));
            let s = yarn.cluster_state();
            assert!(s.available.vcores <= s.total.vcores, "case {case}");
        }
        // Tear down; accounting must return to clean.
        let s = yarn.cluster_state();
        let used = s.total.vcores - s.available.vcores;
        assert!(used >= 1, "case {case}: AM still alive");
    }
}
