//! Deployment of a YARN (+ optional HDFS) cluster inside an HPC allocation
//! (Mode I of the paper) and connection to an already-running dedicated
//! cluster (Mode II).
//!
//! The Mode I sequence mirrors what the RADICAL-Pilot LRM does on agent
//! start (paper §III-C): download the Hadoop distribution, generate the
//! `*-site.xml` / `slaves` / `master` files, start the HDFS NameNode +
//! DataNodes and the YARN ResourceManager + NodeManagers. The sum of these
//! stages is the 50–85 s Mode I overhead of Fig. 5.

use rp_hdfs::{Hdfs, HdfsConfig};
use rp_hpc::{Cluster, NodeId};
use rp_sim::{Engine, SimDuration, SpanId};

use crate::config::YarnConfig;
use crate::rm::YarnCluster;

/// A fully bootstrapped Hadoop environment (YARN plus optional HDFS).
#[derive(Clone)]
pub struct HadoopEnv {
    pub yarn: YarnCluster,
    pub hdfs: Option<Hdfs>,
    /// Wall-clock the bootstrap consumed (reported by Fig. 5's harness).
    pub bootstrap_time: SimDuration,
}

/// Mode I: spawn YARN (and HDFS when `with_hdfs`) on `nodes` of an HPC
/// allocation. `on_ready` fires once every daemon is up.
pub fn bootstrap_mode_i(
    engine: &mut Engine,
    cluster: Cluster,
    nodes: Vec<NodeId>,
    config: YarnConfig,
    with_hdfs: bool,
    on_ready: impl FnOnce(&mut Engine, HadoopEnv) + 'static,
) {
    bootstrap_mode_i_in_span(
        engine,
        cluster,
        nodes,
        config,
        with_hdfs,
        SpanId::NONE,
        on_ready,
    );
}

/// [`bootstrap_mode_i`] with the startup recorded as a `yarn.startup` span
/// (child of `parent`); the overlapped HDFS deploy gets its own nested
/// `hdfs.startup` span. With tracing disabled (or `parent == NONE` on an
/// untraced engine) this is byte-identical to `bootstrap_mode_i`.
pub fn bootstrap_mode_i_in_span(
    engine: &mut Engine,
    cluster: Cluster,
    nodes: Vec<NodeId>,
    config: YarnConfig,
    with_hdfs: bool,
    parent: SpanId,
    on_ready: impl FnOnce(&mut Engine, HadoopEnv) + 'static,
) {
    assert!(!nodes.is_empty());
    let t0 = engine.now();
    let yarn_span = engine.trace.span_begin(t0, "yarn", "yarn.startup", parent);
    engine.trace.span_attr(yarn_span, "mode", "I");
    engine
        .trace
        .span_attr(yarn_span, "nodes", nodes.len().to_string());

    // Stage 1: fetch the distribution (skipped when a shared install or
    // staged tarball exists).
    let download = if config.dist_cached {
        0.0
    } else {
        let base = config.dist_size_mb / config.download_mbps;
        engine.rng.normal_min(base, base * 0.08, 0.1)
    };
    let unpack = engine
        .rng
        .normal_min(config.unpack_s.0, config.unpack_s.1, 0.01);
    let confgen = engine
        .rng
        .normal_min(config.config_gen_s.0, config.config_gen_s.1, 0.01);
    let rm_start = engine
        .rng
        .normal_min(config.rm_start_s.0, config.rm_start_s.1, 0.01);
    let nm_start = (0..nodes.len())
        .map(|_| {
            engine
                .rng
                .normal_min(config.nm_start_s.0, config.nm_start_s.1, 0.01)
        })
        .fold(0.0f64, f64::max);
    let prep = SimDuration::from_secs_f64(download + unpack + confgen);
    let daemons = SimDuration::from_secs_f64(rm_start + nm_start);

    engine.trace.record(
        engine.now(),
        "yarn",
        format!(
            "mode-I bootstrap on {} nodes (download {:.1}s, daemons {:.1}s)",
            nodes.len(),
            prep.as_secs_f64(),
            daemons.as_secs_f64()
        ),
    );

    engine.schedule_in(prep, move |eng| {
        let cluster2 = cluster.clone();
        let nodes2 = nodes.clone();
        let after_daemons = move |eng: &mut Engine, hdfs: Option<Hdfs>| {
            let yarn = YarnCluster::start(eng, &cluster, &nodes, config.clone());
            let env = HadoopEnv {
                yarn,
                hdfs,
                bootstrap_time: eng.now().since(t0),
            };
            eng.trace.record(
                eng.now(),
                "yarn",
                format!("mode-I ready after {}", env.bootstrap_time),
            );
            eng.trace.span_end(eng.now(), yarn_span);
            on_ready(eng, env);
        };
        if with_hdfs {
            // HDFS daemons and YARN daemons start side by side: run the
            // HDFS deploy (whose latencies usually dominate) and add only
            // the residual YARN daemon time, i.e. max(YARN, HDFS) overall.
            let hdfs_cfg = HdfsConfig::default();
            let daemons2 = daemons;
            let hdfs_span = eng
                .trace
                .span_begin(eng.now(), "hdfs", "hdfs.startup", yarn_span);
            Hdfs::deploy(eng, cluster2, nodes2, hdfs_cfg, move |eng, hdfs| {
                eng.trace.span_end(eng.now(), hdfs_span);
                // Residual: YARN daemons may outlast HDFS's.
                let residual =
                    daemons2.saturating_sub(SimDuration::from_secs_f64(hdfs_deploy_estimate()));
                eng.schedule_in(residual, move |eng| after_daemons(eng, Some(hdfs)));
            });
        } else {
            eng.schedule_in(daemons, move |eng| after_daemons(eng, None));
        }
    });
}

/// Central estimate of an HDFS deploy (NameNode + DataNodes) used to
/// overlap the YARN and HDFS daemon phases in Mode I.
fn hdfs_deploy_estimate() -> f64 {
    let c = HdfsConfig::default();
    c.namenode_start_s.0 + c.datanode_start_s.0
}

/// Mode II: attach to a dedicated, already-running Hadoop environment
/// (e.g. Wrangler's data-portal reservation). Only the connect handshake
/// is paid; the cluster itself was provisioned out of band.
pub fn connect_mode_ii(
    engine: &mut Engine,
    env: HadoopEnv,
    config: &YarnConfig,
    on_ready: impl FnOnce(&mut Engine, HadoopEnv) + 'static,
) {
    let t0 = engine.now();
    let delay = SimDuration::from_secs_f64(engine.rng.normal_min(
        config.connect_s.0,
        config.connect_s.1,
        0.01,
    ));
    engine
        .trace
        .record(engine.now(), "yarn", "mode-II connect to dedicated cluster");
    engine.schedule_in(delay, move |eng| {
        let env = HadoopEnv {
            bootstrap_time: eng.now().since(t0),
            ..env
        };
        on_ready(eng, env);
    });
}

/// Provision a dedicated cluster instantly (out-of-band infrastructure,
/// like Wrangler's reservation system) for Mode II experiments and tests.
pub fn dedicated_cluster(
    engine: &mut Engine,
    cluster: &Cluster,
    nodes: &[NodeId],
    config: YarnConfig,
    with_hdfs: bool,
) -> HadoopEnv {
    let yarn = YarnCluster::start(engine, cluster, nodes, config);
    let hdfs =
        with_hdfs.then(|| Hdfs::attach(cluster.clone(), nodes.to_vec(), HdfsConfig::default()));
    HadoopEnv {
        yarn,
        hdfs,
        bootstrap_time: SimDuration::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_hpc::MachineSpec;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn mode_i_bootstrap_in_paper_range() {
        let mut e = Engine::new(7);
        let cluster = Cluster::new(MachineSpec::stampede());
        let nodes: Vec<NodeId> = (0..1).map(NodeId).collect();
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        bootstrap_mode_i(
            &mut e,
            cluster,
            nodes,
            YarnConfig::default(),
            true,
            move |_, env| {
                *g.borrow_mut() = Some(env.bootstrap_time.as_secs_f64());
            },
        );
        e.run();
        let t = got.borrow().unwrap();
        // Paper: "for a single node YARN environment, the overhead for
        // Mode I is between 50-85 sec".
        assert!((45.0..95.0).contains(&t), "bootstrap {t}s outside range");
    }

    #[test]
    fn cached_dist_is_faster() {
        let run = |cached: bool| {
            let mut e = Engine::new(3);
            let cluster = Cluster::new(MachineSpec::stampede());
            let got = Rc::new(RefCell::new(None));
            let g = got.clone();
            let cfg = YarnConfig {
                dist_cached: cached,
                ..YarnConfig::default()
            };
            bootstrap_mode_i(
                &mut e,
                cluster,
                vec![NodeId(0)],
                cfg,
                false,
                move |_, env| {
                    *g.borrow_mut() = Some(env.bootstrap_time.as_secs_f64());
                },
            );
            e.run();
            let t = got.borrow().unwrap();
            t
        };
        let cold = run(false);
        let warm = run(true);
        assert!(
            cold - warm > 10.0,
            "download should dominate: cold {cold} warm {warm}"
        );
    }

    #[test]
    fn mode_ii_connect_is_fast() {
        let mut e = Engine::new(5);
        let cluster = Cluster::new(MachineSpec::wrangler());
        let nodes: Vec<NodeId> = (0..2).map(NodeId).collect();
        let env = dedicated_cluster(&mut e, &cluster, &nodes, YarnConfig::default(), true);
        assert!(env.hdfs.is_some());
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        let cfg = YarnConfig::default();
        connect_mode_ii(&mut e, env, &cfg, move |_, env| {
            *g.borrow_mut() = Some(env.bootstrap_time.as_secs_f64());
        });
        e.run();
        let t = got.borrow().unwrap();
        assert!(t < 5.0, "mode II connect should be seconds, got {t}");
    }

    #[test]
    fn bootstrapped_cluster_schedules_apps() {
        let mut e = Engine::new(2);
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let done = Rc::new(RefCell::new(false));
        let d = done.clone();
        bootstrap_mode_i(
            &mut e,
            cluster,
            nodes,
            YarnConfig::test_profile(),
            false,
            move |eng, env| {
                let d = d.clone();
                env.yarn.submit_app(
                    eng,
                    "probe",
                    crate::rm::ResourceRequest::new(1, 1024),
                    move |eng, am| {
                        *d.borrow_mut() = true;
                        am.finish(eng);
                    },
                );
            },
        );
        e.run();
        assert!(*done.borrow());
    }
}
