//! ResourceManager, NodeManagers and the ApplicationMaster protocol.
//!
//! Container allocation is **heartbeat-driven**: the scheduler only places
//! pending requests on periodic ticks (the NM heartbeat cadence), which is
//! what makes YARN Compute-Unit startup so much slower than a plain fork —
//! the effect measured in Fig. 5's inset. Each application goes through the
//! two-stage allocation of Fig. 4: first the AM container, then (driven by
//! the AM) its task containers.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use rp_hpc::{Cluster, NodeId};
use rp_sim::{Engine, SimDuration, SimTime};

use crate::config::{ContainerRuntime, SchedulerPolicy, YarnConfig};

/// YARN application id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u64);

/// YARN container id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContainerId(pub u64);

/// A (vcores, memory) resource vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resource {
    pub vcores: u32,
    pub mem_mb: u64,
}

impl Resource {
    pub fn new(vcores: u32, mem_mb: u64) -> Resource {
        Resource { vcores, mem_mb }
    }

    fn fits_in(&self, other: &Resource) -> bool {
        self.vcores <= other.vcores && self.mem_mb <= other.mem_mb
    }

    fn sub(&mut self, other: &Resource) {
        self.vcores -= other.vcores;
        self.mem_mb -= other.mem_mb;
    }

    fn add(&mut self, other: &Resource) {
        self.vcores += other.vcores;
        self.mem_mb += other.mem_mb;
    }
}

/// A request for one container.
#[derive(Debug, Clone)]
pub struct ResourceRequest {
    pub resource: Resource,
    /// Node-local placement preference (data locality). The scheduler holds
    /// the request for `locality_delay_ticks` ticks before relaxing it.
    pub preferred_node: Option<NodeId>,
}

impl ResourceRequest {
    pub fn new(vcores: u32, mem_mb: u64) -> Self {
        ResourceRequest {
            resource: Resource::new(vcores, mem_mb),
            preferred_node: None,
        }
    }

    pub fn on_node(mut self, node: NodeId) -> Self {
        self.preferred_node = Some(node);
        self
    }
}

/// A granted, running container.
#[derive(Debug, Clone)]
pub struct Container {
    pub id: ContainerId,
    pub app: AppId,
    pub node: NodeId,
    pub resource: Resource,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppState {
    /// Accepted; AM container pending.
    Accepted,
    /// AM is up and may request containers.
    Running,
    Finished,
    Killed,
}

/// Per-application report (the RM `getApplicationReport` RPC).
#[derive(Debug, Clone)]
pub struct AppReport {
    pub id: AppId,
    pub state: AppState,
    pub running_containers: u32,
    /// Submission → now (or → final state).
    pub elapsed: rp_sim::SimDuration,
    pub am_startup: Option<rp_sim::SimDuration>,
}

/// Point-in-time cluster metrics — the stand-in for the RM REST API the
/// paper's agent scheduler polls.
#[derive(Debug, Clone)]
pub struct ClusterState {
    pub total: Resource,
    pub available: Resource,
    pub apps_running: u32,
    pub apps_pending: u32,
    pub containers_running: u32,
    pub per_node: Vec<(NodeId, Resource, Resource)>, // (node, total, free)
}

type AmStartFn = Box<dyn FnOnce(&mut Engine, AmHandle)>;
type PreemptFn = Rc<dyn Fn(&mut Engine, Container)>;
type AllocFn = Box<dyn FnOnce(&mut Engine, Container)>;

enum ReqKind {
    Am(AmStartFn),
    Task(AllocFn),
}

struct Pending {
    app: AppId,
    kind: ReqKind,
    resource: Resource,
    preferred: Option<NodeId>,
    waited_ticks: u32,
}

struct NmState {
    node: NodeId,
    total: Resource,
    free: Resource,
}

struct App {
    #[allow(dead_code)]
    name: String,
    state: AppState,
    am_container: Option<ContainerId>,
    containers: BTreeSet<ContainerId>,
    submit_time: SimTime,
    am_start_time: Option<SimTime>,
}

struct RmInner {
    config: YarnConfig,
    nms: Vec<NmState>,
    /// Nodes that already hold the container image (Docker runtime).
    image_cached: BTreeSet<NodeId>,
    /// Per-container preemption handlers (preemptible requests only).
    preempt_handlers: BTreeMap<ContainerId, PreemptFn>,
    apps: BTreeMap<AppId, App>,
    containers: BTreeMap<ContainerId, Container>,
    pending: VecDeque<Pending>,
    next_app: u64,
    next_container: u64,
    rr_cursor: usize,
    start_time: SimTime,
    tick_scheduled: bool,
    stopped: bool,
}

/// A running YARN cluster (RM + NMs). Cheap to clone (shared handle).
#[derive(Clone)]
pub struct YarnCluster {
    inner: Rc<RefCell<RmInner>>,
}

/// Handle the ApplicationMaster logic uses to talk to the RM.
#[derive(Clone)]
pub struct AmHandle {
    app: AppId,
    yarn: YarnCluster,
}

impl YarnCluster {
    /// Create a cluster over `nodes` of `cluster` and start its scheduler
    /// immediately (daemons assumed up — bootstrap timing lives in
    /// [`crate::bootstrap`]).
    pub fn start(
        engine: &mut Engine,
        cluster: &Cluster,
        nodes: &[NodeId],
        config: YarnConfig,
    ) -> YarnCluster {
        assert!(!nodes.is_empty(), "YARN cluster needs nodes");
        let spec = cluster.spec();
        let nm_mem = (spec.mem_per_node_mb as f64 * config.nm_mem_fraction) as u64;
        let nms = nodes
            .iter()
            .map(|&n| NmState {
                node: n,
                total: Resource::new(spec.cores_per_node, nm_mem),
                free: Resource::new(spec.cores_per_node, nm_mem),
            })
            .collect();
        YarnCluster {
            inner: Rc::new(RefCell::new(RmInner {
                config,
                nms,
                image_cached: BTreeSet::new(),
                preempt_handlers: BTreeMap::new(),
                apps: BTreeMap::new(),
                containers: BTreeMap::new(),
                pending: VecDeque::new(),
                next_app: 0,
                next_container: 0,
                rr_cursor: 0,
                start_time: engine.now(),
                tick_scheduled: false,
                stopped: false,
            })),
        }
    }

    /// Submit an application. After the client round trip and AM container
    /// allocation + launch, `am_logic` runs with an [`AmHandle`].
    pub fn submit_app(
        &self,
        engine: &mut Engine,
        name: impl Into<String>,
        am_request: ResourceRequest,
        am_logic: impl FnOnce(&mut Engine, AmHandle) + 'static,
    ) -> AppId {
        let name = name.into();
        let (sub_mean, sub_std) = self.inner.borrow().config.app_submit_s;
        let submit_delay =
            SimDuration::from_secs_f64(engine.rng.normal_min(sub_mean, sub_std, 0.01));
        let id = {
            let mut inner = self.inner.borrow_mut();
            assert!(!inner.stopped, "submit_app on a stopped YARN cluster");
            let id = AppId(inner.next_app);
            inner.next_app += 1;
            inner.apps.insert(
                id,
                App {
                    name: name.clone(),
                    state: AppState::Accepted,
                    am_container: None,
                    containers: BTreeSet::new(),
                    submit_time: engine.now(),
                    am_start_time: None,
                },
            );
            id
        };
        engine
            .trace
            .record(engine.now(), "yarn", format!("submit {name} as {id:?}"));
        engine.metrics.incr("yarn.apps_submitted");
        let this = self.clone();
        let resource = am_request.resource;
        let rounded = this.round_up(resource);
        engine.schedule_in(submit_delay, move |eng| {
            {
                let mut inner = this.inner.borrow_mut();
                if inner.apps[&id].state != AppState::Accepted {
                    return; // killed before the AM request landed
                }
                inner.pending.push_back(Pending {
                    app: id,
                    kind: ReqKind::Am(Box::new(am_logic)),
                    resource: rounded,
                    preferred: am_request.preferred_node,
                    waited_ticks: 0,
                });
            }
            this.ensure_tick(eng);
        });
        id
    }

    pub fn app_state(&self, id: AppId) -> AppState {
        self.inner.borrow().apps[&id].state
    }

    /// Time from submission to AM start (the first stage of Fig. 4).
    pub fn am_startup_time(&self, id: AppId) -> Option<SimDuration> {
        let inner = self.inner.borrow();
        let app = &inner.apps[&id];
        app.am_start_time.map(|t| t.since(app.submit_time))
    }

    /// Kill an application, releasing its AM and task containers.
    pub fn kill_app(&self, engine: &mut Engine, id: AppId) {
        self.finish_app(engine, id, AppState::Killed);
    }

    /// Per-application report (`yarn application -status`).
    pub fn app_report(&self, engine: &Engine, id: AppId) -> AppReport {
        let inner = self.inner.borrow();
        let app = &inner.apps[&id];
        let running = app.containers.len() as u32
            + app
                .am_container
                .map(|_| 1)
                .unwrap_or(0)
                .min(if app.state.is_final() { 0 } else { 1 });
        AppReport {
            id,
            state: app.state,
            running_containers: if app.state.is_final() { 0 } else { running },
            elapsed: engine.now().saturating_since(app.submit_time),
            am_startup: app.am_start_time.map(|t| t.since(app.submit_time)),
        }
    }

    /// RM REST-style cluster metrics snapshot.
    pub fn cluster_state(&self) -> ClusterState {
        let inner = self.inner.borrow();
        let mut total = Resource::new(0, 0);
        let mut available = Resource::new(0, 0);
        let mut per_node = Vec::with_capacity(inner.nms.len());
        for nm in &inner.nms {
            total.add(&nm.total);
            available.add(&nm.free);
            per_node.push((nm.node, nm.total, nm.free));
        }
        let apps_running = inner
            .apps
            .values()
            .filter(|a| a.state == AppState::Running)
            .count() as u32;
        let apps_pending = inner
            .apps
            .values()
            .filter(|a| a.state == AppState::Accepted)
            .count() as u32;
        ClusterState {
            total,
            available,
            apps_running,
            apps_pending,
            containers_running: inner.containers.len() as u32,
            per_node,
        }
    }

    /// Reclaim up to `n` task containers (newest first, AMs never), as
    /// the RM does under load. Preemptible containers get their handler
    /// invoked; non-preemptible ones are reclaimed silently (the app sees
    /// its work vanish — exactly the hazard the paper warns about).
    /// Returns the preempted containers.
    pub fn preempt(&self, engine: &mut Engine, n: usize) -> Vec<Container> {
        let mut notified = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            let victims: Vec<ContainerId> = inner
                .apps
                .values()
                .flat_map(|a| a.containers.iter().copied())
                .collect::<BTreeSet<_>>()
                .into_iter()
                .rev() // newest container ids first
                .take(n)
                .collect();
            for cid in victims {
                let container = inner.containers[&cid].clone();
                if let Some(app) = inner.apps.get_mut(&container.app) {
                    app.containers.remove(&cid);
                }
                let handler = inner.preempt_handlers.remove(&cid);
                inner.free_container(cid);
                notified.push((container, handler));
            }
        }
        let mut out = Vec::new();
        for (container, handler) in notified {
            engine.trace.record(
                engine.now(),
                "yarn",
                format!("preempted {:?} of {:?}", container.id, container.app),
            );
            engine.metrics.incr("yarn.preemptions");
            if let Some(h) = handler {
                h(engine, container.clone());
            }
            out.push(container);
        }
        self.ensure_tick(engine);
        out
    }

    /// Fail a NodeManager (node crash): the NM stops offering resources,
    /// its task containers are lost (preemption handlers fire so AMs can
    /// re-request elsewhere), and applications whose **AM** lived on the
    /// node are killed (single-attempt AMs, as in the paper's era before
    /// AM restart became routine). Returns the lost task containers.
    pub fn fail_node(&self, engine: &mut Engine, node: NodeId) -> Vec<Container> {
        let mut lost_tasks = Vec::new();
        let mut dead_apps = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            inner.nms.retain(|nm| nm.node != node);
            let on_node: Vec<Container> = inner
                .containers
                .values()
                .filter(|c| c.node == node)
                .cloned()
                .collect();
            for c in &on_node {
                let is_am =
                    inner.apps.get(&c.app).map(|a| a.am_container == Some(c.id)) == Some(true);
                if is_am {
                    dead_apps.push(c.app);
                } else {
                    lost_tasks.push(c.clone());
                }
            }
        }
        engine.trace.record(
            engine.now(),
            "yarn",
            format!(
                "node {node} failed: {} task containers lost, {} apps dead",
                lost_tasks.len(),
                dead_apps.len()
            ),
        );
        engine.metrics.incr("yarn.node_failures");
        engine
            .metrics
            .add("yarn.containers_lost", lost_tasks.len() as u64);
        let mut notified = Vec::new();
        for c in lost_tasks {
            let handler = {
                let mut inner = self.inner.borrow_mut();
                if let Some(app) = inner.apps.get_mut(&c.app) {
                    app.containers.remove(&c.id);
                }
                let h = inner.preempt_handlers.remove(&c.id);
                // NM is gone; just drop the bookkeeping (no resources to
                // return to a dead node).
                inner.containers.remove(&c.id);
                h
            };
            if let Some(h) = handler {
                h(engine, c.clone());
            }
            notified.push(c);
        }
        for app in dead_apps {
            self.finish_app(engine, app, AppState::Killed);
        }
        self.ensure_tick(engine);
        notified
    }

    /// Stop the scheduler (agent teardown). Running containers are dropped.
    pub fn shutdown(&self, engine: &mut Engine) {
        let mut inner = self.inner.borrow_mut();
        inner.stopped = true;
        inner.pending.clear();
        engine.trace.record(engine.now(), "yarn", "shutdown");
    }

    pub fn is_stopped(&self) -> bool {
        self.inner.borrow().stopped
    }

    pub fn nodes(&self) -> Vec<NodeId> {
        self.inner.borrow().nms.iter().map(|n| n.node).collect()
    }

    // ---- internals ----

    fn round_up(&self, mut r: Resource) -> Resource {
        let min = self.inner.borrow().config.min_allocation_mb;
        r.mem_mb = r.mem_mb.max(min).div_ceil(min) * min;
        r.vcores = r.vcores.max(1);
        r
    }

    /// Make sure a scheduler tick is armed for the next heartbeat boundary.
    fn ensure_tick(&self, engine: &mut Engine) {
        let next_at = {
            let mut inner = self.inner.borrow_mut();
            if inner.tick_scheduled || inner.stopped || inner.pending.is_empty() {
                return;
            }
            inner.tick_scheduled = true;
            let hb = inner.config.nm_heartbeat_ms * 1_000; // µs
            let elapsed = engine.now().since(inner.start_time).0;
            let k = elapsed / hb + 1;
            inner.start_time + SimDuration(k * hb)
        };
        let this = self.clone();
        engine.schedule_at(next_at, move |eng| {
            this.inner.borrow_mut().tick_scheduled = false;
            this.tick(eng);
        });
    }

    /// One heartbeat round: walk pending requests FIFO and place what fits.
    fn tick(&self, engine: &mut Engine) {
        loop {
            // Pop the first placeable request; hold the borrow only briefly.
            let placed = {
                let mut inner = self.inner.borrow_mut();
                if inner.stopped {
                    return;
                }
                inner.place_one()
            };
            match placed {
                Some((pending, container)) => self.launch(engine, pending, container),
                None => break,
            }
        }
        // Age non-placeable locality requests and re-arm.
        {
            let mut inner = self.inner.borrow_mut();
            for p in inner.pending.iter_mut() {
                p.waited_ticks += 1;
            }
        }
        self.ensure_tick(engine);
    }

    /// Launch a granted container: pay the launch latency (plus a Docker
    /// image pull on a node's first container), then hand it to the
    /// requester (AM logic or task callback).
    fn launch(&self, engine: &mut Engine, pending: Pending, container: Container) {
        let (mean, std, is_am, extra) = {
            let mut inner = self.inner.borrow_mut();
            let (m, s) = match pending.kind {
                ReqKind::Am(_) => inner.config.am_launch_s,
                ReqKind::Task(_) => inner.config.container_launch_s,
            };
            let is_am = matches!(pending.kind, ReqKind::Am(_));
            let extra = match inner.config.container_runtime {
                ContainerRuntime::Process => 0.0,
                ContainerRuntime::Docker {
                    image_pull_s,
                    start_overhead_s,
                } => {
                    let pull = if inner.image_cached.insert(container.node) {
                        engine.rng.normal_min(image_pull_s.0, image_pull_s.1, 0.1)
                    } else {
                        0.0
                    };
                    pull + start_overhead_s
                }
            };
            (m, s, is_am, extra)
        };
        let delay = SimDuration::from_secs_f64(engine.rng.normal_min(mean, std, 0.05) + extra);
        engine.trace.record(
            engine.now(),
            "yarn",
            format!(
                "allocate {:?} for {:?} on {} ({})",
                container.id,
                container.app,
                container.node,
                if is_am { "AM" } else { "task" }
            ),
        );
        engine.metrics.incr_labeled(
            "yarn.containers_allocated",
            &[("kind", if is_am { "am" } else { "task" })],
        );
        let this = self.clone();
        engine.schedule_in(delay, move |eng| {
            // The app may have been killed while the container launched.
            let alive = {
                let inner = this.inner.borrow();
                inner.containers.contains_key(&container.id)
                    && !inner.apps[&container.app].state.is_final()
            };
            if !alive {
                return;
            }
            match pending.kind {
                ReqKind::Am(am_logic) => {
                    {
                        let mut inner = this.inner.borrow_mut();
                        let app = inner.apps.get_mut(&container.app).unwrap();
                        app.state = AppState::Running;
                        app.am_start_time = Some(eng.now());
                    }
                    am_logic(
                        eng,
                        AmHandle {
                            app: container.app,
                            yarn: this.clone(),
                        },
                    );
                }
                ReqKind::Task(cb) => cb(eng, container),
            }
        });
    }

    fn finish_app(&self, engine: &mut Engine, id: AppId, state: AppState) {
        {
            let mut inner = self.inner.borrow_mut();
            let app = match inner.apps.get_mut(&id) {
                Some(a) if !a.state.is_final() => a,
                _ => return,
            };
            app.state = state;
            let mut to_free: Vec<ContainerId> = app.containers.iter().copied().collect();
            if let Some(am) = app.am_container.take() {
                to_free.push(am);
            }
            app.containers.clear();
            for cid in to_free {
                inner.free_container(cid);
            }
            // Drop pending requests of this app.
            inner.pending.retain(|p| p.app != id);
        }
        engine
            .trace
            .record(engine.now(), "yarn", format!("{id:?} -> {state:?}"));
        engine.metrics.incr_labeled(
            "yarn.apps_finished",
            &[("state", &format!("{state:?}").to_lowercase())],
        );
        self.ensure_tick(engine);
    }
}

impl AppState {
    pub fn is_final(self) -> bool {
        matches!(self, AppState::Finished | AppState::Killed)
    }
}

impl RmInner {
    /// Find and reserve a placement for the first satisfiable pending
    /// request (FIFO with locality delay). Returns the request + container.
    fn place_one(&mut self) -> Option<(Pending, Container)> {
        let cap_ok = |inner: &RmInner, p: &Pending| match inner.config.scheduler {
            SchedulerPolicy::Fifo | SchedulerPolicy::Fair => true,
            SchedulerPolicy::Capacity {
                max_concurrent_apps,
            } => {
                // AM requests gate app concurrency; task requests belong to
                // already-running apps.
                if matches!(p.kind, ReqKind::Am(_)) {
                    // Gate on AM *allocation*, not AM launch completion —
                    // otherwise two AMs could be placed within one launch
                    // window.
                    let admitted = inner
                        .apps
                        .values()
                        .filter(|a| !a.state.is_final() && a.am_container.is_some())
                        .count() as u32;
                    admitted < max_concurrent_apps
                } else {
                    true
                }
            }
        };

        // maxAMShare: refuse AM placements that would let AMs starve task
        // containers of every vcore (the AM-deadlock guard).
        let total_vcores: u32 = self.nms.iter().map(|nm| nm.total.vcores).sum();
        let am_vcores_held: u32 = self
            .apps
            .values()
            .filter(|a| !a.state.is_final())
            .filter_map(|a| a.am_container)
            .filter_map(|cid| self.containers.get(&cid))
            .map(|c| c.resource.vcores)
            .sum();
        let am_share_ok = |p: &Pending| {
            if !matches!(p.kind, ReqKind::Am(_)) {
                return true;
            }
            (am_vcores_held + p.resource.vcores) as f64
                <= self.config.max_am_share * total_vcores as f64
        };

        let locality_delay = self.config.locality_delay_ticks;
        let n = self.nms.len();
        // Scan order: FIFO by default; the Fair policy walks requests of
        // container-poor apps first (AM requests keep FIFO priority).
        let order: Vec<usize> = match self.config.scheduler {
            SchedulerPolicy::Fair => {
                let mut idx: Vec<usize> = (0..self.pending.len()).collect();
                idx.sort_by_key(|&i| {
                    let p = &self.pending[i];
                    let held = self
                        .apps
                        .get(&p.app)
                        .map(|a| a.containers.len())
                        .unwrap_or(0);
                    let is_am = matches!(p.kind, ReqKind::Am(_));
                    (!is_am as usize, held, i)
                });
                idx
            }
            _ => (0..self.pending.len()).collect(),
        };
        let mut chosen: Option<(usize, usize)> = None; // (pending idx, nm idx)
        for pi in order {
            let p = &self.pending[pi];
            if !cap_ok(self, p) || !am_share_ok(p) {
                continue;
            }
            // Preferred node first.
            if let Some(pref) = p.preferred {
                if let Some(ni) = self.nms.iter().position(|nm| nm.node == pref) {
                    if p.resource.fits_in(&self.nms[ni].free) {
                        chosen = Some((pi, ni));
                        break;
                    }
                }
                if p.waited_ticks < locality_delay {
                    continue; // keep waiting for locality
                }
            }
            // Any node, round-robin from the cursor for spread.
            for k in 0..n {
                let ni = (self.rr_cursor + k) % n;
                if p.resource.fits_in(&self.nms[ni].free) {
                    chosen = Some((pi, ni));
                    break;
                }
            }
            if chosen.is_some() {
                break;
            }
        }
        let (pi, ni) = chosen?;
        let pending = self.pending.remove(pi).unwrap();
        self.rr_cursor = (ni + 1) % n;
        self.nms[ni].free.sub(&pending.resource);
        let cid = ContainerId(self.next_container);
        self.next_container += 1;
        let container = Container {
            id: cid,
            app: pending.app,
            node: self.nms[ni].node,
            resource: pending.resource,
        };
        self.containers.insert(cid, container.clone());
        if let Some(app) = self.apps.get_mut(&pending.app) {
            match pending.kind {
                ReqKind::Task(_) => {
                    app.containers.insert(cid);
                }
                ReqKind::Am(_) => {
                    app.am_container = Some(cid);
                }
            }
        }
        Some((pending, container))
    }

    fn free_container(&mut self, id: ContainerId) {
        self.preempt_handlers.remove(&id);
        if let Some(c) = self.containers.remove(&id) {
            if let Some(nm) = self.nms.iter_mut().find(|nm| nm.node == c.node) {
                nm.free.add(&c.resource);
            }
        }
    }
}

impl AmHandle {
    pub fn app_id(&self) -> AppId {
        self.app
    }

    /// Like [`AmHandle::request_container`] but preemptible: if the RM
    /// later reclaims the container (high-load situations, paper §III-B:
    /// "YARN e.g. can preempt containers"), `on_preempt` fires and the
    /// application must re-request.
    pub fn request_container_preemptible(
        &self,
        engine: &mut Engine,
        req: ResourceRequest,
        on_preempt: impl Fn(&mut Engine, Container) + 'static,
        on_alloc: impl FnOnce(&mut Engine, Container) + 'static,
    ) {
        let yarn = self.yarn.clone();
        let handler: PreemptFn = Rc::new(on_preempt);
        self.request_container(engine, req, move |eng, container| {
            yarn.inner
                .borrow_mut()
                .preempt_handlers
                .insert(container.id, handler);
            on_alloc(eng, container);
        });
    }

    /// Ask the RM for a task container; `on_alloc` runs once it is up.
    pub fn request_container(
        &self,
        engine: &mut Engine,
        req: ResourceRequest,
        on_alloc: impl FnOnce(&mut Engine, Container) + 'static,
    ) {
        let rounded = self.yarn.round_up(req.resource);
        {
            let mut inner = self.yarn.inner.borrow_mut();
            let biggest = inner
                .nms
                .iter()
                .map(|nm| nm.total)
                .max_by_key(|r| (r.vcores, r.mem_mb))
                .expect("cluster has NMs");
            assert!(
                rounded.fits_in(&biggest),
                "request {rounded:?} larger than any NodeManager ({biggest:?})"
            );
            assert!(
                !inner.apps[&self.app].state.is_final(),
                "request_container on finished app"
            );
            inner.pending.push_back(Pending {
                app: self.app,
                kind: ReqKind::Task(Box::new(on_alloc)),
                resource: rounded,
                preferred: req.preferred_node,
                waited_ticks: 0,
            });
        }
        self.yarn.ensure_tick(engine);
    }

    /// Return one task container to the RM.
    pub fn release_container(&self, engine: &mut Engine, id: ContainerId) {
        {
            let mut inner = self.yarn.inner.borrow_mut();
            if let Some(app) = inner.apps.get_mut(&self.app) {
                app.containers.remove(&id);
            }
            inner.preempt_handlers.remove(&id);
            inner.free_container(id);
        }
        self.yarn.ensure_tick(engine);
    }

    /// Unregister the AM: the application finishes, everything is freed.
    pub fn finish(&self, engine: &mut Engine) {
        self.yarn.finish_app(engine, self.app, AppState::Finished);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_hpc::MachineSpec;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn test_cluster(engine: &mut Engine) -> (Cluster, YarnCluster) {
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let yarn = YarnCluster::start(engine, &cluster, &nodes, YarnConfig::test_profile());
        (cluster, yarn)
    }

    #[test]
    fn app_reaches_running_after_am_allocation() {
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        let started = Rc::new(RefCell::new(None));
        let s = started.clone();
        let id = yarn.submit_app(
            &mut e,
            "app",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                *s.borrow_mut() = Some(eng.now());
                am.finish(eng);
            },
        );
        e.run();
        assert!(started.borrow().is_some());
        assert_eq!(yarn.app_state(id), AppState::Finished);
        // submit (0.05) + heartbeat wait (≤0.1) + AM launch (0.2)
        let am_t = yarn.am_startup_time(id).unwrap().as_secs_f64();
        assert!(am_t > 0.2 && am_t < 1.0, "{am_t}");
    }

    #[test]
    fn two_stage_allocation_for_task_containers() {
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        let task_node = Rc::new(RefCell::new(None));
        let tn = task_node.clone();
        yarn.submit_app(
            &mut e,
            "mr",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                let tn = tn.clone();
                let am2 = am.clone();
                am.request_container(eng, ResourceRequest::new(2, 2048), move |eng, c| {
                    *tn.borrow_mut() = Some(c.node);
                    am2.release_container(eng, c.id);
                    am2.finish(eng);
                });
            },
        );
        e.run();
        assert!(task_node.borrow().is_some());
        let state = yarn.cluster_state();
        assert_eq!(state.containers_running, 0);
        assert_eq!(state.available.vcores, state.total.vcores);
    }

    #[test]
    fn memory_rounds_up_to_min_allocation() {
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        yarn.submit_app(
            &mut e,
            "round",
            ResourceRequest::new(1, 1500),
            move |eng, am| {
                let g = g.clone();
                let am2 = am.clone();
                am.request_container(eng, ResourceRequest::new(1, 100), move |eng, c| {
                    *g.borrow_mut() = Some(c.resource);
                    am2.finish(eng);
                });
            },
        );
        e.run();
        let r = got.borrow().unwrap();
        assert_eq!(r.mem_mb, 1024); // rounded up from 100
    }

    #[test]
    fn locality_preference_honoured_when_free() {
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        yarn.submit_app(
            &mut e,
            "local",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                let g = g.clone();
                let am2 = am.clone();
                am.request_container(
                    eng,
                    ResourceRequest::new(1, 1024).on_node(NodeId(2)),
                    move |eng, c| {
                        *g.borrow_mut() = Some(c.node);
                        am2.finish(eng);
                    },
                );
            },
        );
        e.run();
        assert_eq!(got.borrow().unwrap(), NodeId(2));
    }

    #[test]
    fn locality_relaxes_after_delay() {
        let mut e = Engine::new(1);
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let yarn = YarnCluster::start(&mut e, &cluster, &nodes, YarnConfig::test_profile());
        // Fill node 0 completely with a blocker app.
        let blocker_done = Rc::new(RefCell::new(None));
        let bd = blocker_done.clone();
        yarn.submit_app(
            &mut e,
            "blocker",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                let bd = bd.clone();
                let am2 = am.clone();
                am.request_container(
                    eng,
                    ResourceRequest::new(7, 12 * 1024).on_node(NodeId(0)),
                    move |_, c| {
                        *bd.borrow_mut() = Some((am2, c));
                    },
                );
            },
        );
        e.run();
        assert!(blocker_done.borrow().is_some());
        // Now request node 0 again: full → after locality_delay ticks the
        // request relaxes to another node.
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        yarn.submit_app(
            &mut e,
            "wants0",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                let g = g.clone();
                let am2 = am.clone();
                am.request_container(
                    eng,
                    ResourceRequest::new(7, 12 * 1024).on_node(NodeId(0)),
                    move |eng, c| {
                        *g.borrow_mut() = Some(c.node);
                        am2.finish(eng);
                    },
                );
            },
        );
        e.run();
        let node = got.borrow().unwrap();
        assert_ne!(node, NodeId(0), "must have relaxed off the full node");
    }

    #[test]
    fn requests_queue_until_capacity_frees() {
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        // One app grabs all vcores of all 4 nodes (8 each), then releases.
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = order.clone();
        yarn.submit_app(
            &mut e,
            "hog",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                let held = Rc::new(RefCell::new(Vec::new()));
                for _ in 0..4 {
                    let held = held.clone();
                    let o = o.clone();
                    let am2 = am.clone();
                    am.request_container(eng, ResourceRequest::new(7, 1024), move |eng, c| {
                        o.borrow_mut().push(format!("hog:{}", c.node));
                        held.borrow_mut().push(c.id);
                        if held.borrow().len() == 4 {
                            // Release everything after 5 s.
                            let am3 = am2.clone();
                            let held2 = held.clone();
                            eng.schedule_in(SimDuration::from_secs(5), move |eng| {
                                for id in held2.borrow().iter() {
                                    am3.release_container(eng, *id);
                                }
                                am3.finish(eng);
                            });
                        }
                    });
                }
            },
        );
        e.run_until(SimTime::from_secs_f64(2.0));
        // Competitor needs 7 vcores: blocked while hog holds them.
        let got_at = Rc::new(RefCell::new(None));
        let g = got_at.clone();
        yarn.submit_app(
            &mut e,
            "late",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                let g = g.clone();
                let am2 = am.clone();
                am.request_container(eng, ResourceRequest::new(7, 1024), move |eng, _c| {
                    *g.borrow_mut() = Some(eng.now());
                    am2.finish(eng);
                });
            },
        );
        e.run();
        let t = got_at.borrow().unwrap().as_secs_f64();
        assert!(t > 5.0, "late container should wait for the release: {t}");
    }

    #[test]
    fn kill_app_frees_everything() {
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        let id = yarn.submit_app(
            &mut e,
            "victim",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                am.request_container(eng, ResourceRequest::new(4, 4096), |_, _| {});
            },
        );
        e.run_until(SimTime::from_secs_f64(2.0));
        yarn.kill_app(&mut e, id);
        e.run();
        assert_eq!(yarn.app_state(id), AppState::Killed);
        let s = yarn.cluster_state();
        assert_eq!(s.available.vcores, s.total.vcores);
        assert_eq!(s.containers_running, 0);
    }

    #[test]
    fn capacity_policy_limits_concurrent_apps() {
        let mut e = Engine::new(1);
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let mut cfg = YarnConfig::test_profile();
        cfg.scheduler = SchedulerPolicy::Capacity {
            max_concurrent_apps: 1,
        };
        let yarn = YarnCluster::start(&mut e, &cluster, &nodes, cfg);
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let o = order.clone();
            yarn.submit_app(
                &mut e,
                format!("app{i}"),
                ResourceRequest::new(1, 1024),
                move |eng, am| {
                    o.borrow_mut().push((i, eng.now()));
                    let am2 = am.clone();
                    eng.schedule_in(SimDuration::from_secs(2), move |eng| am2.finish(eng));
                },
            );
        }
        e.run();
        let order = order.borrow();
        assert_eq!(order.len(), 3);
        // Serialised: each next AM starts ≥2 s after the previous.
        assert!(order[1].1.since(order[0].1).as_secs_f64() >= 2.0);
        assert!(order[2].1.since(order[1].1).as_secs_f64() >= 2.0);
    }

    #[test]
    fn cluster_state_reflects_usage() {
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        let s0 = yarn.cluster_state();
        assert_eq!(s0.total.vcores, 32);
        assert_eq!(s0.containers_running, 0);
        let held = Rc::new(RefCell::new(None));
        let h = held.clone();
        yarn.submit_app(
            &mut e,
            "x",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                let h = h.clone();
                let am2 = am.clone();
                am.request_container(eng, ResourceRequest::new(3, 2048), move |_, c| {
                    *h.borrow_mut() = Some((am2, c));
                });
            },
        );
        e.run();
        let s1 = yarn.cluster_state();
        // AM (1 vcore) + task (3 vcores) in flight.
        assert_eq!(s1.available.vcores, 32 - 4);
        assert_eq!(s1.containers_running, 2);
        assert_eq!(s1.apps_running, 1);
    }

    #[test]
    #[should_panic]
    fn oversized_container_request_panics() {
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        yarn.submit_app(
            &mut e,
            "huge",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                am.request_container(eng, ResourceRequest::new(64, 1024), |_, _| {});
            },
        );
        e.run();
    }

    #[test]
    fn heartbeat_quantises_allocation_times() {
        let mut e = Engine::new(1);
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let mut cfg = YarnConfig::test_profile();
        cfg.nm_heartbeat_ms = 1_000; // restore realistic cadence
        cfg.app_submit_s = (0.0, 0.0);
        cfg.am_launch_s = (0.0, 0.0);
        let yarn = YarnCluster::start(&mut e, &cluster, &nodes, cfg);
        let t_am = Rc::new(RefCell::new(None));
        let t = t_am.clone();
        yarn.submit_app(
            &mut e,
            "q",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                *t.borrow_mut() = Some(eng.now());
                am.finish(eng);
            },
        );
        e.run();
        // Submitted at t≈0 → allocated on the first heartbeat at t=1 s.
        let t = t_am.borrow().unwrap().as_secs_f64();
        assert!((t - 1.0).abs() < 0.15, "{t}");
    }

    #[test]
    fn docker_runtime_pays_pull_once_per_node() {
        use crate::config::ContainerRuntime;
        let mut e = Engine::new(1);
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().take(1).collect();
        let mut cfg = YarnConfig::test_profile();
        cfg.container_runtime = ContainerRuntime::Docker {
            image_pull_s: (10.0, 0.0),
            start_overhead_s: 0.5,
        };
        let yarn = YarnCluster::start(&mut e, &cluster, &nodes, cfg);
        let times = Rc::new(RefCell::new(Vec::new()));
        let t = times.clone();
        yarn.submit_app(
            &mut e,
            "docker",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                // AM pays the pull (first container on the node); two task
                // containers after it only pay the start overhead.
                let am2 = am.clone();
                let t2 = t.clone();
                am.request_container(eng, ResourceRequest::new(1, 1024), move |eng, c1| {
                    t2.borrow_mut().push(eng.now());
                    let am3 = am2.clone();
                    let t3 = t2.clone();
                    am2.request_container(eng, ResourceRequest::new(1, 1024), move |eng, c2| {
                        t3.borrow_mut().push(eng.now());
                        am3.release_container(eng, c1.id);
                        am3.release_container(eng, c2.id);
                        am3.finish(eng);
                    });
                });
            },
        );
        e.run();
        let times = times.borrow();
        // First container (the AM) absorbed the 10 s pull; the gap between
        // the two task containers is heartbeat + launch + overhead ≪ 10 s.
        let first = times[0].as_secs_f64();
        let gap = times[1].since(times[0]).as_secs_f64();
        assert!(first > 10.0, "AM pull should delay everything: {first}");
        assert!(gap < 2.0, "second task container must not re-pull: {gap}");
    }

    #[test]
    fn preemption_notifies_and_frees_resources() {
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        let preempted = Rc::new(RefCell::new(Vec::new()));
        let granted = Rc::new(RefCell::new(0usize));
        let p = preempted.clone();
        let g = granted.clone();
        yarn.submit_app(
            &mut e,
            "victim",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                for _ in 0..3 {
                    let p = p.clone();
                    let g = g.clone();
                    am.request_container_preemptible(
                        eng,
                        ResourceRequest::new(2, 2048),
                        move |_, c| p.borrow_mut().push(c.id),
                        move |_, _c| *g.borrow_mut() += 1,
                    );
                }
            },
        );
        e.run();
        assert_eq!(*granted.borrow(), 3);
        let before = yarn.cluster_state();
        let victims = yarn.preempt(&mut e, 2);
        e.run();
        assert_eq!(victims.len(), 2);
        assert_eq!(preempted.borrow().len(), 2);
        let after = yarn.cluster_state();
        assert_eq!(after.available.vcores, before.available.vcores + 4);
        // Newest containers go first.
        assert!(victims[0].id > victims[1].id || victims.len() < 2);
    }

    #[test]
    fn preempt_never_touches_am_containers() {
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        let id = yarn.submit_app(&mut e, "amonly", ResourceRequest::new(1, 1024), |_, _| {});
        e.run();
        let victims = yarn.preempt(&mut e, 5);
        assert!(victims.is_empty(), "only an AM exists; nothing preemptible");
        assert_eq!(yarn.app_state(id), AppState::Running);
    }

    #[test]
    fn max_am_share_prevents_am_deadlock() {
        // 64 apps, each AM then one task container, on 32 vcores: without
        // maxAMShare the AMs fill the cluster and nothing ever finishes.
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        let finished = Rc::new(RefCell::new(0usize));
        for i in 0..64 {
            let f = finished.clone();
            yarn.submit_app(
                &mut e,
                format!("a{i}"),
                ResourceRequest::new(1, 1024),
                move |eng, am| {
                    let am2 = am.clone();
                    let f = f.clone();
                    am.request_container(eng, ResourceRequest::new(1, 1024), move |eng, cont| {
                        am2.release_container(eng, cont.id);
                        am2.finish(eng);
                        *f.borrow_mut() += 1;
                    });
                },
            );
        }
        // A bounded drive: the engine must drain (no eternal ticks).
        let mut steps = 0u64;
        while e.step() {
            steps += 1;
            assert!(steps < 2_000_000, "AM deadlock: engine never drains");
        }
        assert_eq!(*finished.borrow(), 64);
    }

    #[test]
    fn fair_policy_interleaves_apps() {
        let run = |policy: SchedulerPolicy| -> Vec<u64> {
            let mut e = Engine::new(1);
            let cluster = Cluster::new(MachineSpec::localhost());
            let nodes: Vec<NodeId> = cluster.node_ids().take(1).collect(); // 8 vcores
            let mut cfg = YarnConfig::test_profile();
            cfg.scheduler = policy;
            let yarn = YarnCluster::start(&mut e, &cluster, &nodes, cfg);
            // Two apps, each wanting 6 containers on an 8-vcore node
            // (2 vcores go to the AMs): grants reveal the policy.
            let grants: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for app in 0..2u64 {
                let g = grants.clone();
                yarn.submit_app(
                    &mut e,
                    format!("a{app}"),
                    ResourceRequest::new(1, 1024),
                    move |eng, am| {
                        for _ in 0..6 {
                            let g = g.clone();
                            am.request_container(
                                eng,
                                ResourceRequest::new(1, 1024),
                                move |_, _| {
                                    g.borrow_mut().push(app);
                                },
                            );
                        }
                    },
                );
            }
            e.run_until(rp_sim::SimTime::from_secs_f64(30.0));
            let out = grants.borrow().clone();
            out
        };
        let fifo = run(SchedulerPolicy::Fifo);
        let fair = run(SchedulerPolicy::Fair);
        // Only 6 task containers fit (8 - 2 AMs). FIFO gives them all to
        // the first app; Fair splits 3/3.
        let count = |v: &[u64], app: u64| v.iter().filter(|&&x| x == app).count();
        assert_eq!(fifo.len(), 6);
        assert_eq!(count(&fifo, 0), 6, "FIFO starves the second app: {fifo:?}");
        assert_eq!(fair.len(), 6);
        assert_eq!(count(&fair, 0), 3, "Fair splits evenly: {fair:?}");
        assert_eq!(count(&fair, 1), 3);
    }

    #[test]
    fn node_failure_loses_containers_and_notifies() {
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        let state = Rc::new(RefCell::new((None, Vec::new()))); // (task node, preempted)
        let st = state.clone();
        yarn.submit_app(
            &mut e,
            "victim",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                let st = st.clone();
                am.request_container_preemptible(
                    eng,
                    ResourceRequest::new(2, 2048),
                    {
                        let st = st.clone();
                        move |_, c| st.borrow_mut().1.push(c.id)
                    },
                    move |_, c| st.borrow_mut().0 = Some(c.node),
                );
            },
        );
        e.run();
        let task_node = state.borrow().0.expect("task placed");
        let before = yarn.cluster_state();
        let lost = yarn.fail_node(&mut e, task_node);
        e.run();
        assert_eq!(lost.len(), 1);
        assert_eq!(state.borrow().1.len(), 1, "preempt handler fired");
        let after = yarn.cluster_state();
        assert_eq!(after.per_node.len(), before.per_node.len() - 1);
    }

    #[test]
    fn am_node_failure_kills_app() {
        let mut e = Engine::new(2);
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let yarn = YarnCluster::start(&mut e, &cluster, &nodes, YarnConfig::test_profile());
        let am_node = Rc::new(RefCell::new(None));
        let an = am_node.clone();
        // Learn the AM's node via a task container on the same app: the
        // AM itself reports through am_container bookkeeping; place and
        // inspect cluster state instead.
        let id = yarn.submit_app(&mut e, "app", ResourceRequest::new(1, 1024), move |_, _| {
            *an.borrow_mut() = Some(());
        });
        e.run();
        assert!(am_node.borrow().is_some());
        // Find the AM's node: the only NM with used vcores.
        let s = yarn.cluster_state();
        let node = s
            .per_node
            .iter()
            .find(|(_, total, free)| total.vcores != free.vcores)
            .map(|&(n, _, _)| n)
            .expect("AM somewhere");
        yarn.fail_node(&mut e, node);
        e.run();
        assert_eq!(yarn.app_state(id), AppState::Killed);
        let s = yarn.cluster_state();
        assert_eq!(s.available.vcores, s.total.vcores);
    }

    #[test]
    fn app_report_tracks_lifecycle() {
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        let held = Rc::new(RefCell::new(None));
        let h = held.clone();
        let id = yarn.submit_app(
            &mut e,
            "rep",
            ResourceRequest::new(1, 1024),
            move |eng, am| {
                let h = h.clone();
                let am2 = am.clone();
                am.request_container(eng, ResourceRequest::new(2, 2048), move |_, c| {
                    *h.borrow_mut() = Some((am2, c));
                });
            },
        );
        e.run();
        let r = yarn.app_report(&e, id);
        assert_eq!(r.state, AppState::Running);
        assert_eq!(r.running_containers, 2); // AM + task
        assert!(r.am_startup.is_some());
        let (am, c) = held.borrow_mut().take().unwrap();
        am.release_container(&mut e, c.id);
        am.finish(&mut e);
        let r = yarn.app_report(&e, id);
        assert_eq!(r.state, AppState::Finished);
        assert_eq!(r.running_containers, 0);
    }

    #[test]
    fn engine_drains_with_no_pending_work() {
        // The tick loop must not keep the event queue alive forever.
        let mut e = Engine::new(1);
        let (_c, yarn) = test_cluster(&mut e);
        let id = yarn.submit_app(&mut e, "one", ResourceRequest::new(1, 1024), |eng, am| {
            am.finish(eng);
        });
        let end = e.run(); // would hang/never return if ticks self-perpetuated
        assert!(end.as_secs_f64() < 5.0);
        assert_eq!(yarn.app_state(id), AppState::Finished);
    }
}
