//! # rp-yarn — simulated Hadoop YARN
//!
//! ResourceManager + NodeManagers with heartbeat-driven container
//! allocation, the ApplicationMaster protocol (two-stage allocation of
//! Fig. 4), locality-aware delay scheduling, FIFO/Capacity policies, a
//! REST-equivalent cluster-state API, and Mode I / Mode II provisioning:
//!
//! * [`bootstrap::bootstrap_mode_i`] — spawn YARN (+HDFS) inside an HPC
//!   allocation (Hadoop on HPC).
//! * [`bootstrap::connect_mode_ii`] — attach to a dedicated, pre-running
//!   cluster (HPC on Hadoop).

pub mod bootstrap;
pub mod config;
pub mod rm;

pub use bootstrap::{
    bootstrap_mode_i, bootstrap_mode_i_in_span, connect_mode_ii, dedicated_cluster, HadoopEnv,
};
pub use config::{ContainerRuntime, SchedulerPolicy, YarnConfig};
pub use rm::{
    AmHandle, AppId, AppReport, AppState, ClusterState, Container, ContainerId, Resource,
    ResourceRequest, YarnCluster,
};
