//! YARN deployment and scheduler tunables.
//!
//! Defaults correspond to a stock Hadoop 2.x install of the paper's era;
//! they are the constants behind the Fig. 5 bootstrap and Compute-Unit
//! startup overheads, so each one documents what it models.

/// How task/AM containers are executed on NodeManagers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ContainerRuntime {
    /// Plain process containers (default Hadoop 2.x).
    Process,
    /// Docker containers (the paper's future-work §V: "container-based
    /// virtualization … is increasingly used … and also supported by
    /// YARN"): the first container on each node pays an image pull.
    Docker {
        /// Image pull + extract on first use per node (s, mean/std).
        image_pull_s: (f64, f64),
        /// Extra per-container start overhead vs a plain process (s).
        start_overhead_s: f64,
    },
}

/// Scheduling policy of the ResourceManager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Strict submission-order FIFO (yarn FifoScheduler).
    #[default]
    Fifo,
    /// Capacity-style: FIFO per queue with an app-concurrency cap — enough
    /// to study AM-per-CU head-of-line effects without full queue trees.
    Capacity { max_concurrent_apps: u32 },
    /// Fair scheduler: on each heartbeat, grant to the running app with
    /// the fewest task containers (instantaneous fairness), instead of
    /// request-arrival order.
    Fair,
}

/// All tunables of a simulated YARN cluster.
#[derive(Debug, Clone)]
pub struct YarnConfig {
    /// NodeManager → RM heartbeat period (ms). Container allocation is
    /// heartbeat-driven — this is the main source of the multi-second
    /// allocation latency in Fig. 5's inset.
    pub nm_heartbeat_ms: u64,
    /// Fraction of node memory NodeManagers offer to containers
    /// (`yarn.nodemanager.resource.memory-mb` ÷ physical).
    pub nm_mem_fraction: f64,
    /// Smallest container memory grant (scheduler rounds requests up).
    pub min_allocation_mb: u64,
    /// Client-side app submission round trip (s, mean/std).
    pub app_submit_s: (f64, f64),
    /// ApplicationMaster container launch: localization + JVM start +
    /// RM registration (s, mean/std).
    pub am_launch_s: (f64, f64),
    /// Task container launch: localization + JVM start (s, mean/std).
    pub container_launch_s: (f64, f64),
    /// How many scheduler ticks a node-local request waits before relaxing
    /// to any node (delay scheduling).
    pub locality_delay_ticks: u32,
    pub scheduler: SchedulerPolicy,
    pub container_runtime: ContainerRuntime,
    /// Maximum fraction of cluster vcores ApplicationMasters may hold
    /// (Fair scheduler's `maxAMShare` / Capacity's
    /// `maximum-am-resource-percent`). Prevents the classic AM deadlock
    /// where AMs fill the cluster and no task container can ever start.
    pub max_am_share: f64,

    // ---- Mode I bootstrap constants (Hadoop-on-HPC) ----
    /// Hadoop distribution tarball size (MB) fetched when no shared install
    /// is present.
    pub dist_size_mb: f64,
    /// Effective download bandwidth from the campus mirror (MB/s).
    pub download_mbps: f64,
    /// Whether the tarball is already staged (skips the download).
    pub dist_cached: bool,
    /// Untar + layout of the distribution (s, mean/std).
    pub unpack_s: (f64, f64),
    /// Generation of *-site.xml, slaves/master files (s, mean/std).
    pub config_gen_s: (f64, f64),
    /// ResourceManager daemon start (s, mean/std).
    pub rm_start_s: (f64, f64),
    /// Per-NodeManager daemon start (s, mean/std); NMs start in parallel.
    pub nm_start_s: (f64, f64),
    /// Mode II: connect + cluster-state fetch from a running RM (s, m/s).
    pub connect_s: (f64, f64),
}

impl Default for YarnConfig {
    fn default() -> Self {
        YarnConfig {
            nm_heartbeat_ms: 1_000,
            nm_mem_fraction: 0.85,
            min_allocation_mb: 1_024,
            app_submit_s: (1.0, 0.2),
            // Vanilla YARN app without warmed JVMs: jar localization +
            // AM JVM start + RM registration. Together with the task
            // container below this produces the ~tens-of-seconds CU
            // startup of Fig. 5's inset.
            am_launch_s: (26.0, 3.0),
            container_launch_s: (7.0, 1.2),
            locality_delay_ticks: 2,
            scheduler: SchedulerPolicy::Fifo,
            container_runtime: ContainerRuntime::Process,
            max_am_share: 0.5,
            dist_size_mb: 280.0,
            download_mbps: 12.0,
            dist_cached: false,
            unpack_s: (9.0, 1.5),
            config_gen_s: (2.0, 0.4),
            rm_start_s: (9.0, 1.5),
            nm_start_s: (6.0, 1.0),
            connect_s: (1.5, 0.3),
        }
    }
}

impl YarnConfig {
    /// Fast-everything profile for unit tests (sub-second bootstrap,
    /// 100 ms heartbeats) — keeps tests focused on logic, not constants.
    pub fn test_profile() -> Self {
        YarnConfig {
            nm_heartbeat_ms: 100,
            app_submit_s: (0.05, 0.0),
            am_launch_s: (0.2, 0.0),
            container_launch_s: (0.1, 0.0),
            dist_cached: true,
            unpack_s: (0.1, 0.0),
            config_gen_s: (0.05, 0.0),
            rm_start_s: (0.2, 0.0),
            nm_start_s: (0.1, 0.0),
            connect_s: (0.05, 0.0),
            ..YarnConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_hadoop2_like() {
        let c = YarnConfig::default();
        assert_eq!(c.nm_heartbeat_ms, 1_000);
        assert_eq!(c.min_allocation_mb, 1_024);
        assert!(!c.dist_cached);
    }

    #[test]
    fn test_profile_is_fast() {
        let c = YarnConfig::test_profile();
        assert!(c.am_launch_s.0 < 1.0);
        assert!(c.dist_cached);
    }
}
