//! Criterion micro-benchmarks of the performance-critical pieces: the
//! event engine, the fair-share bandwidth model, YARN allocation, the
//! native MapReduce runner, the K-Means kernel and the mini-RDD engine.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use rp_analytics::dataset::gaussian_blobs;
use rp_analytics::kmeans::{kmeans_mapreduce, kmeans_rdd, lloyd};
use rp_hpc::{Cluster, MachineSpec, NodeId};
use rp_sim::{Engine, FairLink, SimDuration};
use rp_spark::SparkContext;
use rp_yarn::{ResourceRequest, YarnCluster, YarnConfig};

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine/10k_chained_events", |b| {
        b.iter(|| {
            let mut e = Engine::new(1);
            fn chain(e: &mut Engine, left: u32) {
                if left > 0 {
                    e.schedule_in(SimDuration::from_micros(10), move |e| chain(e, left - 1));
                }
            }
            chain(&mut e, 10_000);
            e.run()
        })
    });
    c.bench_function("engine/10k_parallel_events", |b| {
        b.iter(|| {
            let mut e = Engine::new(1);
            for i in 0..10_000u64 {
                e.schedule_in(SimDuration::from_micros(i % 997), |_| {});
            }
            e.run()
        })
    });
}

fn bench_fairlink(c: &mut Criterion) {
    c.bench_function("fairlink/200_concurrent_flows", |b| {
        b.iter(|| {
            let mut e = Engine::new(1);
            let link = FairLink::new("bench", 1e9);
            for i in 0..200 {
                link.transfer(&mut e, 1e6 + i as f64 * 1e4, f64::INFINITY, |_| {});
            }
            e.run()
        })
    });
}

fn bench_yarn(c: &mut Criterion) {
    c.bench_function("yarn/64_container_apps", |b| {
        b.iter(|| {
            let mut e = Engine::new(1);
            let cluster = Cluster::new(MachineSpec::localhost());
            let nodes: Vec<NodeId> = cluster.node_ids().collect();
            let yarn = YarnCluster::start(&mut e, &cluster, &nodes, YarnConfig::test_profile());
            for i in 0..64 {
                yarn.submit_app(
                    &mut e,
                    format!("a{i}"),
                    ResourceRequest::new(1, 1024),
                    move |eng, am| {
                        let am2 = am.clone();
                        am.request_container(eng, ResourceRequest::new(1, 1024), move |eng, cont| {
                            am2.release_container(eng, cont.id);
                            am2.finish(eng);
                        });
                    },
                );
            }
            e.run()
        })
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let pts = gaussian_blobs(20_000, 16, 2.0, 42);
    c.bench_function("kmeans/native_20k_k16_1iter", |b| {
        b.iter(|| lloyd(&pts, 16, 1))
    });
    let small = gaussian_blobs(5_000, 8, 2.0, 42);
    c.bench_function("kmeans/mapreduce_5k_k8_1iter", |b| {
        b.iter(|| kmeans_mapreduce(&small, 8, 1, 4, 2))
    });
    c.bench_function("kmeans/rdd_5k_k8_1iter", |b| {
        b.iter_batched(
            || small.clone(),
            |pts| kmeans_rdd(pts, 8, 1, 4),
            BatchSize::SmallInput,
        )
    });
}

fn bench_rdd(c: &mut Criterion) {
    c.bench_function("rdd/reduce_by_key_100k", |b| {
        let data: Vec<(u64, u64)> = (0..100_000).map(|i| (i % 512, 1)).collect();
        b.iter_batched(
            || data.clone(),
            |d| {
                let sc = SparkContext::new(8);
                sc.parallelize(d, 8)
                    .reduce_by_key(|a, b| a + b)
                    .collect()
                    .len()
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engine, bench_fairlink, bench_yarn, bench_kmeans, bench_rdd
}
criterion_main!(benches);
