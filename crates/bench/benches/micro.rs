//! Micro-benchmarks of the performance-critical pieces: the event engine,
//! the fair-share bandwidth model, YARN allocation, the K-Means kernel and
//! the mini-RDD engine.
//!
//! Self-timed (median of repeated runs after warmup) so the workspace
//! carries no external benchmark framework. Run with `cargo bench`.

use std::time::Instant;

use rp_analytics::dataset::gaussian_blobs;
use rp_analytics::kmeans::{kmeans_mapreduce, kmeans_rdd, lloyd};
use rp_hpc::{Cluster, MachineSpec, NodeId};
use rp_sim::{Engine, FairLink, SimDuration};
use rp_spark::SparkContext;
use rp_yarn::{ResourceRequest, YarnCluster, YarnConfig};

/// Run `f` a few times after warmup and report the median wall time.
fn bench(name: &str, mut f: impl FnMut()) {
    const WARMUP: usize = 2;
    const SAMPLES: usize = 9;
    for _ in 0..WARMUP {
        f();
    }
    let mut times: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[SAMPLES / 2];
    let (lo, hi) = (times[0], times[SAMPLES - 1]);
    println!(
        "{name:<36} {:>10.3} ms  (min {:.3} / max {:.3})",
        median * 1e3,
        lo * 1e3,
        hi * 1e3
    );
}

fn bench_engine() {
    bench("engine/10k_chained_events", || {
        let mut e = Engine::new(1);
        fn chain(e: &mut Engine, left: u32) {
            if left > 0 {
                e.schedule_in(SimDuration::from_micros(10), move |e| chain(e, left - 1));
            }
        }
        chain(&mut e, 10_000);
        e.run();
    });
    bench("engine/10k_parallel_events", || {
        let mut e = Engine::new(1);
        for i in 0..10_000u64 {
            e.schedule_in(SimDuration::from_micros(i % 997), |_| {});
        }
        e.run();
    });
}

fn bench_fairlink() {
    bench("fairlink/200_concurrent_flows", || {
        let mut e = Engine::new(1);
        let link = FairLink::new("bench", 1e9);
        for i in 0..200 {
            link.transfer(&mut e, 1e6 + i as f64 * 1e4, f64::INFINITY, |_| {});
        }
        e.run();
    });
}

fn bench_yarn() {
    bench("yarn/64_container_apps", || {
        let mut e = Engine::new(1);
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let yarn = YarnCluster::start(&mut e, &cluster, &nodes, YarnConfig::test_profile());
        for i in 0..64 {
            yarn.submit_app(
                &mut e,
                format!("a{i}"),
                ResourceRequest::new(1, 1024),
                move |eng, am| {
                    let am2 = am.clone();
                    am.request_container(eng, ResourceRequest::new(1, 1024), move |eng, cont| {
                        am2.release_container(eng, cont.id);
                        am2.finish(eng);
                    });
                },
            );
        }
        e.run();
    });
}

fn bench_kmeans() {
    let pts = gaussian_blobs(20_000, 16, 2.0, 42);
    bench("kmeans/native_20k_k16_1iter", || {
        lloyd(&pts, 16, 1);
    });
    let small = gaussian_blobs(5_000, 8, 2.0, 42);
    bench("kmeans/mapreduce_5k_k8_1iter", || {
        kmeans_mapreduce(&small, 8, 1, 4, 2);
    });
    bench("kmeans/rdd_5k_k8_1iter", || {
        kmeans_rdd(small.clone(), 8, 1, 4);
    });
}

fn bench_rdd() {
    let data: Vec<(u64, u64)> = (0..100_000).map(|i| (i % 512, 1)).collect();
    bench("rdd/reduce_by_key_100k", || {
        let sc = SparkContext::new(8);
        sc.parallelize(data.clone(), 8)
            .reduce_by_key(|a, b| a + b)
            .collect()
            .len();
    });
}

fn main() {
    bench_engine();
    bench_fairlink();
    bench_yarn();
    bench_kmeans();
    bench_rdd();
}
