//! `cargo bench` entry that regenerates the paper's figures in quick mode.
//!
//! This is a plain (non-Criterion) bench target so that
//! `cargo bench --workspace` reproduces every table/figure; run the
//! binaries in `src/bin/` directly for the full-size sweeps.

fn main() {
    // Criterion-style filter arguments are ignored.
    println!("(figures bench target: run the rp-bench binaries for full-size sweeps)");
    let bins = [
        "fig5_startup",
        "fig5_unit_startup",
        "fig6_kmeans",
        "ablation_am_reuse",
        "ablation_shuffle_backend",
        "ablation_polling",
        "ablation_docker",
        "ablation_stage_coupling",
        "ablation_spark_deploy",
        "ablation_speculative",
        "extension_spark_kmeans",
    ];
    for bin in bins {
        println!("\n################ {bin} ################");
        let exe = std::env::current_exe().unwrap();
        // target/<profile>/deps/figures-hash → target/<profile>/<bin>
        let dir = exe.parent().unwrap().parent().unwrap();
        let path = dir.join(bin);
        if !path.exists() {
            println!("(binary {path:?} not built; skipping)");
            continue;
        }
        let status = std::process::Command::new(&path)
            .arg("--quick")
            .status()
            .expect("spawn figure binary");
        if !status.success() {
            println!("({bin} reported shape violations)");
        }
    }
}
