//! Regression attribution between two bench artifacts or Chrome traces.
//!
//! The `trace_diff` binary and `bench_compare` (on a gate failure) both
//! call [`diff_documents`]: parse two JSON documents, sniff whether they
//! are `BENCH_*.json` artifacts or Chrome trace-event arrays, reduce each
//! side to comparable per-phase totals, and attribute the makespan /
//! throughput delta to the phases and critical-path segments that moved.
//!
//! Attribution is direction-aware: every compared quantity is classified
//! as regressed (candidate larger), improved (candidate smaller), new
//! (only in the candidate), or vanished (only in the baseline), and the
//! human rendering leads with the largest movers so "which phase did the
//! regression land in?" is the first line of output, not an exercise for
//! the reader.

use std::collections::BTreeMap;

use rp_sim::json::{self, Value};

/// Deltas smaller than this (seconds for durations, absolute units for
/// counters) are noise, not movement. `{:.6}` artifact formatting means
/// anything under a microsecond is a rounding artifact by construction.
pub const DEFAULT_EPS: f64 = 1e-6;

/// Direction of one compared quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Change {
    Regressed,
    Improved,
    New,
    Vanished,
    Unchanged,
}

impl Change {
    pub fn label(self) -> &'static str {
        match self {
            Change::Regressed => "regressed",
            Change::Improved => "improved",
            Change::New => "new",
            Change::Vanished => "vanished",
            Change::Unchanged => "unchanged",
        }
    }
}

/// One compared quantity: a label plus the value on each side (`None`
/// when the label exists on only one side).
#[derive(Debug, Clone)]
pub struct Entry {
    pub label: String,
    pub base: Option<f64>,
    pub cand: Option<f64>,
}

impl Entry {
    /// Signed movement, treating a missing side as zero (a new span
    /// contributes its whole duration; a vanished one subtracts it).
    pub fn delta(&self) -> f64 {
        self.cand.unwrap_or(0.0) - self.base.unwrap_or(0.0)
    }

    /// Classification is eps-gated across the board: a label present on
    /// only one side but worth 0.0 is layout noise (a phase column that
    /// happens to be empty), not a new or vanished quantity.
    pub fn change(&self, eps: f64) -> Change {
        if self.delta().abs() <= eps {
            Change::Unchanged
        } else {
            match (self.base, self.cand) {
                (None, Some(_)) => Change::New,
                (Some(_), None) => Change::Vanished,
                _ if self.delta() > 0.0 => Change::Regressed,
                _ => Change::Improved,
            }
        }
    }
}

/// One comparison section: a titled list of entries measured in `unit`.
#[derive(Debug, Clone)]
pub struct Section {
    pub title: &'static str,
    pub unit: &'static str,
    pub entries: Vec<Entry>,
}

impl Section {
    fn changed(&self, eps: f64) -> Vec<&Entry> {
        let mut moved: Vec<&Entry> = self
            .entries
            .iter()
            .filter(|e| e.change(eps) != Change::Unchanged)
            .collect();
        moved.sort_by(|a, b| {
            b.delta()
                .abs()
                .partial_cmp(&a.delta().abs())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.label.cmp(&b.label))
        });
        moved
    }
}

/// The full two-sided comparison. `host` sections are informational
/// (machine-dependent timings); everything else is virtual-time and so
/// should be empty of changes between runs of identical code.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// `"artifact"` or `"chrome"`.
    pub kind: &'static str,
    /// Virtual-time sections, in attribution priority order.
    pub sections: Vec<Section>,
    /// Host-side observations (medians, throughput): never part of
    /// [`DiffReport::is_clean`], rendered for context only.
    pub host: Section,
}

impl DiffReport {
    /// True when no virtual-time quantity moved beyond `eps`. Host
    /// timings are excluded — they vary run to run by construction.
    pub fn is_clean(&self, eps: f64) -> bool {
        self.sections
            .iter()
            .all(|s| s.entries.iter().all(|e| e.change(eps) == Change::Unchanged))
    }

    /// The single largest virtual-time mover (by |delta|), if any: the
    /// headline of the attribution. Searches sections in order, so phase
    /// totals outrank critical-path segments outrank counters.
    pub fn top_mover(&self, eps: f64) -> Option<(&'static str, &Entry)> {
        for s in &self.sections {
            if let Some(e) = s.changed(eps).first() {
                return Some((s.title, e));
            }
        }
        None
    }

    /// One-line verdict naming the top mover, e.g.
    /// `phase totals: fault_matrix/compute regressed +120.000000s`.
    pub fn headline(&self, eps: f64) -> String {
        match self.top_mover(eps) {
            Some((title, e)) => format!(
                "{title}: {} {} {:+.6}{}",
                e.label,
                e.change(eps).label(),
                e.delta(),
                self.sections
                    .iter()
                    .find(|s| s.title == title)
                    .map(|s| s.unit)
                    .unwrap_or("")
            ),
            None => "no virtual-time differences".to_string(),
        }
    }

    /// Aligned human rendering: headline first, then every section's
    /// movers sorted by |delta|, then host context.
    pub fn render_table(&self, eps: f64) -> String {
        let mut out = format!("trace_diff ({}): {}\n", self.kind, self.headline(eps));
        for s in &self.sections {
            let moved = s.changed(eps);
            if moved.is_empty() {
                continue;
            }
            out.push_str(&format!("{} ({}):\n", s.title, s.unit));
            for e in moved {
                out.push_str(&format!(
                    "  {:<40} {:>14} -> {:<14} {:+.6} {}\n",
                    e.label,
                    fmt_side(e.base),
                    fmt_side(e.cand),
                    e.delta(),
                    e.change(eps).label()
                ));
            }
        }
        if !self.host.entries.is_empty() {
            out.push_str(&format!(
                "{} ({}, informational):\n",
                self.host.title, self.host.unit
            ));
            for e in &self.host.entries {
                out.push_str(&format!(
                    "  {:<40} {:>14} -> {:<14} {:+.3}\n",
                    e.label,
                    fmt_side(e.base),
                    fmt_side(e.cand),
                    e.delta()
                ));
            }
        }
        out
    }

    /// Machine-readable form of the same attribution.
    pub fn to_json(&self, eps: f64) -> String {
        let mut out = format!(
            "{{\"kind\":\"{}\",\"clean\":{},\"headline\":\"{}\",\"sections\":[",
            self.kind,
            self.is_clean(eps),
            rp_sim::trace::escape_json(&self.headline(eps))
        );
        for (i, s) in self.sections.iter().chain([&self.host]).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"title\":\"{}\",\"unit\":\"{}\",\"entries\":[",
                s.title, s.unit
            ));
            for (j, e) in s.entries.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"label\":\"{}\",\"base\":{},\"cand\":{},\"delta\":{:.6},\"change\":\"{}\"}}",
                    rp_sim::trace::escape_json(&e.label),
                    fmt_json_side(e.base),
                    fmt_json_side(e.cand),
                    e.delta(),
                    e.change(eps).label()
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn fmt_side(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.6}"),
        None => "-".to_string(),
    }
}

fn fmt_json_side(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.6}"),
        None => "null".to_string(),
    }
}

/// Two-sided label -> value accumulator (side 0 = baseline, 1 = candidate).
#[derive(Default)]
struct Pairs(BTreeMap<String, [Option<f64>; 2]>);

impl Pairs {
    fn add(&mut self, side: usize, label: impl Into<String>, v: f64) {
        let slot = &mut self.0.entry(label.into()).or_default()[side];
        *slot = Some(slot.unwrap_or(0.0) + v);
    }

    fn into_section(self, title: &'static str, unit: &'static str) -> Section {
        Section {
            title,
            unit,
            entries: self
                .0
                .into_iter()
                .map(|(label, [base, cand])| Entry { label, base, cand })
                .collect(),
        }
    }
}

/// Parse both documents, sniff their kind, and diff. Errors on malformed
/// JSON or mismatched kinds (an artifact cannot be diffed against a
/// Chrome trace — the reductions are not comparable).
pub fn diff_documents(base: &str, cand: &str) -> Result<DiffReport, String> {
    let b = json::parse(base).map_err(|e| format!("baseline: {e}"))?;
    let c = json::parse(cand).map_err(|e| format!("candidate: {e}"))?;
    match (&b, &c) {
        (Value::Object(_), Value::Object(_)) => diff_artifacts(&b, &c),
        (Value::Array(_), Value::Array(_)) => diff_chrome(&b, &c),
        _ => Err(
            "kind mismatch: one side is a BENCH_*.json artifact (object), \
                  the other a Chrome trace (array)"
                .to_string(),
        ),
    }
}

fn num(v: &Value, path: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("{path}: expected a number"))
}

/// Diff two `BENCH_*.json` artifact documents: makespan, per-case phase
/// totals, critical-path segments, virtual counters, host medians.
pub fn diff_artifacts(base: &Value, cand: &Value) -> Result<DiffReport, String> {
    let mut makespan = Pairs::default();
    let mut phases = Pairs::default();
    let mut critical = Pairs::default();
    let mut counters = Pairs::default();
    let mut host = Pairs::default();
    for (side, doc) in [base, cand].into_iter().enumerate() {
        let virt = doc
            .get("virtual")
            .ok_or_else(|| format!("side {side}: missing `virtual` section"))?;
        if let Some(m) = virt.get("makespan_s") {
            makespan.add(side, "makespan", num(m, "virtual.makespan_s")?);
        }
        if let Some(rows) = virt
            .get("report")
            .and_then(|r| r.get("rows"))
            .and_then(Value::as_array)
        {
            for row in rows {
                let case = row.get("case").and_then(Value::as_str).unwrap_or("?");
                for (k, v) in row.as_object().into_iter().flatten() {
                    if k == "case" || k == "total" {
                        continue;
                    }
                    if let Some(secs) = v.as_f64() {
                        phases.add(side, format!("{case}/{k}"), secs);
                    }
                }
            }
        }
        if let Some(crit) = virt
            .get("report")
            .and_then(|r| r.get("critical"))
            .and_then(Value::as_array)
        {
            for c in crit {
                let case = c.get("case").and_then(Value::as_str).unwrap_or("?");
                for ph in c
                    .get("phases")
                    .and_then(Value::as_array)
                    .into_iter()
                    .flatten()
                {
                    let name = ph.get("phase").and_then(Value::as_str).unwrap_or("?");
                    if let Some(path_s) = ph.get("path").and_then(Value::as_f64) {
                        critical.add(side, format!("{case}/{name}"), path_s);
                    }
                }
            }
        }
        for (k, v) in virt
            .get("counters")
            .and_then(Value::as_object)
            .into_iter()
            .flatten()
        {
            if let Some(n) = v.as_f64() {
                counters.add(side, k.clone(), n);
            }
        }
        for key in [
            "median_ms",
            "p95_ms",
            "parallel_median_ms",
            "events_per_sec",
            "speedup",
        ] {
            if let Some(v) = doc
                .get("host")
                .and_then(|h| h.get(key))
                .and_then(Value::as_f64)
            {
                host.add(side, key, v);
            }
        }
    }
    Ok(DiffReport {
        kind: "artifact",
        sections: vec![
            phases.into_section("phase totals", "s"),
            critical.into_section("critical path", "s"),
            makespan.into_section("makespan", "s"),
            counters.into_section("counters", ""),
        ],
        host: host.into_section("host timings", "ms"),
    })
}

/// Diff two Chrome trace-event arrays. Spans are reconstructed by pairing
/// `ph:"b"` / `ph:"e"` events on their `id` (the export writes the pair
/// adjacently, but pairing by id tolerates any interleaving) and reduced
/// to per-name event counts and total duration — the same aggregation
/// [`rp_sim::trace::Trace::name_totals`] computes engine-side.
pub fn diff_chrome(base: &Value, cand: &Value) -> Result<DiffReport, String> {
    let mut spans = Pairs::default();
    let mut counts = Pairs::default();
    let mut makespan = Pairs::default();
    for (side, doc) in [base, cand].into_iter().enumerate() {
        let events = doc.as_array().unwrap_or(&[]);
        let mut open: BTreeMap<String, (String, f64)> = BTreeMap::new();
        let mut last_ts: f64 = 0.0;
        for ev in events {
            let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("");
            let ts = ev.get("ts").and_then(Value::as_f64).unwrap_or(0.0);
            if matches!(ph, "b" | "e" | "i") {
                last_ts = last_ts.max(ts);
            }
            match ph {
                "b" => {
                    let id = ev
                        .get("id")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string();
                    let name = ev
                        .get("name")
                        .and_then(Value::as_str)
                        .unwrap_or("?")
                        .to_string();
                    open.insert(id, (name, ts));
                }
                "e" => {
                    let id = ev.get("id").and_then(Value::as_str).unwrap_or("");
                    if let Some((name, begin)) = open.remove(id) {
                        spans.add(side, name.clone(), (ts - begin) / 1e6);
                        counts.add(side, name, 1.0);
                    }
                }
                _ => {}
            }
        }
        if !open.is_empty() {
            return Err(format!(
                "side {side}: {} span begin event(s) with no matching end",
                open.len()
            ));
        }
        makespan.add(side, "last_event", last_ts / 1e6);
    }
    Ok(DiffReport {
        kind: "chrome",
        sections: vec![
            spans.into_section("span totals", "s"),
            makespan.into_section("makespan", "s"),
            counts.into_section("span counts", ""),
        ],
        host: Section {
            title: "host timings",
            unit: "ms",
            entries: Vec::new(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ART: &str = r#"{"schema":1,"scenario":"x","virtual":{"makespan_s":10.0,
        "counters":{"a":2,"b":3},
        "report":{"title":"t","rows":[{"case":"c1","compute":6.0,"stage_in":4.0,"total":10.0}],
        "critical":[{"case":"c1","makespan":10.0,
        "phases":[{"phase":"compute","path":6.0,"off_path":0.0,"min_slack":null}]}]}},
        "host":{"reps":3,"median_ms":5.0,"p95_ms":6.0,"min_ms":4.0,"max_ms":7.0}}"#;

    fn perturbed() -> String {
        ART.replace("6.0", "8.5").replace("10.0", "12.5")
    }

    #[test]
    fn self_diff_is_clean() {
        let d = diff_documents(ART, ART).expect("diff");
        assert!(d.is_clean(DEFAULT_EPS));
        assert_eq!(d.headline(DEFAULT_EPS), "no virtual-time differences");
    }

    #[test]
    fn artifact_diff_names_the_moved_phase() {
        let d = diff_documents(ART, &perturbed()).expect("diff");
        assert!(!d.is_clean(DEFAULT_EPS));
        let (section, top) = d.top_mover(DEFAULT_EPS).expect("a mover");
        assert_eq!(section, "phase totals");
        assert_eq!(top.label, "c1/compute");
        assert_eq!(top.change(DEFAULT_EPS), Change::Regressed);
        assert!((top.delta() - 2.5).abs() < 1e-9);
        assert!(d.headline(DEFAULT_EPS).contains("c1/compute"));
        // Host medians are identical here and never count as movement.
        let rendered = d.render_table(DEFAULT_EPS);
        assert!(rendered.contains("regressed"));
    }

    #[test]
    fn new_and_vanished_counters_are_classified() {
        let cand = ART.replace(r#""a":2,"b":3"#, r#""b":3,"c":9"#);
        let d = diff_documents(ART, &cand).expect("diff");
        let counters = d
            .sections
            .iter()
            .find(|s| s.title == "counters")
            .expect("counters section");
        let by_label = |l: &str| {
            counters
                .entries
                .iter()
                .find(|e| e.label == l)
                .expect("entry")
        };
        assert_eq!(by_label("a").change(DEFAULT_EPS), Change::Vanished);
        assert_eq!(by_label("c").change(DEFAULT_EPS), Change::New);
        assert_eq!(by_label("b").change(DEFAULT_EPS), Change::Unchanged);
    }

    #[test]
    fn chrome_diff_pairs_spans_by_id() {
        let base = r#"[{"name":"u","ph":"b","ts":0,"id":"0x1"},
                       {"name":"u","ph":"e","ts":2000000,"id":"0x1"}]"#;
        let cand = r#"[{"name":"u","ph":"b","ts":0,"id":"0x1"},
                       {"name":"u","ph":"e","ts":3000000,"id":"0x1"},
                       {"name":"v","ph":"b","ts":0,"id":"0x2"},
                       {"name":"v","ph":"e","ts":1000000,"id":"0x2"}]"#;
        let d = diff_documents(base, cand).expect("diff");
        assert_eq!(d.kind, "chrome");
        let (section, top) = d.top_mover(DEFAULT_EPS).expect("mover");
        assert_eq!(section, "span totals");
        assert_eq!(top.label, "u");
        assert!((top.delta() - 1.0).abs() < 1e-9);
        let spans = &d.sections[0];
        let v = spans.entries.iter().find(|e| e.label == "v").expect("v");
        assert_eq!(v.change(DEFAULT_EPS), Change::New);
    }

    #[test]
    fn kind_mismatch_and_dangling_span_error() {
        assert!(diff_documents(ART, "[]").is_err());
        let dangling = r#"[{"name":"u","ph":"b","ts":0,"id":"0x1"}]"#;
        assert!(diff_documents(dangling, dangling).is_err());
    }

    #[test]
    fn json_output_reports_clean_flag_and_changes() {
        let d = diff_documents(ART, &perturbed()).expect("diff");
        let doc = json::parse(&d.to_json(DEFAULT_EPS)).expect("valid JSON");
        assert_eq!(doc.get("kind").and_then(Value::as_str), Some("artifact"));
        assert_eq!(doc.get("clean"), Some(&Value::Bool(false)));
        let headline = doc
            .get("headline")
            .and_then(Value::as_str)
            .expect("headline");
        assert!(headline.contains("c1/compute"));
    }
}
