//! Benchmark harness: fixed-seed scenario runners emitting schema-versioned
//! `BENCH_<scenario>.json` artifacts, plus the exact-diff regression gate
//! that `bench_compare` applies against checked-in baselines.
//!
//! Each scenario runs a deterministic simulation under tracing and reduces
//! it to a *virtual* result — a [`RunReport`] (phase breakdown +
//! critical-path attribution), the metrics counters, and a makespan scalar
//! — repeated `reps` times with the self-timed pattern for *host*
//! wall-clock statistics. The virtual part is bit-reproducible, so the
//! gate compares it exactly; host time is hardware-dependent, so it is
//! only bounded by a generous factor.

use std::collections::BTreeMap;
use std::time::Instant;

use rp_analytics::{fig6_session_config, run_rp_kmeans, run_rp_yarn_kmeans, KMeansCalibration};
use rp_pilot::{
    install_faults, install_faults_multi, when_all_done, ComputeUnitDescription, PilotDescription,
    PilotManager, PilotState, Session, SessionConfig, UmScheduler, UnitManager, UnitState,
    WorkSpec,
};
use rp_sim::stats::percentile;
use rp_sim::{
    aggregate_roots, critical_path_run, json, Engine, EngineMode, FaultEvent, FaultKind, FaultPlan,
    MetricsSnapshot, RunReport, SimDuration, SimTime, TelemetrySnapshot,
};

use crate::Variant;

/// Bumped whenever the artifact layout changes; `bench_compare` refuses to
/// diff mismatched schemas.
pub const SCHEMA_VERSION: u32 = 1;

/// The scenarios of the suite, in run order. The `scale_*` family measures
/// raw engine/agent/coordination throughput (events per second, peak live
/// spans) on large plain-pilot bags; `scale_10k` is skipped under
/// `bench_suite --quick`.
pub const SCENARIO_NAMES: [&str; 8] = [
    "fig5_startup",
    "fig5_unit_startup",
    "fig6_kmeans",
    "fault_matrix",
    "pilot_loss",
    "partition_heal",
    "scale_1k",
    "scale_10k",
];

/// `BENCH_<scenario>.json`.
pub fn artifact_file_name(scenario: &str) -> String {
    format!("BENCH_{scenario}.json")
}

/// The deterministic reduction of one scenario run.
pub struct VirtualResult {
    pub report: RunReport,
    pub counters: BTreeMap<String, u64>,
    /// Sum of the per-case critical-path makespans (one scalar that moves
    /// whenever any case's end-to-end virtual time moves).
    pub makespan_s: f64,
    /// Engine flight-recorder snapshots merged across the scenario's
    /// engines, when the recorder was on. Host-side observation only —
    /// deliberately **excluded** from [`VirtualResult::to_json`], which
    /// feeds the exact-diffed `virtual` subtree of the bench artifact.
    pub telemetry: Option<TelemetrySnapshot>,
}

impl VirtualResult {
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"makespan_s\":{:.6},\"counters\":{{", self.makespan_s);
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", rp_sim::trace::escape_json(k)));
        }
        out.push_str(&format!("}},\"report\":{}}}", self.report.to_json()));
        out
    }
}

fn merge_counters(into: &mut BTreeMap<String, u64>, snap: &MetricsSnapshot) {
    for (k, v) in &snap.counters {
        *into.entry(k.clone()).or_insert(0) += v;
    }
}

/// Fold one traced engine into the accumulating virtual result: a phase
/// row, a critical-path summary, and the counters.
fn absorb_run(out: &mut VirtualResult, label: &str, e: &Engine, breakdown_root: &str) {
    out.report
        .push(label, aggregate_roots(&e.trace, breakdown_root));
    let cp = critical_path_run(&e.trace).expect("completed roots");
    out.makespan_s += cp.makespan_secs();
    out.report.push_critical(label, &cp);
    merge_counters(&mut out.counters, &e.metrics.snapshot());
    if e.telemetry.is_enabled() {
        let snap = e.telemetry_snapshot();
        match &mut out.telemetry {
            Some(t) => t.merge(&snap),
            None => out.telemetry = Some(snap),
        }
    }
}

fn new_result(title: &str) -> VirtualResult {
    VirtualResult {
        report: RunReport::new(title),
        counters: BTreeMap::new(),
        makespan_s: 0.0,
        telemetry: None,
    }
}

/// Fig. 5 (main): pilot startup across the paper's five machine × variant
/// cases, one fixed-seed run each.
pub fn run_fig5_startup() -> VirtualResult {
    let mut out = new_result("fig5_startup: pilot startup, seed 1000, 1 node");
    let cases: [(&str, Variant); 5] = [
        ("xsede.stampede", Variant::Rp),
        ("xsede.stampede", Variant::RpYarnModeI),
        ("xsede.wrangler", Variant::Rp),
        ("xsede.wrangler", Variant::RpYarnModeI),
        ("xsede.wrangler", Variant::RpYarnModeII),
    ];
    for (machine, variant) in cases {
        let mut e = Engine::with_trace(1000);
        let session = Session::new(SessionConfig::default());
        let pm = PilotManager::new(&session);
        let pilot = pm
            .submit(
                &mut e,
                PilotDescription::new(machine, 1, SimDuration::from_secs(3600))
                    .with_access(variant.access()),
            )
            .expect("pilot submits");
        while pilot.state() != PilotState::Active {
            assert!(e.step(), "engine drained before pilot became active");
        }
        pm.cancel(&mut e, &pilot);
        e.run();
        absorb_run(
            &mut out,
            &format!("{machine} {}", variant.label()),
            &e,
            "pilot.run",
        );
    }
    out
}

/// Fig. 5 (inset): Compute-Unit startup on Stampede, plain vs Mode I.
pub fn run_fig5_unit_startup() -> VirtualResult {
    let mut out = new_result("fig5_unit_startup: CU startup on stampede, seed 1000");
    for variant in [Variant::Rp, Variant::RpYarnModeI] {
        let mut e = Engine::with_trace(1000);
        let session = Session::new(SessionConfig::default());
        let pm = PilotManager::new(&session);
        let pilot = pm
            .submit(
                &mut e,
                PilotDescription::new("xsede.stampede", 1, SimDuration::from_secs(3600))
                    .with_access(variant.access()),
            )
            .expect("pilot submits");
        while pilot.state() != PilotState::Active {
            assert!(e.step(), "engine drained before pilot became active");
        }
        let mut um = UnitManager::new(&session, UmScheduler::Direct);
        um.add_pilot(&pilot);
        let units = um.submit_units(
            &mut e,
            vec![ComputeUnitDescription::new(
                "probe",
                1,
                WorkSpec::Sleep(SimDuration::from_secs(10)),
            )],
        );
        while !units[0].state().is_final() {
            assert!(e.step(), "engine drained before unit finished");
        }
        assert_eq!(units[0].state(), UnitState::Done);
        pm.cancel(&mut e, &pilot);
        e.run();
        absorb_run(&mut out, variant.label(), &e, "unit.run");
    }
    out
}

/// Fig. 6: one representative K-means cell (10k points, 8 tasks, Stampede)
/// for both systems.
pub fn run_fig6_kmeans() -> VirtualResult {
    let mut out = new_result("fig6_kmeans: 10k pts / 5k clusters, 8 tasks, stampede");
    let cal = KMeansCalibration::default();
    let scenario = rp_analytics::SCENARIOS[0];
    let seed = 10_000 + 8;
    let mut e = Engine::with_trace(seed);
    let session = Session::new(fig6_session_config());
    run_rp_kmeans(&mut e, &session, "xsede.stampede", 8, scenario, &cal);
    absorb_run(&mut out, "RADICAL-Pilot", &e, "unit.run");
    let mut e = Engine::with_trace(seed + 1);
    let session = Session::new(fig6_session_config());
    run_rp_yarn_kmeans(&mut e, &session, "xsede.stampede", 8, scenario, &cal);
    absorb_run(&mut out, "RP-YARN", &e, "unit.run");
    out
}

/// Parameters of the fault-matrix scenario (exposed so tests can perturb
/// one and assert the regression gate trips).
#[derive(Debug, Clone, Copy)]
pub struct FaultMatrixParams {
    pub seed: u64,
    pub units: usize,
    pub sleep_s: u64,
    pub intensity: usize,
}

impl Default for FaultMatrixParams {
    fn default() -> Self {
        FaultMatrixParams {
            seed: 1,
            units: 12,
            sleep_s: 600,
            intensity: 6,
        }
    }
}

/// Fault matrix: a 4-node sleep workload under a generated fault plan;
/// recovery must still complete every unit.
pub fn run_fault_matrix(params: FaultMatrixParams) -> VirtualResult {
    let mut out = new_result(&format!(
        "fault_matrix: {} sleep units, seed {}, intensity {}",
        params.units, params.seed, params.intensity
    ));
    let mut e = Engine::with_trace(params.seed);
    let session = Session::new(SessionConfig::test_profile());
    let pm = PilotManager::new(&session);
    let pilot = pm
        .submit(
            &mut e,
            PilotDescription::new("xsede.stampede", 4, SimDuration::from_secs(14_400)),
        )
        .expect("pilot submits");
    let plan = FaultPlan::generate(
        params.seed,
        SimDuration::from_secs(1800),
        4,
        params.intensity,
    );
    let injector = install_faults(&mut e, &plan, &pilot);
    let mut um = UnitManager::new(&session, UmScheduler::Direct);
    um.add_pilot(&pilot);
    let units = um.submit_units(
        &mut e,
        (0..params.units)
            .map(|i| {
                ComputeUnitDescription::new(
                    format!("u{i}"),
                    1,
                    WorkSpec::Sleep(SimDuration::from_secs(params.sleep_s)),
                )
            })
            .collect(),
    );
    while units.iter().any(|u| !u.state().is_final()) {
        assert!(e.step(), "simulation stalled with live units");
    }
    pm.cancel(&mut e, &pilot);
    e.run();
    assert!(
        units.iter().all(|u| u.state() == UnitState::Done),
        "under-budget fault plan must not lose units"
    );
    out.counters
        .insert("bench.faults_injected".into(), injector.injected() as u64);
    absorb_run(&mut out, "stampede 4-node sleep", &e, "unit.run");
    out
}

/// Parameters of the pilot-loss scenario.
#[derive(Debug, Clone, Copy)]
pub struct PilotLossParams {
    pub seed: u64,
    pub units: usize,
    pub sleep_s: u64,
    /// When the first pilot's batch job is killed (kill variant only).
    pub kill_at_s: u64,
}

impl Default for PilotLossParams {
    fn default() -> Self {
        PilotLossParams {
            seed: 1,
            units: 16,
            sleep_s: 300,
            kill_at_s: 180,
        }
    }
}

/// One pilot-loss case: 2 three-node pilots with cross-pilot failover,
/// optionally killing the first pilot mid-run. Returns the traced engine
/// and the workload makespan.
fn pilot_loss_case(params: PilotLossParams, kill: bool) -> (Engine, f64, u64) {
    let mut e = Engine::with_trace(params.seed);
    let session = Session::new(SessionConfig::test_profile());
    let pm = PilotManager::new(&session);
    let pilots: Vec<_> = (0..2)
        .map(|_| {
            pm.submit(
                &mut e,
                PilotDescription::new("xsede.stampede", 3, SimDuration::from_secs(14_400)),
            )
            .expect("pilot submits")
        })
        .collect();
    let mut um = UnitManager::new(&session, UmScheduler::RoundRobin);
    for p in &pilots {
        um.add_pilot(p);
    }
    um.enable_failover(&mut e);
    if kill {
        let victim = pilots[0].clone();
        e.schedule_in(SimDuration::from_secs(params.kill_at_s), move |eng| {
            victim.kill(eng)
        });
    }
    let units = um.submit_units(
        &mut e,
        (0..params.units)
            .map(|i| {
                ComputeUnitDescription::new(
                    format!("u{i}"),
                    1,
                    WorkSpec::Sleep(SimDuration::from_secs(params.sleep_s)),
                )
            })
            .collect(),
    );
    while units.iter().any(|u| !u.state().is_final()) {
        assert!(e.step(), "simulation stalled with live units");
    }
    assert!(
        units.iter().all(|u| u.state() == UnitState::Done),
        "every unit must fail over to the surviving pilot"
    );
    if kill {
        assert_eq!(pilots[0].state(), PilotState::Failed);
        assert!(
            units.iter().all(|u| u.pilot() == Some(pilots[1].id())),
            "survivors must all land on the surviving pilot"
        );
        assert!(um.rebinds() > 0, "the kill must force re-binds");
    }
    for p in &pilots {
        if !p.state().is_final() {
            pm.cancel(&mut e, p);
        }
    }
    e.run();
    let makespan = units
        .iter()
        .map(|u| u.times().done.expect("unit finished"))
        .max()
        .unwrap()
        .as_secs_f64();
    (e, makespan, um.rebinds())
}

/// Pilot loss: the same 2-pilot workload with and without a mid-run
/// pilot kill. The kill variant must still complete every unit (on the
/// survivor) and its makespan overhead is the price of failover.
pub fn run_pilot_loss(params: PilotLossParams) -> VirtualResult {
    let mut out = new_result(&format!(
        "pilot_loss: {} sleep units on 2 pilots, kill at {}s, seed {}",
        params.units, params.kill_at_s, params.seed
    ));
    let (e, baseline_s, _) = pilot_loss_case(params, false);
    absorb_run(&mut out, "2 pilots, no loss", &e, "unit.run");
    let (e, kill_s, rebinds) = pilot_loss_case(params, true);
    absorb_run(&mut out, "pilot 0 killed mid-run", &e, "unit.run");
    assert!(
        kill_s > baseline_s,
        "failover must cost makespan ({kill_s} vs {baseline_s})"
    );
    out.counters
        .insert("bench.pilot_loss_rebinds".into(), rebinds);
    out.counters.insert(
        "bench.failover_overhead_ms".into(),
        ((kill_s - baseline_s) * 1e3).round() as u64,
    );
    out
}

/// Parameters of the partition-heal scenario.
#[derive(Debug, Clone, Copy)]
pub struct PartitionHealParams {
    pub seed: u64,
    pub units: usize,
    /// When pilot 0 is partitioned from the coordination store.
    pub partition_at_s: u64,
    /// How long the partition lasts before it heals.
    pub partition_s: u64,
    /// Lease duration granted to agents.
    pub lease_s: u64,
    /// Re-bind grace on top of lease expiry (must exceed the heartbeat
    /// period so a live agent always self-fences before re-binding).
    pub grace_s: u64,
}

impl Default for PartitionHealParams {
    fn default() -> Self {
        PartitionHealParams {
            seed: 1,
            units: 16,
            partition_at_s: 50,
            partition_s: 300,
            lease_s: 60,
            grace_s: 30,
        }
    }
}

/// One partition-heal case: 2 three-node pilots under lease-based
/// ownership, optionally partitioning pilot 0 from the coordination store
/// mid-run. Returns the traced engine, the workload makespan, the re-bind
/// count and the stale-epoch rejection count.
fn partition_heal_case(params: PartitionHealParams, partition: bool) -> (Engine, f64, u64, u64) {
    let mut e = Engine::with_trace(params.seed);
    let session = Session::new(SessionConfig::test_profile());
    let pm = PilotManager::new(&session);
    let pilots: Vec<_> = (0..2)
        .map(|_| {
            pm.submit(
                &mut e,
                PilotDescription::new("xsede.stampede", 3, SimDuration::from_secs(14_400)),
            )
            .expect("pilot submits")
        })
        .collect();
    let mut um = UnitManager::new(&session, UmScheduler::RoundRobin);
    for p in &pilots {
        um.add_pilot(p);
    }
    um.enable_leases(
        &mut e,
        SimDuration::from_secs(params.lease_s),
        SimDuration::from_secs(params.grace_s),
    );
    let injector = if partition {
        // Asymmetric split-brain: the agent keeps receiving batches but
        // its renewals and completions are held, so its lease lapses, it
        // self-fences, and its held writes are rejected post-heal at a
        // stale fencing epoch. `partition_at_s` must be past agent
        // bootstrap (Active by ~47 s on the test profile) or the event is
        // dropped.
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at: SimTime::from_secs_f64(params.partition_at_s as f64),
                kind: FaultKind::Partition {
                    pilot: 0,
                    duration: SimDuration::from_secs(params.partition_s),
                    symmetric: false,
                },
            }],
        };
        Some(install_faults_multi(&mut e, &plan, &pilots))
    } else {
        None
    };
    // Staggered short sleeps: the first wave completes inside the
    // partition-to-fence window so its completions are held.
    let units = um.submit_units(
        &mut e,
        (0..params.units)
            .map(|i| {
                ComputeUnitDescription::new(
                    format!("u{i}"),
                    1,
                    WorkSpec::Sleep(SimDuration::from_secs(15 + (i as u64 % 4) * 10)),
                )
            })
            .collect(),
    );
    while units.iter().any(|u| !u.state().is_final()) {
        assert!(e.step(), "simulation stalled with live units");
    }
    for p in &pilots {
        if !p.state().is_final() {
            pm.cancel(&mut e, p);
        }
    }
    // Drain past the heal: the zombie's held completions must be
    // delivered (and fenced), not left pending.
    e.run();
    if let Some(injector) = injector {
        assert_eq!(injector.injected(), 1, "the partition must inject");
    }
    assert!(
        units.iter().all(|u| u.state() == UnitState::Done),
        "every unit must survive the partition"
    );
    let makespan = units
        .iter()
        .map(|u| u.times().done.expect("unit finished"))
        .max()
        .unwrap()
        .as_secs_f64();
    let fence_rejections = session.store().fence_rejections();
    (e, makespan, um.rebinds(), fence_rejections)
}

/// Partition heal: the same 2-pilot lease-owned workload with and without
/// an asymmetric mid-run partition of pilot 0. The partitioned variant
/// must re-bind the victim's units, reject every stale-epoch write from
/// the healed zombie, and still complete every unit; its makespan
/// overhead is the price of split-brain recovery.
pub fn run_partition_heal(params: PartitionHealParams) -> VirtualResult {
    let mut out = new_result(&format!(
        "partition_heal: {} sleep units on 2 lease-owned pilots, partition at {}s for {}s, seed {}",
        params.units, params.partition_at_s, params.partition_s, params.seed
    ));
    let (e, baseline_s, baseline_rebinds, baseline_fences) = partition_heal_case(params, false);
    absorb_run(&mut out, "2 pilots, no partition", &e, "unit.run");
    assert_eq!(baseline_rebinds, 0, "quiet leases must not re-bind");
    assert_eq!(baseline_fences, 0, "quiet leases must not fence");
    let (e, healed_s, rebinds, fence_rejections) = partition_heal_case(params, true);
    absorb_run(&mut out, "pilot 0 partitioned mid-run", &e, "unit.run");
    assert!(rebinds > 0, "the partition must force re-binds");
    assert!(
        fence_rejections > 0,
        "the healed zombie must be fenced at a stale epoch"
    );
    assert!(
        healed_s > baseline_s,
        "split-brain recovery must cost makespan ({healed_s} vs {baseline_s})"
    );
    out.counters
        .insert("bench.partition_rebinds".into(), rebinds);
    out.counters
        .insert("bench.fence_rejections".into(), fence_rejections);
    out.counters.insert(
        "bench.partition_overhead_ms".into(),
        ((healed_s - baseline_s) * 1e3).round() as u64,
    );
    out
}

/// Parameters of the scale scenario family.
#[derive(Debug, Clone, Copy)]
pub struct ScaleParams {
    pub seed: u64,
    pub units: usize,
    pub nodes: u32,
}

impl ScaleParams {
    pub fn scale_1k() -> Self {
        ScaleParams {
            seed: 7,
            units: 1_000,
            nodes: 16,
        }
    }

    pub fn scale_10k() -> Self {
        ScaleParams {
            seed: 7,
            units: 10_000,
            nodes: 32,
        }
    }
}

/// Scale: a large bag of one-core sleep units through a plain pilot,
/// exercising the slab event queue, the dense agent slots, the batched
/// coordination store and the chunked trace sink at volume. Beyond the
/// usual phase/critical-path reduction, the virtual counters pin the
/// event count, peak live (unended) spans and the event-slab high-water
/// mark, so a structural regression (span leak, event-queue growth) trips
/// the exact-diff gate even if virtual time is unchanged.
pub fn run_scale(params: ScaleParams) -> VirtualResult {
    let mut out = new_result(&format!(
        "scale: {} one-core sleep units on a plain {}-node pilot, seed {}",
        params.units, params.nodes, params.seed
    ));
    let mut e = Engine::with_trace(params.seed);
    let session = Session::new(SessionConfig::test_profile());
    let pm = PilotManager::new(&session);
    let pilot = pm
        .submit(
            &mut e,
            PilotDescription::new(
                "xsede.stampede",
                params.nodes,
                SimDuration::from_secs(14_400),
            ),
        )
        .expect("pilot submits");
    let mut um = UnitManager::new(&session, UmScheduler::Direct);
    um.add_pilot(&pilot);
    let units = um.submit_units(
        &mut e,
        (0..params.units)
            .map(|i| {
                ComputeUnitDescription::new(
                    format!("u{i}"),
                    1,
                    WorkSpec::Sleep(SimDuration::from_secs(60 + (i as u64 % 13) * 15)),
                )
            })
            .collect(),
    );
    // Event-driven completion: polling the unit vector per step would
    // itself be O(units × events) and dominate the measurement.
    let sess = session.clone();
    let p = pilot.clone();
    when_all_done(&mut e, &units, move |eng| {
        PilotManager::new(&sess).cancel(eng, &p);
    });
    e.run();
    assert!(
        units.iter().all(|u| u.state() == UnitState::Done),
        "scale run must complete every unit"
    );
    out.counters
        .insert("scale.units".into(), params.units as u64);
    out.counters
        .insert("scale.events_executed".into(), e.events_executed());
    out.counters.insert(
        "scale.peak_live_spans".into(),
        e.trace.peak_live_spans() as u64,
    );
    out.counters
        .insert("scale.event_slab_slots".into(), e.slab_len() as u64);
    absorb_run(
        &mut out,
        &format!("{} sleep units", params.units),
        &e,
        "unit.run",
    );
    out
}

/// Run the named scenario once.
pub fn run_scenario(name: &str) -> VirtualResult {
    match name {
        "fig5_startup" => run_fig5_startup(),
        "fig5_unit_startup" => run_fig5_unit_startup(),
        "fig6_kmeans" => run_fig6_kmeans(),
        "fault_matrix" => run_fault_matrix(FaultMatrixParams::default()),
        "pilot_loss" => run_pilot_loss(PilotLossParams::default()),
        "partition_heal" => run_partition_heal(PartitionHealParams::default()),
        "scale_1k" => run_scale(ScaleParams::scale_1k()),
        "scale_10k" => run_scale(ScaleParams::scale_10k()),
        other => panic!("unknown scenario {other:?} (expected one of {SCENARIO_NAMES:?})"),
    }
}

/// One emitted benchmark artifact.
pub struct BenchArtifact {
    pub scenario: String,
    pub reps: u64,
    /// JSON of the (rep-invariant) virtual result.
    pub virtual_json: String,
    /// Host wall-clock per repetition, milliseconds.
    pub host_ms: Vec<f64>,
    /// Virtual events executed per repetition (rep-invariant), when the
    /// scenario reports a `scale.events_executed` counter. Turns the host
    /// median into an events-per-second throughput figure.
    pub virtual_events: Option<u64>,
    /// Host wall-clock per repetition under `EngineMode::Parallel`, when
    /// the parallel timing pass ran (empty otherwise). The pass asserts
    /// the parallel virtual result is bit-identical to the serial one
    /// before recording any timing.
    pub parallel_host_ms: Vec<f64>,
    /// Worker count the parallel pass ran with (`RP_THREADS` or 4).
    pub parallel_threads: Option<usize>,
    /// Flight-recorder snapshot of the first serial repetition (merged
    /// over the scenario's engines). Host section only.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Flight-recorder snapshot of the first parallel repetition, when
    /// the parallel pass ran — the one whose `par`/stall counters say
    /// how the PDES machinery actually behaved.
    pub parallel_telemetry: Option<TelemetrySnapshot>,
    /// Markdown rendering of the report (for PR descriptions).
    pub markdown: String,
}

impl BenchArtifact {
    pub fn median_ms(&self) -> f64 {
        percentile(&self.host_ms, 50.0)
    }

    /// Virtual events divided by the median host wall-clock, when the
    /// scenario reports an event count. Host-dependent, so it lives in the
    /// artifact's `host` section (informational, not exact-diffed).
    pub fn events_per_sec(&self) -> Option<f64> {
        self.virtual_events
            .map(|n| n as f64 / (self.median_ms() / 1e3).max(1e-9))
    }

    /// Median of the parallel-mode repetitions, when the pass ran.
    pub fn parallel_median_ms(&self) -> Option<f64> {
        if self.parallel_host_ms.is_empty() {
            None
        } else {
            Some(percentile(&self.parallel_host_ms, 50.0))
        }
    }

    /// Serial median divided by parallel median: the host-time speedup of
    /// `EngineMode::Parallel`. Like every `host.*` field this depends on
    /// the machine (a single-core host reports ~1.0 or below); it is
    /// recorded, never exact-diffed.
    pub fn speedup(&self) -> Option<f64> {
        self.parallel_median_ms()
            .map(|p| self.median_ms() / p.max(1e-9))
    }

    /// The flight-recorder snapshot whose parallel/stall counters are
    /// authoritative for this artifact: the parallel pass when it ran
    /// (the serial pass never batches), the serial one otherwise.
    pub fn primary_telemetry(&self) -> Option<&TelemetrySnapshot> {
        self.parallel_telemetry.as_ref().or(self.telemetry.as_ref())
    }

    /// The full schema-versioned artifact document.
    pub fn to_json(&self) -> String {
        let mut throughput = self
            .events_per_sec()
            .map(|eps| format!(",\"events_per_sec\":{eps:.1}"))
            .unwrap_or_default();
        if let (Some(threads), Some(par_ms), Some(speedup)) = (
            self.parallel_threads,
            self.parallel_median_ms(),
            self.speedup(),
        ) {
            throughput.push_str(&format!(
                ",\"parallel_threads\":{threads},\"parallel_median_ms\":{par_ms:.3},\
                 \"speedup\":{speedup:.3}"
            ));
        }
        // Engine flight-recorder output: parallel/stall counters at the
        // top of `host` (grep-able), full schema-v1 snapshots nested.
        // Everything here is host-side observation — the regression gate
        // never exact-diffs the `host` section.
        if let Some(t) = self.primary_telemetry() {
            throughput.push_str(&format!(
                ",\"par_batches\":{},\"par_prepared\":{},\
                 \"stalls_attempted\":{},\"stalls_empty\":{},\
                 \"stalls_clamped\":{},\"stalls_extended\":{}",
                t.par_batches,
                t.par_prepared,
                t.batches_attempted,
                t.empty_batches,
                t.horizon_clamped,
                t.horizon_extended,
            ));
        }
        if let Some(t) = &self.telemetry {
            throughput.push_str(&format!(",\"telemetry\":{}", t.to_json()));
        }
        if let Some(t) = &self.parallel_telemetry {
            throughput.push_str(&format!(",\"parallel_telemetry\":{}", t.to_json()));
        }
        format!(
            "{{\"schema\":{SCHEMA_VERSION},\"scenario\":\"{}\",\"virtual\":{},\
             \"host\":{{\"reps\":{},\"median_ms\":{:.3},\"p95_ms\":{:.3},\"min_ms\":{:.3},\"max_ms\":{:.3}{throughput}}}}}",
            rp_sim::trace::escape_json(&self.scenario),
            self.virtual_json,
            self.reps,
            self.median_ms(),
            percentile(&self.host_ms, 95.0),
            self.host_ms.iter().cloned().fold(f64::INFINITY, f64::min),
            self.host_ms.iter().cloned().fold(0.0_f64, f64::max),
        )
    }
}

/// Time `run` over `reps` repetitions. The virtual result must be
/// bit-identical across repetitions (the sim is deterministic); the host
/// clock is the only thing allowed to vary.
pub fn bench_with(scenario: &str, reps: u64, run: impl Fn() -> VirtualResult) -> BenchArtifact {
    assert!(reps >= 1);
    let mut host_ms = Vec::with_capacity(reps as usize);
    let mut virtual_json: Option<String> = None;
    let mut virtual_events = None;
    let mut telemetry: Option<TelemetrySnapshot> = None;
    let mut markdown = String::new();
    // Benchmarks always fly with the recorder on: its snapshot is what
    // the artifact's host.telemetry section and trace_diff attribution
    // are built from, and the telemetry differential tier guarantees it
    // cannot move the virtual result.
    Engine::set_default_telemetry(Some(true));
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = run();
        host_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let vj = v.to_json();
        match &virtual_json {
            None => {
                let mut report = v.report.clone();
                if let Some(t) = &v.telemetry {
                    report.push_host_note(t.summary_line());
                }
                markdown = report.to_markdown();
                virtual_events = v.counters.get("scale.events_executed").copied();
                telemetry = v.telemetry;
                virtual_json = Some(vj);
            }
            Some(prev) => assert_eq!(
                prev, &vj,
                "{scenario}: virtual result drifted between repetitions"
            ),
        }
    }
    Engine::set_default_telemetry(None);
    BenchArtifact {
        scenario: scenario.to_string(),
        reps,
        virtual_json: virtual_json.unwrap(),
        host_ms,
        virtual_events,
        parallel_host_ms: Vec::new(),
        parallel_threads: None,
        telemetry,
        parallel_telemetry: None,
        markdown,
    }
}

/// Worker count for the parallel timing pass: `RP_THREADS` (any integer
/// ≥ 1) or 4. Deliberately never `available_parallelism()` — only the
/// timings themselves may depend on the host, not the configuration the
/// artifact records.
pub fn parallel_pass_threads() -> usize {
    std::env::var("RP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or(4)
}

/// Time `run` under serial mode, then repeat it under
/// `EngineMode::Parallel` — asserting the parallel virtual result is
/// bit-identical to the serial one — and record both timings.
pub fn bench_with_parallel(
    scenario: &str,
    reps: u64,
    run: impl Fn() -> VirtualResult,
) -> BenchArtifact {
    let mut art = bench_with(scenario, reps, &run);
    let threads = parallel_pass_threads();
    Engine::set_default_mode(Some(EngineMode::parallel(threads)));
    Engine::set_default_telemetry(Some(true));
    let mut parallel_host_ms = Vec::with_capacity(reps as usize);
    let mut parallel_telemetry: Option<TelemetrySnapshot> = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = run();
        parallel_host_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(
            v.to_json(),
            art.virtual_json,
            "{scenario}: parallel({threads}) virtual result diverged from serial"
        );
        if parallel_telemetry.is_none() {
            parallel_telemetry = v.telemetry;
        }
    }
    Engine::set_default_telemetry(None);
    Engine::set_default_mode(None);
    art.parallel_host_ms = parallel_host_ms;
    art.parallel_threads = Some(threads);
    art.parallel_telemetry = parallel_telemetry;
    art
}

/// Run + time the named scenario, serial then parallel.
pub fn bench_scenario(name: &str, reps: u64) -> BenchArtifact {
    bench_with_parallel(name, reps, || run_scenario(name))
}

/// Absolute host-time allowance on top of the factor, so sub-millisecond
/// baselines don't flake.
pub const HOST_SLACK_MS: f64 = 250.0;

/// Diff a candidate artifact against a baseline. The `schema`, `scenario`
/// and entire `virtual` subtree must match *exactly* (the sim is
/// deterministic); the candidate's host median may not exceed
/// `baseline × host_factor + HOST_SLACK_MS`. Returns every difference
/// found, so a drift report names all moved fields at once.
pub fn compare_artifacts(
    baseline: &str,
    candidate: &str,
    host_factor: f64,
) -> Result<(), Vec<String>> {
    let b = json::parse(baseline).map_err(|e| vec![format!("baseline does not parse: {e}")])?;
    let c = json::parse(candidate).map_err(|e| vec![format!("candidate does not parse: {e}")])?;
    let mut errs = Vec::new();
    for key in ["schema", "scenario"] {
        match (b.get(key), c.get(key)) {
            (Some(x), Some(y)) if x == y => {}
            (x, y) => errs.push(format!(
                "{key}: baseline {} != candidate {}",
                brief_opt(x),
                brief_opt(y)
            )),
        }
    }
    match (b.get("virtual"), c.get("virtual")) {
        (Some(vb), Some(vc)) => diff_values("virtual", vb, vc, &mut errs),
        (x, y) => errs.push(format!(
            "virtual: baseline {} / candidate {}",
            brief_opt(x),
            brief_opt(y)
        )),
    }
    let median = |v: &json::Value| {
        v.get("host")
            .and_then(|h| h.get("median_ms"))
            .and_then(json::Value::as_f64)
    };
    match (median(&b), median(&c)) {
        (Some(bm), Some(cm)) => {
            let limit = bm * host_factor + HOST_SLACK_MS;
            if cm > limit {
                errs.push(format!(
                    "host.median_ms: {cm:.1} exceeds limit {limit:.1} \
                     (baseline {bm:.1} × {host_factor} + {HOST_SLACK_MS})"
                ));
            }
        }
        (x, y) => errs.push(format!(
            "host.median_ms missing (baseline {x:?}, candidate {y:?})"
        )),
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

/// Recursive exact diff of two JSON values, reporting dotted paths.
fn diff_values(path: &str, a: &json::Value, b: &json::Value, out: &mut Vec<String>) {
    use json::Value;
    match (a, b) {
        (Value::Object(fa), Value::Object(fb)) => {
            for (k, va) in fa {
                match b.get(k) {
                    Some(vb) => diff_values(&format!("{path}.{k}"), va, vb, out),
                    None => out.push(format!("{path}.{k}: missing in candidate")),
                }
            }
            for (k, _) in fb {
                if a.get(k).is_none() {
                    out.push(format!("{path}.{k}: unexpected in candidate"));
                }
            }
        }
        (Value::Array(xa), Value::Array(xb)) => {
            if xa.len() != xb.len() {
                out.push(format!(
                    "{path}: length {} != {} in candidate",
                    xa.len(),
                    xb.len()
                ));
            }
            for (i, (va, vb)) in xa.iter().zip(xb).enumerate() {
                diff_values(&format!("{path}[{i}]"), va, vb, out);
            }
        }
        _ if a == b => {}
        _ => out.push(format!("{path}: expected {}, got {}", brief(a), brief(b))),
    }
}

fn brief(v: &json::Value) -> String {
    use json::Value;
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::Number(n) => format!("{n}"),
        Value::String(s) => format!("{s:?}"),
        Value::Array(items) => format!("[{} items]", items.len()),
        Value::Object(fields) => format!("{{{} fields}}", fields.len()),
    }
}

fn brief_opt(v: Option<&json::Value>) -> String {
    v.map(brief).unwrap_or_else(|| "<absent>".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> FaultMatrixParams {
        FaultMatrixParams {
            seed: 3,
            units: 4,
            sleep_s: 300,
            intensity: 2,
        }
    }

    #[test]
    fn artifact_has_schema_and_parses() {
        let art = bench_with("fault_matrix", 2, || run_fault_matrix(small_params()));
        let doc = art.to_json();
        let v = json::parse(&doc).expect("artifact parses");
        assert_eq!(v.get("schema").and_then(json::Value::as_f64), Some(1.0));
        assert_eq!(
            v.get("scenario").and_then(json::Value::as_str),
            Some("fault_matrix")
        );
        let virt = v.get("virtual").expect("virtual section");
        assert!(
            virt.get("makespan_s")
                .and_then(json::Value::as_f64)
                .unwrap()
                > 0.0
        );
        assert!(virt
            .get("counters")
            .and_then(json::Value::as_object)
            .is_some());
        let report = virt.get("report").expect("report");
        assert!(!report
            .get("critical")
            .and_then(|c| c.as_array())
            .unwrap()
            .is_empty());
        let host = v.get("host").expect("host section");
        assert_eq!(host.get("reps").and_then(json::Value::as_f64), Some(2.0));
        assert!(host
            .get("median_ms")
            .and_then(json::Value::as_f64)
            .is_some());
        assert!(art.markdown.contains("| case |"));
    }

    #[test]
    fn parallel_pass_records_speedup_fields_and_identical_virtual() {
        let art = bench_with_parallel("fault_matrix", 1, || run_fault_matrix(small_params()));
        assert_eq!(art.parallel_host_ms.len(), 1);
        assert!(art.parallel_threads.is_some());
        assert!(art.speedup().unwrap() > 0.0);
        let doc = art.to_json();
        let v = json::parse(&doc).expect("artifact parses");
        let host = v.get("host").expect("host section");
        assert!(host
            .get("parallel_median_ms")
            .and_then(json::Value::as_f64)
            .is_some());
        assert!(host.get("speedup").and_then(json::Value::as_f64).is_some());
        assert!(host
            .get("parallel_threads")
            .and_then(json::Value::as_f64)
            .is_some());
        // The serial-only path must not emit the fields at all.
        let serial = bench_with("fault_matrix", 1, || run_fault_matrix(small_params()));
        assert!(!serial.to_json().contains("parallel_median_ms"));
        // The parallel pass changed only host fields: both artifacts carry
        // the identical virtual subtree.
        assert_eq!(serial.virtual_json, art.virtual_json);
    }

    #[test]
    fn gate_accepts_identical_run_and_trips_on_perturbed_parameter() {
        let baseline = bench_with("fault_matrix", 1, || run_fault_matrix(small_params()));
        // Same parameters, fresh run: virtual part is bit-identical.
        let same = bench_with("fault_matrix", 1, || run_fault_matrix(small_params()));
        compare_artifacts(&baseline.to_json(), &same.to_json(), 1000.0)
            .expect("identical virtual results must pass the gate");
        // Perturb one scenario parameter: longer sleeps move phase totals
        // and the critical-path length, so the gate must trip.
        let perturbed = bench_with("fault_matrix", 1, || {
            run_fault_matrix(FaultMatrixParams {
                sleep_s: 330,
                ..small_params()
            })
        });
        let errs = compare_artifacts(&baseline.to_json(), &perturbed.to_json(), 1000.0)
            .expect_err("virtual drift must fail the gate");
        assert!(
            errs.iter().any(|e| e.starts_with("virtual.")),
            "drift must be attributed to the virtual subtree: {errs:?}"
        );
        assert!(
            errs.iter()
                .any(|e| e.contains("makespan_s") || e.contains("report")),
            "{errs:?}"
        );
    }

    #[test]
    fn gate_trips_on_host_regression() {
        let art = bench_with("fault_matrix", 1, || run_fault_matrix(small_params()));
        let baseline = art.to_json();
        // A candidate identical except for a pathological host median.
        let candidate = {
            let median = art.median_ms();
            baseline.replace(
                &format!("\"median_ms\":{median:.3}"),
                &format!("\"median_ms\":{:.3}", median * 10.0 + 10_000.0),
            )
        };
        assert_ne!(baseline, candidate);
        let errs = compare_artifacts(&baseline, &candidate, 4.0)
            .expect_err("host regression must fail the gate");
        assert!(
            errs.iter().any(|e| e.contains("host.median_ms")),
            "{errs:?}"
        );
    }

    #[test]
    fn compare_rejects_malformed_and_mismatched_documents() {
        assert!(compare_artifacts("not json", "{}", 4.0).is_err());
        let a =
            r#"{"schema":1,"scenario":"x","virtual":{"makespan_s":1.0},"host":{"median_ms":1.0}}"#;
        let b =
            r#"{"schema":2,"scenario":"x","virtual":{"makespan_s":1.0},"host":{"median_ms":1.0}}"#;
        let errs = compare_artifacts(a, b, 4.0).unwrap_err();
        assert!(errs.iter().any(|e| e.starts_with("schema")), "{errs:?}");
    }
}
