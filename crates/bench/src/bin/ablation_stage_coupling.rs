//! Ablation E — coupling HPC and analytics stages: persist-to-filesystem
//! vs direct streaming (paper §V: "most importantly data needs to be
//! moved, which involves persisting files and re-reading them … In the
//! future it can be expected that data can be directly streamed between
//! these two environments").
//!
//! A producer node hands a trajectory to a consumer node, for growing
//! data sizes, via (a) Lustre persist + re-read, (b) node-local persist +
//! fabric + node-local write, (c) direct streaming.
//!
//! ```text
//! cargo run -p rp-bench --release --bin ablation_stage_coupling
//! ```

use rp_bench::{ShapeChecks, Table};
use rp_hpc::{Cluster, MachineSpec, NodeId};
use rp_saga::{stream, transfer, Endpoint};
use rp_sim::{Engine, MB};
use std::cell::RefCell;
use std::rc::Rc;

fn persist_lustre(bytes: f64) -> f64 {
    let mut e = Engine::new(1);
    let cluster = Cluster::new(MachineSpec::stampede());
    let t = Rc::new(RefCell::new(0.0));
    let t2 = t.clone();
    let c2 = cluster.clone();
    transfer(
        &mut e,
        &cluster,
        Endpoint::Local(NodeId(0)),
        Endpoint::Lustre,
        bytes,
        move |eng| {
            let t2 = t2.clone();
            transfer(
                eng,
                &c2,
                Endpoint::Lustre,
                Endpoint::Local(NodeId(1)),
                bytes,
                move |eng| {
                    *t2.borrow_mut() = eng.now().as_secs_f64();
                },
            );
        },
    );
    e.run();
    let out = *t.borrow();
    out
}

fn local_hop(bytes: f64) -> f64 {
    let mut e = Engine::new(1);
    let cluster = Cluster::new(MachineSpec::stampede());
    let t = Rc::new(RefCell::new(0.0));
    let t2 = t.clone();
    transfer(
        &mut e,
        &cluster,
        Endpoint::Local(NodeId(0)),
        Endpoint::Local(NodeId(1)),
        bytes,
        move |eng| *t2.borrow_mut() = eng.now().as_secs_f64(),
    );
    e.run();
    let out = *t.borrow();
    out
}

fn direct_stream(bytes: f64) -> f64 {
    let mut e = Engine::new(1);
    let cluster = Cluster::new(MachineSpec::stampede());
    let t = Rc::new(RefCell::new(0.0));
    let t2 = t.clone();
    stream(&mut e, &cluster, NodeId(0), NodeId(1), bytes, move |eng| {
        *t2.borrow_mut() = eng.now().as_secs_f64();
    });
    e.run();
    let out = *t.borrow();
    out
}

fn main() {
    println!("== Ablation E: stage coupling — persist vs stream (Stampede) ==\n");
    let mut table = Table::new(vec![
        "payload (MB)",
        "Lustre persist+reload (s)",
        "local persist+hop (s)",
        "direct stream (s)",
    ]);
    let mut last = (0.0, 0.0);
    for mb in [100.0, 1_000.0, 10_000.0] {
        let bytes = mb * MB;
        let lustre = persist_lustre(bytes);
        let local = local_hop(bytes);
        let streamed = direct_stream(bytes);
        table.row(vec![
            format!("{mb:.0}"),
            format!("{lustre:8.2}"),
            format!("{local:8.2}"),
            format!("{streamed:8.2}"),
        ]);
        last = (lustre, streamed);
    }
    table.print();

    let checks = ShapeChecks::new();
    checks.check(
        format!(
            "streaming beats persist+reload by >3x at 10 GB ({:.1}s vs {:.1}s)",
            last.1, last.0
        ),
        last.1 * 3.0 < last.0,
    );
    std::process::exit(if checks.report() { 0 } else { 1 });
}
