//! Fig. 5 (main): Pilot startup time on Stampede and Wrangler for
//! RADICAL-Pilot, RP-YARN Mode I (Hadoop on HPC) and RP-YARN Mode II
//! (dedicated Hadoop environment, Wrangler only).
//!
//! All numbers come from the span-based phase profiler: each run is traced,
//! the pilot's `pilot.run` span tree is profiled, and the table columns are
//! phase sums — there are no bespoke timers in this harness.
//!
//! Paper observations to reproduce:
//! * Mode I adds 50–85 s of YARN download/config/daemon startup.
//! * Mode II startup is comparable to the plain RADICAL-Pilot startup.
//!
//! ```text
//! cargo run -p rp-bench --release --bin fig5_startup
//! ```

use rp_bench::{mean_std, profile_pilot_startup, repeat, ShapeChecks, Table, Variant};
use rp_pilot::SessionConfig;
use rp_sim::{mean_breakdown, Phase, PhaseBreakdown, RunReport};

const REPS: u64 = 8;

fn main() {
    println!("== Fig. 5 (main): Pilot startup time ==\n");
    let mut table = Table::new(vec![
        "machine",
        "variant",
        "startup (s)",
        "framework bootstrap (s)",
        "min",
        "max",
    ]);

    let mut results = std::collections::BTreeMap::new();
    let mut report = RunReport::new("Fig. 5 phase breakdown (profiler, mean over reps, seconds)");
    let cases: Vec<(&str, Variant)> = vec![
        ("xsede.stampede", Variant::Rp),
        ("xsede.stampede", Variant::RpYarnModeI),
        ("xsede.wrangler", Variant::Rp),
        ("xsede.wrangler", Variant::RpYarnModeI),
        ("xsede.wrangler", Variant::RpYarnModeII),
    ];
    for (machine, variant) in cases {
        let boot = std::cell::RefCell::new(Vec::new());
        let phases = std::cell::RefCell::new(Vec::<PhaseBreakdown>::new());
        let s = repeat(REPS, |seed| {
            let p = profile_pilot_startup(machine, variant, 1, seed, SessionConfig::default());
            boot.borrow_mut().push(p.framework_bootstrap_s);
            phases.borrow_mut().push(p.phases);
            p.startup_s
        });
        let boots = boot.into_inner();
        let boot_mean = boots.iter().sum::<f64>() / boots.len() as f64;
        table.row(vec![
            machine.to_string(),
            variant.label().to_string(),
            mean_std(&s),
            format!("{boot_mean:7.1}"),
            format!("{:7.1}", s.min),
            format!("{:7.1}", s.max),
        ]);
        report.push(
            format!("{machine} {}", variant.label()),
            mean_breakdown(&phases.into_inner()),
        );
        results.insert((machine, variant.label()), (s.mean, boot_mean));
    }
    table.print();
    println!();
    print!("{}", report.render_table());

    let checks = ShapeChecks::new();
    let rp_s = results[&("xsede.stampede", "RADICAL-Pilot")].0;
    let yarn_s = results[&("xsede.stampede", "RP-YARN (Mode I)")].0;
    let rp_w = results[&("xsede.wrangler", "RADICAL-Pilot")].0;
    let yarn_w = results[&("xsede.wrangler", "RP-YARN (Mode I)")].0;
    let mode2_w = results[&("xsede.wrangler", "RP-YARN (Mode II)")].0;
    let boot_s = results[&("xsede.stampede", "RP-YARN (Mode I)")].1;
    let boot_w = results[&("xsede.wrangler", "RP-YARN (Mode I)")].1;

    checks.check(
        format!("Mode I bootstrap in the paper's 50-85 s band (stampede {boot_s:.0}s, wrangler {boot_w:.0}s)"),
        (45.0..95.0).contains(&boot_s) && (45.0..95.0).contains(&boot_w),
    );
    checks.check(
        format!(
            "Mode I startup exceeds plain RP on both machines (+{:.0}s / +{:.0}s)",
            yarn_s - rp_s,
            yarn_w - rp_w
        ),
        yarn_s > rp_s + 40.0 && yarn_w > rp_w + 40.0,
    );
    checks.check(
        format!("Mode II ≈ plain RP on Wrangler ({mode2_w:.0}s vs {rp_w:.0}s)"),
        (mode2_w - rp_w).abs() < 10.0,
    );
    // Profiler invariants: the Mode I YARN+HDFS phases are exactly the
    // framework bootstrap the table reports, and Mode II charges its
    // connect handshake to yarn_startup without an hdfs_startup phase.
    let yarn_hdfs = |label: &str| {
        report
            .rows()
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, b)| b.sum_secs(&[Phase::YarnStartup, Phase::HdfsStartup]))
            .unwrap()
    };
    let phase_boot_s = yarn_hdfs("xsede.stampede RP-YARN (Mode I)");
    checks.check(
        format!("profiler YARN+HDFS phases match framework bootstrap ({phase_boot_s:.0}s vs {boot_s:.0}s)"),
        (phase_boot_s - boot_s).abs() < 1.0,
    );
    std::process::exit(if checks.report() { 0 } else { 1 });
}
