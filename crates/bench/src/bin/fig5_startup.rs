//! Fig. 5 (main): Pilot startup time on Stampede and Wrangler for
//! RADICAL-Pilot, RP-YARN Mode I (Hadoop on HPC) and RP-YARN Mode II
//! (dedicated Hadoop environment, Wrangler only).
//!
//! Paper observations to reproduce:
//! * Mode I adds 50–85 s of YARN download/config/daemon startup.
//! * Mode II startup is comparable to the plain RADICAL-Pilot startup.
//!
//! ```text
//! cargo run -p rp-bench --release --bin fig5_startup
//! ```

use rp_bench::{mean_std, measure_pilot_startup, repeat, ShapeChecks, Table, Variant};
use rp_pilot::SessionConfig;

const REPS: u64 = 8;

fn main() {
    println!("== Fig. 5 (main): Pilot startup time ==\n");
    let mut table = Table::new(vec![
        "machine",
        "variant",
        "startup (s)",
        "framework bootstrap (s)",
        "min",
        "max",
    ]);

    let mut results = std::collections::BTreeMap::new();
    let cases: Vec<(&str, Variant)> = vec![
        ("xsede.stampede", Variant::Rp),
        ("xsede.stampede", Variant::RpYarnModeI),
        ("xsede.wrangler", Variant::Rp),
        ("xsede.wrangler", Variant::RpYarnModeI),
        ("xsede.wrangler", Variant::RpYarnModeII),
    ];
    for (machine, variant) in cases {
        let boot = std::cell::RefCell::new(Vec::new());
        let s = repeat(REPS, |seed| {
            let (startup, fw) =
                measure_pilot_startup(machine, variant, 1, seed, SessionConfig::default());
            boot.borrow_mut().push(fw);
            startup
        });
        let boots = boot.into_inner();
        let boot_mean = boots.iter().sum::<f64>() / boots.len() as f64;
        table.row(vec![
            machine.to_string(),
            variant.label().to_string(),
            mean_std(&s),
            format!("{boot_mean:7.1}"),
            format!("{:7.1}", s.min),
            format!("{:7.1}", s.max),
        ]);
        results.insert((machine, variant.label()), (s.mean, boot_mean));
    }
    table.print();

    let checks = ShapeChecks::new();
    let rp_s = results[&("xsede.stampede", "RADICAL-Pilot")].0;
    let yarn_s = results[&("xsede.stampede", "RP-YARN (Mode I)")].0;
    let rp_w = results[&("xsede.wrangler", "RADICAL-Pilot")].0;
    let yarn_w = results[&("xsede.wrangler", "RP-YARN (Mode I)")].0;
    let mode2_w = results[&("xsede.wrangler", "RP-YARN (Mode II)")].0;
    let boot_s = results[&("xsede.stampede", "RP-YARN (Mode I)")].1;
    let boot_w = results[&("xsede.wrangler", "RP-YARN (Mode I)")].1;

    checks.check(
        format!("Mode I bootstrap in the paper's 50-85 s band (stampede {boot_s:.0}s, wrangler {boot_w:.0}s)"),
        (45.0..95.0).contains(&boot_s) && (45.0..95.0).contains(&boot_w),
    );
    checks.check(
        format!("Mode I startup exceeds plain RP on both machines (+{:.0}s / +{:.0}s)",
            yarn_s - rp_s, yarn_w - rp_w),
        yarn_s > rp_s + 40.0 && yarn_w > rp_w + 40.0,
    );
    checks.check(
        format!("Mode II ≈ plain RP on Wrangler ({mode2_w:.0}s vs {rp_w:.0}s)"),
        (mode2_w - rp_w).abs() < 10.0,
    );
    std::process::exit(if checks.report() { 0 } else { 1 });
}
