//! Ablation G — Hadoop speculative execution under stragglers.
//!
//! The MR map phase waits for its slowest task; with heavy per-task
//! jitter (OS noise, slow disks — endemic on the paper's multi-tenant
//! Lustre machines) the tail dominates. Speculative execution launches
//! backup attempts past a threshold and takes the earlier finisher.
//!
//! ```text
//! cargo run -p rp-bench --release --bin ablation_speculative
//! ```

use rp_bench::{mean_std, repeat, ShapeChecks, Table};
use rp_hdfs::{Hdfs, HdfsConfig, StoragePolicy};
use rp_hpc::{Cluster, MachineSpec, NodeId};
use rp_mapreduce::{run_on_yarn, MrCostModel, MrJobSpec, ShuffleBackend};
use rp_sim::Engine;
use rp_yarn::{Resource, YarnCluster, YarnConfig};

fn map_phase(jitter_sigma: f64, speculative: f64, seed: u64) -> f64 {
    let mut e = Engine::new(seed);
    let cluster = Cluster::new(MachineSpec::stampede());
    let nodes: Vec<NodeId> = cluster.node_ids().take(3).collect();
    let yarn = YarnCluster::start(&mut e, &cluster, &nodes, YarnConfig::default());
    let hdfs = Hdfs::attach(cluster.clone(), nodes, HdfsConfig::default());
    hdfs.create_synthetic_with_blocks("/in", 3 * 1024 * 1024 * 1024, StoragePolicy::Default, 32)
        .unwrap();
    let spec = MrJobSpec {
        name: "straggly".into(),
        input_path: "/in".into(),
        num_reducers: 4,
        container: Resource::new(1, 2048),
        shuffle: ShuffleBackend::LocalDisk,
        cost: MrCostModel {
            map_core_s_per_input_mb: 1.0,
            map_fixed_s: 2.0,
            map_output_ratio: 0.05,
            reduce_core_s_per_shuffle_mb: 0.1,
            reduce_fixed_s: 1.5,
            reduce_output_ratio: 0.1,
            task_jitter_sigma: jitter_sigma,
            speculative_threshold: speculative,
        },
    };
    let out = std::rc::Rc::new(std::cell::RefCell::new(None));
    let o = out.clone();
    run_on_yarn(&mut e, &cluster, &yarn, &hdfs, spec, move |_, stats| {
        *o.borrow_mut() = Some(stats.map_phase.as_secs_f64());
    });
    e.run();
    let t = out.borrow_mut().take().expect("job finished");
    t
}

fn main() {
    println!("== Ablation G: speculative execution (32 maps, Stampede, 3 nodes) ==\n");
    let mut table = Table::new(vec!["jitter σ", "speculation", "map phase (s)"]);
    let mut rows = Vec::new();
    for &sigma in &[0.1, 0.4, 0.8] {
        for &(label, thr) in &[("off", 0.0), ("1.3× threshold", 1.3)] {
            let s = repeat(6, |seed| map_phase(sigma, thr, seed));
            table.row(vec![format!("{sigma}"), label.to_string(), mean_std(&s)]);
            rows.push((sigma, thr, s.mean));
        }
    }
    table.print();

    let checks = ShapeChecks::new();
    let gain = |sigma: f64| {
        let off = rows.iter().find(|r| r.0 == sigma && r.1 == 0.0).unwrap().2;
        let on = rows.iter().find(|r| r.0 == sigma && r.1 > 0.0).unwrap().2;
        (off - on) / off
    };
    checks.check(
        format!(
            "speculation gains grow with jitter ({:.0}% at σ=0.1 → {:.0}% at σ=0.8)",
            gain(0.1) * 100.0,
            gain(0.8) * 100.0
        ),
        gain(0.8) > gain(0.1) && gain(0.8) > 0.05,
    );
    std::process::exit(if checks.report() { 0 } else { 1 });
}
