//! Ablation C — coordination-store polling-interval sensitivity.
//!
//! The Unit-Manager → MongoDB → agent path (U.2–U.3) gates every unit on
//! the agent's poll cadence. This sweep measures the makespan of 64 small
//! Compute-Units under different poll intervals — the trade-off between
//! store load and unit turnaround the paper's architecture implies.
//!
//! ```text
//! cargo run -p rp-bench --release --bin ablation_polling
//! ```

use rp_bench::{ShapeChecks, Table};
use rp_pilot::{
    ComputeUnitDescription, PilotDescription, PilotManager, PilotState, Session, SessionConfig,
    UmScheduler, UnitManager, UnitState, WorkSpec,
};
use rp_sim::{Engine, SimDuration};

const UNITS: usize = 64;
const INTERVALS_MS: [u64; 4] = [100, 500, 1_000, 5_000];

/// Makespan (first submission → last unit done) and store poll count.
fn run(poll_ms: u64, seed: u64) -> (f64, u64) {
    let mut e = Engine::new(seed);
    let mut cfg = SessionConfig::default();
    cfg.coordination.poll_ms = poll_ms;
    cfg.exec_prep_s = (0.2, 0.02); // fast spawner so polling dominates
    let session = Session::new(cfg);
    let pm = PilotManager::new(&session);
    let pilot = pm
        .submit(
            &mut e,
            PilotDescription::new("xsede.stampede", 2, SimDuration::from_secs(4 * 3600)),
        )
        .unwrap();
    while pilot.state() != PilotState::Active {
        assert!(e.step());
    }
    let mut um = UnitManager::new(&session, UmScheduler::Direct);
    um.add_pilot(&pilot);
    let t0 = e.now();
    // Submit in 8 waves of 8 so later waves actually wait on fresh polls.
    let mut last_done = t0;
    for wave in 0..8 {
        let units = um.submit_units(
            &mut e,
            (0..UNITS / 8)
                .map(|i| {
                    ComputeUnitDescription::new(
                        format!("w{wave}u{i}"),
                        1,
                        WorkSpec::Sleep(SimDuration::from_secs(2)),
                    )
                })
                .collect(),
        );
        while units.iter().any(|u| !u.state().is_final()) {
            assert!(e.step());
        }
        assert!(units.iter().all(|u| u.state() == UnitState::Done));
        last_done = e.now();
    }
    let makespan = last_done.since(t0).as_secs_f64();
    let polls = session.store().polls();
    pm.cancel(&mut e, &pilot);
    e.run();
    (makespan, polls)
}

fn main() {
    println!("== Ablation C: coordination-store poll interval ==");
    println!("   ({UNITS} sleep-2s CUs in 8 waves, Stampede, 2 nodes)\n");
    let mut table = Table::new(vec!["poll interval (ms)", "makespan (s)", "store polls"]);
    let mut spans = Vec::new();
    for &ms in &INTERVALS_MS {
        let (makespan, polls) = run(ms, 11);
        table.row(vec![
            ms.to_string(),
            format!("{makespan:7.1}"),
            polls.to_string(),
        ]);
        spans.push(makespan);
    }
    table.print();

    let checks = ShapeChecks::new();
    checks.check(
        format!(
            "makespan grows with the poll interval ({:.1}s → {:.1}s)",
            spans[0],
            spans[spans.len() - 1]
        ),
        spans.windows(2).all(|w| w[0] <= w[1] + 0.5) && spans[spans.len() - 1] > spans[0] + 5.0,
    );
    std::process::exit(if checks.report() { 0 } else { 1 });
}
