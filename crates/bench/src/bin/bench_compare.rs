//! Regression gate: diff freshly produced `BENCH_<scenario>.json` artifacts
//! against checked-in baselines. Virtual time is compared *exactly* — the
//! simulation is deterministic, so any drift in a phase total, critical-path
//! length, counter, or makespan is a real behavior change. Host wall-clock
//! is hardware-dependent and only bounded: the candidate median may not
//! exceed `baseline × factor + slack`.
//!
//! ```text
//! cargo run -p rp-bench --release --bin bench_compare -- \
//!     --baseline DIR --candidate DIR [--host-factor F] [--scenario NAME]...
//! ```
//!
//! Exits non-zero on any drift, listing every moved field. To accept an
//! intentional change, re-baseline: `bench_suite --out-dir .` at the repo
//! root and commit the updated artifacts (see EXPERIMENTS.md).

use std::path::{Path, PathBuf};

use rp_bench::diff::{diff_documents, DEFAULT_EPS};
use rp_bench::harness::{artifact_file_name, compare_artifacts, SCENARIO_NAMES};

fn dir_arg(args: &[String], flag: &str) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let baseline_dir = dir_arg(&args, "--baseline").unwrap_or_else(|| {
        eprintln!("usage: bench_compare --baseline DIR --candidate DIR [--host-factor F]");
        std::process::exit(2);
    });
    let candidate_dir = dir_arg(&args, "--candidate").unwrap_or_else(|| {
        eprintln!("usage: bench_compare --baseline DIR --candidate DIR [--host-factor F]");
        std::process::exit(2);
    });
    let host_factor: f64 = args
        .iter()
        .position(|a| a == "--host-factor")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4.0);
    let mut scenarios: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--scenario")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect();
    if scenarios.is_empty() {
        scenarios = SCENARIO_NAMES.iter().map(|s| s.to_string()).collect();
    }

    let read = |dir: &Path, name: &str| -> Result<String, String> {
        let path = dir.join(artifact_file_name(name));
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))
    };

    let mut drifted: Vec<String> = Vec::new();
    let mut failed = false;
    for name in &scenarios {
        match (read(&baseline_dir, name), read(&candidate_dir, name)) {
            (Ok(b), Ok(c)) => match compare_artifacts(&b, &c, host_factor) {
                Ok(()) => println!("  {name:<18} OK"),
                Err(errs) => {
                    failed = true;
                    drifted.push(name.clone());
                    println!("  {name:<18} DRIFT ({} difference(s))", errs.len());
                    for e in errs {
                        println!("      {e}");
                    }
                    // Attribute the drift: which phase / critical-path
                    // segment / counter moved, and by how much.
                    match diff_documents(&b, &c) {
                        Ok(d) => {
                            for line in d.render_table(DEFAULT_EPS).lines() {
                                println!("      {line}");
                            }
                        }
                        Err(e) => println!("      (trace_diff attribution unavailable: {e})"),
                    }
                }
            },
            (b, c) => {
                failed = true;
                for r in [b, c] {
                    if let Err(e) = r {
                        println!("  {name:<18} ERROR: {e}");
                    }
                }
            }
        }
    }
    if failed {
        if drifted.is_empty() {
            println!("bench_compare: FAILED — artifacts missing or unreadable (see above)");
        } else {
            println!(
                "bench_compare: FAILED — virtual drift in [{}]; the attribution above names \
                 the moved fields (expected vs got) and phases. If the change is intentional, \
                 re-baseline per EXPERIMENTS.md",
                drifted.join(", ")
            );
        }
        std::process::exit(1);
    }
    println!("bench_compare: all scenarios match the baselines");
}
