//! Attribute the difference between two runs: diff two `BENCH_*.json`
//! artifacts or two Chrome traces and name the phases / critical-path
//! segments / spans that moved (regressed, improved, new, vanished).
//!
//! ```text
//! cargo run -p rp-bench --release --bin trace_diff -- \
//!     BASELINE.json CANDIDATE.json [--json] [--eps SECONDS]
//! ```
//!
//! Both files must be the same kind — either two artifacts written by
//! `bench_suite` or two Chrome traces written by `trace_validate` /
//! [`rp_sim::trace::Trace::write_chrome_json`]; the kind is sniffed from
//! the document shape. Exit status: 0 when no virtual-time quantity moved
//! beyond `--eps` (default 1e-6; host timings never count), 1 when
//! something did, 2 on usage or unreadable/malformed input.

use rp_bench::diff::{diff_documents, DEFAULT_EPS};

fn usage() -> ! {
    eprintln!("usage: trace_diff BASELINE.json CANDIDATE.json [--json] [--eps SECONDS]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<&String> = Vec::new();
    let mut as_json = false;
    let mut eps = DEFAULT_EPS;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => as_json = true,
            "--eps" => {
                i += 1;
                eps = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(e) => e,
                    None => usage(),
                };
            }
            flag if flag.starts_with("--") => usage(),
            _ => files.push(&args[i]),
        }
        i += 1;
    }
    let (base_path, cand_path) = match files.as_slice() {
        [b, c] => (b.as_str(), c.as_str()),
        _ => usage(),
    };
    let read = |path: &str| -> String {
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("trace_diff: cannot read {path}: {e}");
                std::process::exit(2);
            }
        }
    };
    let (base, cand) = (read(base_path), read(cand_path));
    let report = match diff_documents(&base, &cand) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace_diff: {e}");
            std::process::exit(2);
        }
    };
    if as_json {
        println!("{}", report.to_json(eps));
    } else {
        print!("{}", report.render_table(eps));
    }
    std::process::exit(if report.is_clean(eps) { 0 } else { 1 });
}
