//! Extension experiment — K-Means on a third system: **RP-Spark**
//! (Mode I standalone Spark with cached RDDs), against the paper's RP and
//! RP-YARN. This quantifies the §V future-work claim that in-memory
//! runtimes are the right substrate "for iterative algorithms":
//! Spark reads the input once, keeps it cached across iterations, and
//! map-side-combines the shuffle — while each MapReduce iteration is a
//! fresh job that re-reads HDFS and pays the AM path.
//!
//! ```text
//! cargo run -p rp-bench --release --bin extension_spark_kmeans
//! ```

use rp_analytics::{
    fig6_session_config, run_rp_kmeans, run_rp_spark_kmeans, run_rp_yarn_kmeans, KMeansCalibration,
    SCENARIOS,
};
use rp_bench::{ShapeChecks, Table};
use rp_pilot::Session;
use rp_sim::Engine;

fn main() {
    let cal = KMeansCalibration::default();
    let scenario = SCENARIOS[2]; // 1M points / 50 clusters
    println!("== Extension: K-Means on RP vs RP-YARN vs RP-Spark ==");
    println!(
        "   ({}, 2 iterations, Wrangler; bootstraps included)\n",
        scenario.label
    );

    let mut table = Table::new(vec![
        "tasks",
        "RADICAL-Pilot (s)",
        "RP-YARN (s)",
        "RP-Spark (s)",
        "Spark vs YARN",
    ]);
    let mut results = Vec::new();
    for tasks in [8u32, 16, 32] {
        let seed = 500 + tasks as u64;
        let mut e = Engine::new(seed);
        let session = Session::new(fig6_session_config());
        let rp = run_rp_kmeans(&mut e, &session, "xsede.wrangler", tasks, scenario, &cal)
            .time_to_completion;
        let mut e = Engine::new(seed + 1);
        let session = Session::new(fig6_session_config());
        let yarn = run_rp_yarn_kmeans(&mut e, &session, "xsede.wrangler", tasks, scenario, &cal)
            .time_to_completion;
        let mut e = Engine::new(seed + 2);
        let session = Session::new(fig6_session_config());
        let spark = run_rp_spark_kmeans(&mut e, &session, "xsede.wrangler", tasks, scenario, &cal)
            .time_to_completion;
        table.row(vec![
            tasks.to_string(),
            format!("{rp:8.1}"),
            format!("{yarn:8.1}"),
            format!("{spark:8.1}"),
            format!("{:5.2}x", yarn / spark),
        ]);
        results.push((tasks, rp, yarn, spark));
    }
    table.print();

    let checks = ShapeChecks::new();
    let all_spark_wins = results.iter().all(|&(_, _, yarn, spark)| spark < yarn);
    checks.check(
        "cached-RDD Spark beats per-iteration MapReduce at every task count",
        all_spark_wins,
    );
    let (_, rp32, _, spark32) = results[2];
    checks.check(
        format!("at 32 tasks Spark also beats plain RP ({spark32:.0}s vs {rp32:.0}s)"),
        spark32 < rp32,
    );
    std::process::exit(if checks.report() { 0 } else { 1 });
}
