//! Ablation F — Spark deployment mode: standalone vs on-YARN (paper
//! §III-D: RADICAL-Pilot deploys Spark standalone because running it on
//! YARN means "two instead of one framework need to be configured and
//! run" with no multi-tenancy benefit in a single-user pilot).
//!
//! Measures, on a 3-node Stampede allocation, the time from allocation to
//! a Spark application with 12 executor cores being ready:
//! (a) standalone: Spark bootstrap + app submission;
//! (b) on-YARN: YARN (+HDFS-less) bootstrap + Spark driver AM + executor
//!     containers through the YARN allocation pipeline.
//!
//! ```text
//! cargo run -p rp-bench --release --bin ablation_spark_deploy
//! ```

use rp_bench::{mean_std, repeat, ShapeChecks, Table};
use rp_hpc::{Cluster, MachineSpec, NodeId};
use rp_sim::Engine;
use rp_spark::{submit_spark_on_yarn, SparkCluster, SparkConfig};
use rp_yarn::{bootstrap_mode_i, YarnConfig};
use std::cell::RefCell;
use std::rc::Rc;

const EXECUTORS: u32 = 6;
const CORES_PER_EXECUTOR: u32 = 2;

fn standalone(seed: u64) -> f64 {
    let mut e = Engine::new(seed);
    let cluster = Cluster::new(MachineSpec::stampede());
    let nodes: Vec<NodeId> = cluster.node_ids().take(3).collect();
    let done = Rc::new(RefCell::new(0.0));
    let d = done.clone();
    SparkCluster::bootstrap(
        &mut e,
        &cluster,
        nodes,
        SparkConfig::default(),
        move |eng, sc, _| {
            let d = d.clone();
            sc.submit_app(eng, EXECUTORS * CORES_PER_EXECUTOR, move |eng, res| {
                res.expect("cores available");
                *d.borrow_mut() = eng.now().as_secs_f64();
            });
        },
    );
    e.run();
    let out = *done.borrow();
    out
}

fn on_yarn(seed: u64) -> f64 {
    let mut e = Engine::new(seed);
    let cluster = Cluster::new(MachineSpec::stampede());
    let nodes: Vec<NodeId> = cluster.node_ids().take(3).collect();
    let done = Rc::new(RefCell::new(0.0));
    let d = done.clone();
    bootstrap_mode_i(
        &mut e,
        cluster,
        nodes,
        YarnConfig::default(),
        false,
        move |eng, env| {
            let d = d.clone();
            submit_spark_on_yarn(
                eng,
                &env.yarn,
                "spark-pi",
                EXECUTORS,
                CORES_PER_EXECUTOR,
                4096,
                move |eng, app| {
                    *d.borrow_mut() = eng.now().as_secs_f64();
                    app.finish(eng);
                },
            );
        },
    );
    e.run();
    let out = *done.borrow();
    out
}

fn main() {
    println!("== Ablation F: Spark deployment mode (Stampede, 3 nodes, {EXECUTORS}×{CORES_PER_EXECUTOR} cores) ==\n");
    let mut table = Table::new(vec!["deployment", "allocation → app ready (s)"]);
    let sa = repeat(8, standalone);
    let oy = repeat(8, on_yarn);
    table.row(vec![
        "standalone (paper's choice)".to_string(),
        mean_std(&sa),
    ]);
    table.row(vec!["on YARN".to_string(), mean_std(&oy)]);
    table.print();
    println!(
        "\non-YARN overhead: +{:.0}s ({:.1}×) — two frameworks bootstrapped,\n\
         executors through heartbeat-gated container allocation",
        oy.mean - sa.mean,
        oy.mean / sa.mean
    );

    let checks = ShapeChecks::new();
    checks.check(
        format!(
            "standalone is substantially faster ({:.0}s vs {:.0}s)",
            sa.mean, oy.mean
        ),
        oy.mean > sa.mean * 1.3,
    );
    std::process::exit(if checks.report() { 0 } else { 1 });
}
