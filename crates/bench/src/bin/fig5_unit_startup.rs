//! Fig. 5 (inset): Compute-Unit startup time — plain RADICAL-Pilot vs
//! RADICAL-Pilot-YARN on Stampede.
//!
//! The paper's point: every YARN CU pays a two-stage allocation (AM
//! container first, then the task container, each gated on heartbeats and
//! container launches), so CU startup is an order of magnitude above the
//! plain fork path — a bottleneck for short-running jobs.
//!
//! All numbers come from the span-based phase profiler over each unit's
//! `unit.run` span tree; the phase table below decomposes the startup into
//! the two allocation stages the paper describes.
//!
//! ```text
//! cargo run -p rp-bench --release --bin fig5_unit_startup
//! ```

use rp_bench::{mean_std, profile_unit_startup, repeat, ShapeChecks, Table, Variant};
use rp_pilot::SessionConfig;
use rp_sim::{mean_breakdown, Phase, PhaseBreakdown, RunReport};

const REPS: u64 = 8;

fn main() {
    println!("== Fig. 5 (inset): Compute-Unit startup time on Stampede ==\n");
    let mut table = Table::new(vec!["variant", "unit startup (s)", "min", "max"]);
    let mut means = Vec::new();
    let mut report =
        RunReport::new("Fig. 5 inset phase breakdown (profiler, mean over reps, seconds)");
    let mut alloc_means = Vec::new();
    for variant in [Variant::Rp, Variant::RpYarnModeI] {
        let phases = std::cell::RefCell::new(Vec::<PhaseBreakdown>::new());
        let s = repeat(REPS, |seed| {
            let p = profile_unit_startup("xsede.stampede", variant, seed, SessionConfig::default());
            phases.borrow_mut().push(p.phases);
            p.startup_s
        });
        table.row(vec![
            variant.label().to_string(),
            mean_std(&s),
            format!("{:6.1}", s.min),
            format!("{:6.1}", s.max),
        ]);
        let mean = mean_breakdown(&phases.into_inner());
        alloc_means.push(mean.sum_secs(&[Phase::AmAllocation, Phase::ContainerAllocation]));
        report.push(variant.label(), mean);
        means.push(s.mean);
    }
    table.print();
    println!();
    print!("{}", report.render_table());

    let checks = ShapeChecks::new();
    let (rp, yarn) = (means[0], means[1]);
    checks.check(
        format!("plain RP CU startup is seconds-scale ({rp:.1}s)"),
        rp < 10.0,
    );
    checks.check(
        format!("YARN CU startup is tens of seconds ({yarn:.1}s)"),
        (15.0..60.0).contains(&yarn),
    );
    checks.check(
        format!("YARN CU startup ≫ plain ({:.1}×)", yarn / rp),
        yarn / rp > 4.0,
    );
    checks.check(
        format!(
            "two-stage allocation dominates the YARN CU startup ({:.1}s of {yarn:.1}s)",
            alloc_means[1]
        ),
        alloc_means[1] > (yarn - rp) * 0.5 && alloc_means[0] < 1.0,
    );
    std::process::exit(if checks.report() { 0 } else { 1 });
}
