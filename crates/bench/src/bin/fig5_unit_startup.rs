//! Fig. 5 (inset): Compute-Unit startup time — plain RADICAL-Pilot vs
//! RADICAL-Pilot-YARN on Stampede.
//!
//! The paper's point: every YARN CU pays a two-stage allocation (AM
//! container first, then the task container, each gated on heartbeats and
//! container launches), so CU startup is an order of magnitude above the
//! plain fork path — a bottleneck for short-running jobs.
//!
//! ```text
//! cargo run -p rp-bench --release --bin fig5_unit_startup
//! ```

use rp_bench::{mean_std, measure_unit_startup, repeat, ShapeChecks, Table, Variant};
use rp_pilot::SessionConfig;

const REPS: u64 = 8;

fn main() {
    println!("== Fig. 5 (inset): Compute-Unit startup time on Stampede ==\n");
    let mut table = Table::new(vec!["variant", "unit startup (s)", "min", "max"]);
    let mut means = Vec::new();
    for variant in [Variant::Rp, Variant::RpYarnModeI] {
        let s = repeat(REPS, |seed| {
            measure_unit_startup("xsede.stampede", variant, seed, SessionConfig::default())
        });
        table.row(vec![
            variant.label().to_string(),
            mean_std(&s),
            format!("{:6.1}", s.min),
            format!("{:6.1}", s.max),
        ]);
        means.push(s.mean);
    }
    table.print();

    let checks = ShapeChecks::new();
    let (rp, yarn) = (means[0], means[1]);
    checks.check(
        format!("plain RP CU startup is seconds-scale ({rp:.1}s)"),
        rp < 10.0,
    );
    checks.check(
        format!("YARN CU startup is tens of seconds ({yarn:.1}s)"),
        (15.0..60.0).contains(&yarn),
    );
    checks.check(
        format!("YARN CU startup ≫ plain ({:.1}×)", yarn / rp),
        yarn / rp > 4.0,
    );
    std::process::exit(if checks.report() { 0 } else { 1 });
}
