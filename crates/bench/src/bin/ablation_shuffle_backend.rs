//! Ablation B — shuffle backend: node-local disk vs Lustre (the
//! Hadoop-on-HPC storage choice discussed in §II and §V).
//!
//! Runs the 1M-point K-Means MapReduce job (32 maps) directly on a YARN
//! cluster with each backend, on both machines, and reports the phase
//! breakdown.
//!
//! ```text
//! cargo run -p rp-bench --release --bin ablation_shuffle_backend
//! ```

use rp_bench::{ShapeChecks, Table};
use rp_hdfs::{Hdfs, HdfsConfig, StoragePolicy};
use rp_hpc::{Cluster, MachineSpec, NodeId};
use rp_mapreduce::{run_on_yarn, MrCostModel, MrJobSpec, MrJobStats, ShuffleBackend};
use rp_sim::Engine;
use rp_yarn::{Resource, YarnCluster, YarnConfig};

const TASKS: u32 = 32;
const POINTS: u64 = 1_000_000;
const CLUSTERS: f64 = 50.0;
const RECORD_BYTES: f64 = 600.0;
const INPUT_BYTES_PER_POINT: f64 = 30.0;

fn run(machine: MachineSpec, backend: ShuffleBackend, seed: u64) -> MrJobStats {
    let mut e = Engine::new(seed);
    let cluster = Cluster::new(machine);
    let nodes: Vec<NodeId> = cluster.node_ids().take(3).collect();
    let yarn = YarnCluster::start(&mut e, &cluster, &nodes, YarnConfig::default());
    let hdfs = Hdfs::attach(cluster.clone(), nodes, HdfsConfig::default());
    let input = (POINTS as f64 * INPUT_BYTES_PER_POINT) as u64;
    hdfs.create_synthetic_with_blocks("/in", input, StoragePolicy::Default, TASKS)
        .unwrap();
    let points_per_mb = rp_sim::MB / INPUT_BYTES_PER_POINT;
    let spec = MrJobSpec {
        name: "kmeans-iter".into(),
        input_path: "/in".into(),
        num_reducers: 4,
        container: Resource::new(1, 2048),
        shuffle: backend,
        cost: MrCostModel {
            map_core_s_per_input_mb: points_per_mb * CLUSTERS * 1.2e-4,
            map_fixed_s: 1.5,
            map_output_ratio: RECORD_BYTES / INPUT_BYTES_PER_POINT,
            reduce_core_s_per_shuffle_mb: (rp_sim::MB / RECORD_BYTES) * 4.0e-5,
            reduce_fixed_s: 1.5,
            reduce_output_ratio: 0.01,
            task_jitter_sigma: 0.08,
            speculative_threshold: 0.0,
        },
    };
    let out = std::rc::Rc::new(std::cell::RefCell::new(None));
    let o = out.clone();
    run_on_yarn(&mut e, &cluster, &yarn, &hdfs, spec, move |_, stats| {
        *o.borrow_mut() = Some(stats);
    });
    e.run();
    let stats = out.borrow_mut().take().expect("job finished");
    stats
}

fn main() {
    println!("== Ablation B: shuffle backend (K-Means 1M pts, 32 maps, 4 reducers) ==\n");
    let mut table = Table::new(vec![
        "machine",
        "backend",
        "total (s)",
        "map (s)",
        "shuffle (s)",
        "reduce (s)",
    ]);
    let mut totals = std::collections::BTreeMap::new();
    for (mname, machine) in [
        ("stampede", MachineSpec::stampede()),
        ("wrangler", MachineSpec::wrangler()),
    ] {
        for (bname, backend) in [
            ("local-disk", ShuffleBackend::LocalDisk),
            ("lustre", ShuffleBackend::Lustre),
            ("in-memory", ShuffleBackend::InMemory),
        ] {
            let s = run(machine.clone(), backend, 7);
            table.row(vec![
                mname.to_string(),
                bname.to_string(),
                format!("{:7.1}", s.total.as_secs_f64()),
                format!("{:6.1}", s.map_phase.as_secs_f64()),
                format!("{:6.1}", s.shuffle_phase.as_secs_f64()),
                format!("{:6.1}", s.reduce_phase.as_secs_f64()),
            ]);
            totals.insert((mname, bname), s.total.as_secs_f64());
        }
    }
    table.print();

    let checks = ShapeChecks::new();
    checks.check(
        format!(
            "local-disk shuffle beats Lustre on Stampede ({:.1}s vs {:.1}s)",
            totals[&("stampede", "local-disk")],
            totals[&("stampede", "lustre")]
        ),
        totals[&("stampede", "local-disk")] < totals[&("stampede", "lustre")],
    );
    checks.check(
        format!(
            "wrangler is less sensitive to the backend (Δ {:.1}s vs Δ {:.1}s)",
            totals[&("wrangler", "lustre")] - totals[&("wrangler", "local-disk")],
            totals[&("stampede", "lustre")] - totals[&("stampede", "local-disk")]
        ),
        (totals[&("wrangler", "lustre")] - totals[&("wrangler", "local-disk")])
            <= (totals[&("stampede", "lustre")] - totals[&("stampede", "local-disk")]),
    );
    checks.check(
        format!(
            "in-memory shuffle (Tachyon-style, §V) is fastest on Stampede ({:.1}s)",
            totals[&("stampede", "in-memory")]
        ),
        totals[&("stampede", "in-memory")] <= totals[&("stampede", "local-disk")],
    );
    std::process::exit(if checks.report() { 0 } else { 1 });
}
