//! Ablation A — AM/container reuse (the paper's §III-C future work:
//! "In the future, we will further optimize the implementation by
//! providing support for Application Master and container re-use").
//!
//! 16 sequential Compute-Units on a Mode I pilot, with and without the
//! AM-reuse pool; reports per-unit startup for the first unit (cold) and
//! the mean over subsequent units (warm).
//!
//! ```text
//! cargo run -p rp-bench --release --bin ablation_am_reuse
//! ```

use rp_bench::{ShapeChecks, Table};
use rp_pilot::{
    AccessMode, ComputeUnitDescription, PilotDescription, PilotManager, PilotState, Session,
    SessionConfig, UmScheduler, UnitManager, UnitState, WorkSpec,
};
use rp_sim::{Engine, SimDuration};

const UNITS: usize = 16;

fn run(reuse: bool, seed: u64) -> (f64, f64) {
    let mut e = Engine::new(seed);
    let session = Session::new(SessionConfig {
        am_reuse: reuse,
        ..SessionConfig::default()
    });
    let pm = PilotManager::new(&session);
    let pilot = pm
        .submit(
            &mut e,
            PilotDescription::new("xsede.stampede", 1, SimDuration::from_secs(4 * 3600))
                .with_access(AccessMode::YarnModeI { with_hdfs: false }),
        )
        .unwrap();
    while pilot.state() != PilotState::Active {
        assert!(e.step());
    }
    let mut um = UnitManager::new(&session, UmScheduler::Direct);
    um.add_pilot(&pilot);
    let mut startups = Vec::new();
    for i in 0..UNITS {
        let units = um.submit_units(
            &mut e,
            vec![ComputeUnitDescription::new(
                format!("u{i}"),
                1,
                WorkSpec::Sleep(SimDuration::from_secs(5)),
            )],
        );
        while !units[0].state().is_final() {
            assert!(e.step());
        }
        assert_eq!(
            units[0].state(),
            UnitState::Done,
            "{:?}",
            units[0].failure()
        );
        startups.push(units[0].times().startup_time().unwrap().as_secs_f64());
    }
    pm.cancel(&mut e, &pilot);
    e.run();
    let cold = startups[0];
    let warm = startups[1..].iter().sum::<f64>() / (UNITS - 1) as f64;
    (cold, warm)
}

fn main() {
    println!("== Ablation A: RADICAL-Pilot YARN Application Master reuse ==");
    println!("   ({UNITS} sequential CUs on a Mode I pilot, Stampede)\n");
    let mut table = Table::new(vec![
        "configuration",
        "first-unit startup (s)",
        "subsequent units (s)",
    ]);
    let (cold_off, warm_off) = run(false, 42);
    let (cold_on, warm_on) = run(true, 42);
    table.row(vec![
        "per-unit AM (baseline)".to_string(),
        format!("{cold_off:6.1}"),
        format!("{warm_off:6.1}"),
    ]);
    table.row(vec![
        "AM reuse pool".to_string(),
        format!("{cold_on:6.1}"),
        format!("{warm_on:6.1}"),
    ]);
    table.print();
    println!(
        "\nwarm-unit startup reduction: {:.0}%",
        (1.0 - warm_on / warm_off) * 100.0
    );

    let checks = ShapeChecks::new();
    checks.check(
        format!("first unit pays the full AM path either way ({cold_on:.1}s vs {cold_off:.1}s)"),
        (cold_on - cold_off).abs() < 8.0,
    );
    checks.check(
        format!("reuse cuts warm startup by >50% ({warm_on:.1}s vs {warm_off:.1}s)"),
        warm_on < warm_off * 0.5,
    );
    std::process::exit(if checks.report() { 0 } else { 1 });
}
