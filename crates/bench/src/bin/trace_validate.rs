//! Validate a Chrome/Perfetto trace JSON file produced by
//! `Trace::to_chrome_json` (e.g. the quickstart's `--trace-out` artifact):
//! parses the document and checks that every async-nestable begin (`"b"`)
//! has a matching end (`"e"`) on the same id.
//!
//! ```text
//! cargo run -p rp-bench --bin trace_validate -- trace.json
//! ```
//!
//! Exits 0 and prints the event counts on success; exits 1 with the
//! offending reason otherwise.

use rp_sim::validate_chrome_json;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: trace_validate <trace.json>");
            std::process::exit(2);
        }
    };
    let doc = match std::fs::read_to_string(&path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    };
    match validate_chrome_json(&doc) {
        Ok(stats) => {
            println!(
                "{path}: ok — {} objects, {} instants, {} span begin/end pairs",
                stats.objects, stats.instants, stats.begins
            );
        }
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            std::process::exit(1);
        }
    }
}
