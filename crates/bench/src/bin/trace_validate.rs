//! Validate a Chrome/Perfetto trace JSON file produced by
//! `Trace::to_chrome_json` (e.g. the quickstart's `--trace-out` artifact):
//! streams the document element-by-element and checks that every
//! async-nestable begin (`"b"`) has a matching end (`"e"`) on the same id.
//! Peak memory is one JSON object plus the open-id table, so multi-GB
//! scale-run traces validate without being read into memory.
//!
//! ```text
//! cargo run -p rp-bench --bin trace_validate -- trace.json
//! ```
//!
//! Exits 0 and prints the event counts on success; exits 1 with the
//! offending reason otherwise.

use rp_sim::validate_chrome_reader;

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => {
            eprintln!("usage: trace_validate <trace.json>");
            std::process::exit(2);
        }
    };
    let file = match std::fs::File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    };
    match validate_chrome_reader(file) {
        Ok(stats) => {
            println!(
                "{path}: ok — {} objects, {} instants, {} span begin/end pairs",
                stats.objects, stats.instants, stats.begins
            );
        }
        Err(e) => {
            eprintln!("{path}: INVALID — {e}");
            std::process::exit(1);
        }
    }
}
