//! Run the benchmark suite and emit schema-versioned `BENCH_<scenario>.json`
//! artifacts (virtual phase totals + critical-path breakdown + counters +
//! host wall-clock stats).
//!
//! ```text
//! cargo run -p rp-bench --release --bin bench_suite -- \
//!     [--quick] [--out-dir DIR] [--scenario NAME]... [--markdown]
//! ```
//!
//! `--quick` runs 1 repetition per scenario (CI); the default is 5 for
//! meaningful median/p95 host statistics. `--scenario` limits the run to
//! the named scenario(s); `--markdown` also prints each report as a
//! GitHub table for pasting into PR descriptions.

use std::path::PathBuf;

use rp_bench::harness::{artifact_file_name, bench_scenario, SCENARIO_NAMES};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let out_dir: PathBuf = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));
    let mut scenarios: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--scenario")
        .filter_map(|(i, _)| args.get(i + 1).cloned())
        .collect();
    if scenarios.is_empty() {
        scenarios = SCENARIO_NAMES
            .iter()
            // The 10k-unit scale run is the one deliberately slow scenario;
            // quick (CI) runs cover the family via scale_1k only. Request
            // it explicitly with --scenario scale_10k.
            .filter(|s| !(quick && **s == "scale_10k"))
            .map(|s| s.to_string())
            .collect();
    }
    for s in &scenarios {
        assert!(
            SCENARIO_NAMES.contains(&s.as_str()),
            "unknown scenario {s:?} (expected one of {SCENARIO_NAMES:?})"
        );
    }
    let reps = if quick { 1 } else { 5 };

    std::fs::create_dir_all(&out_dir).expect("create out dir");
    println!(
        "== bench suite: {} scenario(s), {reps} rep(s) ==",
        scenarios.len()
    );
    for name in &scenarios {
        let art = bench_scenario(name, reps);
        let path = out_dir.join(artifact_file_name(name));
        std::fs::write(&path, art.to_json()).expect("write artifact");
        let throughput = art
            .events_per_sec()
            .map(|eps| format!("  ({eps:.0} events/s)"))
            .unwrap_or_default();
        let speedup = match (art.parallel_threads, art.speedup()) {
            (Some(t), Some(s)) => format!("  [parallel x{t}: {s:.2}x]"),
            _ => String::new(),
        };
        println!(
            "  {name:<18} median {:8.1} ms over {reps} rep(s){throughput}{speedup}  -> {}",
            art.median_ms(),
            path.display()
        );
        if markdown {
            println!("\n{}", art.markdown);
        }
    }
}
