//! Ablation D — Docker container runtime on YARN (paper §V future work:
//! "container-based virtualization (based on Docker) … is increasingly
//! used in cloud environments and also supported by YARN. Support for
//! these emerging infrastructures is being added to the Pilot-
//! Abstraction.").
//!
//! Measures CU startup on a Mode I pilot with process containers vs
//! Docker containers (cold image vs node-cached image).
//!
//! ```text
//! cargo run -p rp-bench --release --bin ablation_docker
//! ```

use rp_bench::{ShapeChecks, Table};
use rp_pilot::{
    AccessMode, ComputeUnitDescription, PilotDescription, PilotManager, PilotState, Session,
    SessionConfig, UmScheduler, UnitManager, UnitState, WorkSpec,
};
use rp_sim::{Engine, SimDuration};
use rp_yarn::ContainerRuntime;

/// Startup of the first and the fifth sequential unit on a 1-node pilot.
fn run(runtime: ContainerRuntime, seed: u64) -> (f64, f64) {
    let mut cfg = SessionConfig::default();
    cfg.yarn.container_runtime = runtime;
    let mut e = Engine::new(seed);
    let session = Session::new(cfg);
    let pm = PilotManager::new(&session);
    let pilot = pm
        .submit(
            &mut e,
            PilotDescription::new("xsede.stampede", 1, SimDuration::from_secs(4 * 3600))
                .with_access(AccessMode::YarnModeI { with_hdfs: false }),
        )
        .unwrap();
    while pilot.state() != PilotState::Active {
        assert!(e.step());
    }
    let mut um = UnitManager::new(&session, UmScheduler::Direct);
    um.add_pilot(&pilot);
    let mut startups = Vec::new();
    for i in 0..5 {
        let units = um.submit_units(
            &mut e,
            vec![ComputeUnitDescription::new(
                format!("u{i}"),
                1,
                WorkSpec::Sleep(SimDuration::from_secs(5)),
            )],
        );
        while !units[0].state().is_final() {
            assert!(e.step());
        }
        assert_eq!(units[0].state(), UnitState::Done);
        startups.push(units[0].times().startup_time().unwrap().as_secs_f64());
    }
    pm.cancel(&mut e, &pilot);
    e.run();
    (startups[0], startups[4])
}

fn main() {
    println!("== Ablation D: Docker container runtime on YARN ==");
    println!("   (5 sequential CUs, Mode I pilot, Stampede, 1 node)\n");
    let mut table = Table::new(vec![
        "runtime",
        "first CU startup (s)",
        "fifth CU startup (s)",
    ]);
    let (proc_first, proc_warm) = run(ContainerRuntime::Process, 42);
    let docker = ContainerRuntime::Docker {
        image_pull_s: (45.0, 5.0), // RP wrapper image over the campus mirror
        start_overhead_s: 1.0,
    };
    let (dock_first, dock_warm) = run(docker, 42);
    table.row(vec![
        "process".to_string(),
        format!("{proc_first:6.1}"),
        format!("{proc_warm:6.1}"),
    ]);
    table.row(vec![
        "docker".to_string(),
        format!("{dock_first:6.1}"),
        format!("{dock_warm:6.1}"),
    ]);
    table.print();

    let checks = ShapeChecks::new();
    checks.check(
        format!("cold Docker unit pays the image pull ({dock_first:.1}s vs {proc_first:.1}s)"),
        dock_first > proc_first + 30.0,
    );
    checks.check(
        format!("warm Docker units only pay start overhead ({dock_warm:.1}s vs {proc_warm:.1}s)"),
        (dock_warm - proc_warm) < 8.0,
    );
    std::process::exit(if checks.report() { 0 } else { 1 });
}
