//! Fig. 6: K-Means time-to-completion — RADICAL-Pilot vs
//! RADICAL-Pilot-YARN on Stampede and Wrangler.
//!
//! Sweep: 3 scenarios (10k pts/5k clusters, 100k/500, 1M/50; 3-D points,
//! constant compute) × {8, 16, 32} tasks on {1, 2, 3} nodes × both
//! machines × both systems; 2 K-Means iterations, several seeds.
//! RP-YARN runtimes include the YARN cluster download/startup (as in the
//! paper); plain-RP runtimes start at pilot activation.
//!
//! ```text
//! cargo run -p rp-bench --release --bin fig6_kmeans [--quick] [--csv PATH]
//! ```

use rp_analytics::{
    fig6_session_config, run_rp_kmeans, run_rp_yarn_kmeans, KMeansCalibration, SCENARIOS,
};
use rp_bench::{ShapeChecks, Table};
use rp_hpc::MachineSpec;
use rp_pilot::Session;
use rp_sim::{aggregate_roots, pilot_utilization, Engine, RunReport};

fn main() {
    // Wall time is dominated by event count, not the cost constants, so
    // --quick only reduces repetitions (the problem stays full-size).
    let quick = std::env::args().any(|a| a == "--quick");
    let csv_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--csv")
            .and_then(|i| args.get(i + 1).cloned())
    };
    let reps: u64 = if quick { 1 } else { 3 };
    let cal = KMeansCalibration::default();

    println!("== Fig. 6: K-Means time-to-completion (2 iterations) ==");
    if quick {
        println!("   (--quick: 1 repetition per cell)");
    }
    let machines = ["xsede.stampede", "xsede.wrangler"];
    let task_counts = [8u32, 16, 32];

    // results[(machine, scenario, tasks)] = (rp_mean, yarn_mean)
    let mut results: std::collections::BTreeMap<(usize, usize, u32), (f64, f64)> =
        std::collections::BTreeMap::new();

    for (mi, machine) in machines.iter().enumerate() {
        for (si, scenario) in SCENARIOS.iter().enumerate() {
            println!("\n-- {machine} · {} --", scenario.label);
            let mut table = Table::new(vec![
                "tasks",
                "nodes",
                "RADICAL-Pilot (s)",
                "RP-YARN (s)",
                "RP speedup",
                "YARN speedup",
            ]);
            let mut rp_base = 0.0;
            let mut yarn_base = 0.0;
            for &tasks in &task_counts {
                let mut rp_sum = 0.0;
                let mut yarn_sum = 0.0;
                for rep in 0..reps {
                    let seed = 10_000 + rep * 7919 + tasks as u64;
                    let mut e = Engine::new(seed);
                    let session = Session::new(fig6_session_config());
                    rp_sum += run_rp_kmeans(&mut e, &session, machine, tasks, *scenario, &cal)
                        .time_to_completion;
                    let mut e = Engine::new(seed + 1);
                    let session = Session::new(fig6_session_config());
                    yarn_sum +=
                        run_rp_yarn_kmeans(&mut e, &session, machine, tasks, *scenario, &cal)
                            .time_to_completion;
                }
                let rp = rp_sum / reps as f64;
                let yarn = yarn_sum / reps as f64;
                if tasks == task_counts[0] {
                    rp_base = rp;
                    yarn_base = yarn;
                }
                results.insert((mi, si, tasks), (rp, yarn));
                table.row(vec![
                    tasks.to_string(),
                    rp_analytics::nodes_for_tasks(tasks).to_string(),
                    format!("{rp:8.1}"),
                    format!("{yarn:8.1}"),
                    format!("{:5.2}", rp_base / rp),
                    format!("{:5.2}", yarn_base / yarn),
                ]);
            }
            table.print();
        }
    }

    // Profiler view of one representative cell (1M-points scenario, 32
    // tasks): aggregate unit.run phase breakdown per machine × system,
    // plus each pilot's core utilization over its active window. Traced
    // runs are bit-identical to the untraced sweep above.
    let mut report = RunReport::new(
        "Fig. 6 unit phase breakdown (1M pts, 32 tasks, aggregated over units, seconds)",
    );
    println!();
    for machine in &machines {
        let scenario = SCENARIOS[2];
        let seed = 10_000 + 32u64;
        let spec = MachineSpec::by_name(machine).expect("machine spec");
        let cores = rp_analytics::nodes_for_tasks(32) * spec.cores_per_node;
        let mut e = Engine::with_trace(seed);
        let session = Session::new(fig6_session_config());
        run_rp_kmeans(&mut e, &session, machine, 32, scenario, &cal);
        report.push(
            format!("{machine} RADICAL-Pilot"),
            aggregate_roots(&e.trace, "unit.run"),
        );
        let util: Vec<String> = e
            .trace
            .roots_named("pilot.run")
            .map(|s| format!("{:.0}%", 100.0 * pilot_utilization(&e.trace, s.id, cores)))
            .collect();
        println!(
            "{machine} RADICAL-Pilot pilot utilization: {}",
            util.join(", ")
        );
        let mut e = Engine::with_trace(seed + 1);
        let session = Session::new(fig6_session_config());
        run_rp_yarn_kmeans(&mut e, &session, machine, 32, scenario, &cal);
        report.push(
            format!("{machine} RP-YARN"),
            aggregate_roots(&e.trace, "unit.run"),
        );
    }
    println!();
    print!("{}", report.render_table());

    if let Some(path) = csv_path {
        let mut csv =
            String::from("machine,scenario_points,scenario_clusters,tasks,nodes,rp_s,rp_yarn_s\n");
        for (&(mi, si, tasks), &(rp, yarn)) in &results {
            csv.push_str(&format!(
                "{},{},{},{},{},{rp:.1},{yarn:.1}\n",
                machines[mi],
                SCENARIOS[si].points,
                SCENARIOS[si].clusters,
                tasks,
                rp_analytics::nodes_for_tasks(tasks),
            ));
        }
        std::fs::write(&path, csv).expect("write csv");
        println!("\n(wrote {path})");
    }

    // ---- shape checks against the paper's observations ----
    let checks = ShapeChecks::new();

    // 1. Runtimes decrease with the number of tasks, everywhere.
    let mut monotone = true;
    for mi in 0..machines.len() {
        for si in 0..SCENARIOS.len() {
            let series: Vec<f64> = task_counts
                .iter()
                .map(|&t| results[&(mi, si, t)].0)
                .collect();
            monotone &= series[0] > series[1] && series[1] > series[2];
            let series: Vec<f64> = task_counts
                .iter()
                .map(|&t| results[&(mi, si, t)].1)
                .collect();
            monotone &= series[0] > series[1] && series[1] > series[2];
        }
    }
    checks.check("runtimes decrease with task count (both systems)", monotone);

    // 2. YARN overhead visible at 8 tasks (YARN ≥ RP at 8 tasks).
    let mut yarn_slower_at_8 = 0;
    for mi in 0..machines.len() {
        for si in 0..SCENARIOS.len() {
            let (rp, yarn) = results[&(mi, si, 8)];
            if yarn > rp {
                yarn_slower_at_8 += 1;
            }
        }
    }
    checks.check(
        format!("YARN overhead visible at 8 tasks ({yarn_slower_at_8}/6 cells)"),
        yarn_slower_at_8 >= 4,
    );

    // 3. RP-YARN faster "in particular for larger number of tasks": mean
    //    advantage over the 32-task cells (paper: on average 13%).
    let mut advantages = Vec::new();
    for mi in 0..machines.len() {
        for si in 0..SCENARIOS.len() {
            let (rp, yarn) = results[&(mi, si, 32)];
            advantages.push((rp - yarn) / rp);
        }
    }
    let mean_adv = advantages.iter().sum::<f64>() / advantages.len() as f64 * 100.0;
    checks.check(
        format!("RP-YARN faster at 32 tasks, mean advantage {mean_adv:.0}% (paper: 13%)"),
        mean_adv > 5.0,
    );

    // 4. Wrangler 1M-points speedups: YARN above RP (paper: 3.2 vs 2.4).
    let rp_speedup = results[&(1, 2, 8)].0 / results[&(1, 2, 32)].0;
    let yarn_speedup = results[&(1, 2, 8)].1 / results[&(1, 2, 32)].1;
    checks.check(
        format!("Wrangler 1M-pts 32-task speedup: YARN {yarn_speedup:.2} > RP {rp_speedup:.2} (paper: 3.2 vs 2.4)"),
        yarn_speedup > rp_speedup,
    );

    // 5. Wrangler beats Stampede cell-by-cell (better CPUs/memory).
    let mut wrangler_wins = 0;
    for si in 0..SCENARIOS.len() {
        for &t in &task_counts {
            if results[&(1, si, t)].0 < results[&(0, si, t)].0 {
                wrangler_wins += 1;
            }
        }
    }
    checks.check(
        format!("Wrangler outperforms Stampede ({wrangler_wins}/9 RP cells)"),
        wrangler_wins >= 8,
    );

    // 6. Stampede YARN speedup declines as points grow (I/O saturation);
    //    Wrangler shows no such decline.
    let sp = |mi: usize, si: usize| results[&(mi, si, 8)].1 / results[&(mi, si, 32)].1;
    let stampede_decline = sp(0, 0) > sp(0, 2);
    checks.check(
        format!(
            "Stampede YARN speedup declines with points ({:.2} → {:.2}); Wrangler {:.2} → {:.2}",
            sp(0, 0),
            sp(0, 2),
            sp(1, 0),
            sp(1, 2)
        ),
        stampede_decline,
    );

    std::process::exit(if checks.report() { 0 } else { 1 });
}
