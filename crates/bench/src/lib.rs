//! Shared harness utilities for the figure-regeneration binaries: startup
//! measurement runners and a plain-text table formatter that prints the
//! same rows/series the paper's figures report.

pub mod diff;
pub mod harness;

use std::cell::RefCell;
use std::rc::Rc;

use rp_pilot::{
    AccessMode, ComputeUnitDescription, PilotDescription, PilotManager, PilotState, Session,
    SessionConfig, UmScheduler, UnitManager, UnitState, WorkSpec,
};
use rp_sim::{profile_span, Engine, Phase, PhaseBreakdown, SimDuration, Summary};

/// Aligned plain-text table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i] + 2));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a Summary as `mean ± std`.
pub fn mean_std(s: &Summary) -> String {
    format!("{:7.1} ± {:4.1}", s.mean, s.std)
}

/// Which pilot variant a startup measurement exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    Rp,
    RpYarnModeI,
    RpYarnModeII,
    RpSpark,
}

impl Variant {
    pub fn label(self) -> &'static str {
        match self {
            Variant::Rp => "RADICAL-Pilot",
            Variant::RpYarnModeI => "RP-YARN (Mode I)",
            Variant::RpYarnModeII => "RP-YARN (Mode II)",
            Variant::RpSpark => "RP-Spark (Mode I)",
        }
    }

    pub fn access(self) -> AccessMode {
        match self {
            Variant::Rp => AccessMode::Plain,
            Variant::RpYarnModeI => AccessMode::YarnModeI { with_hdfs: true },
            Variant::RpYarnModeII => AccessMode::YarnModeII,
            Variant::RpSpark => AccessMode::SparkModeI,
        }
    }
}

/// One profiled pilot-startup run. All values are derived from the span
/// stream by the phase profiler — no bespoke timers.
pub struct StartupProfile {
    /// Submission → Active (end of the `pilot.bootstrap` span relative to
    /// the `pilot.run` root begin): the Fig. 5 "Pilot startup time".
    pub startup_s: f64,
    /// YARN + HDFS daemon startup (the `yarn_startup`/`hdfs_startup`
    /// phases; 0 for plain pilots).
    pub framework_bootstrap_s: f64,
    /// Full phase breakdown of the pilot's lifecycle span.
    pub phases: PhaseBreakdown,
}

/// Run one pilot to Active under tracing and profile its lifecycle span.
pub fn profile_pilot_startup(
    resource: &str,
    variant: Variant,
    nodes: u32,
    seed: u64,
    config: SessionConfig,
) -> StartupProfile {
    let mut e = Engine::with_trace(seed);
    let session = Session::new(config);
    let pm = PilotManager::new(&session);
    let pilot = pm
        .submit(
            &mut e,
            PilotDescription::new(resource, nodes, SimDuration::from_secs(3600))
                .with_access(variant.access()),
        )
        .unwrap_or_else(|err| panic!("{}: {err}", variant.label()));
    while pilot.state() != PilotState::Active {
        assert!(e.step(), "engine drained before pilot became active");
    }
    pm.cancel(&mut e, &pilot);
    e.run();
    let root = pilot.root_span();
    let root_begin = e.trace.span(root).expect("pilot.run span").begin;
    let phases = profile_span(&e.trace, root);
    let bootstrap = e.trace.symbol("pilot.bootstrap");
    let startup_s = e
        .trace
        .iter_spans()
        .find(|s| s.parent == Some(root) && Some(s.name) == bootstrap)
        .and_then(|s| s.end)
        .map(|t| t.since(root_begin).as_secs_f64())
        .expect("pilot.bootstrap span");
    StartupProfile {
        startup_s,
        framework_bootstrap_s: phases.sum_secs(&[Phase::YarnStartup, Phase::HdfsStartup]),
        phases,
    }
}

/// Measure pilot startup (submission → Active) for one variant/seed.
/// Returns (startup_s, framework_bootstrap_s). Profiler-derived; see
/// [`profile_pilot_startup`] for the full breakdown.
pub fn measure_pilot_startup(
    resource: &str,
    variant: Variant,
    nodes: u32,
    seed: u64,
    config: SessionConfig,
) -> (f64, f64) {
    let p = profile_pilot_startup(resource, variant, nodes, seed, config);
    (p.startup_s, p.framework_bootstrap_s)
}

/// One profiled Compute-Unit run (submission → Done) on a fresh pilot.
pub struct UnitProfile {
    /// Submission → Executing (begin of the `unit.exec` span relative to
    /// the `unit.run` root): the Fig. 5 inset "CU startup time".
    pub startup_s: f64,
    /// Full phase breakdown of the unit's lifecycle span.
    pub phases: PhaseBreakdown,
}

/// Run one probe unit to completion under tracing and profile its
/// lifecycle span.
pub fn profile_unit_startup(
    resource: &str,
    variant: Variant,
    seed: u64,
    config: SessionConfig,
) -> UnitProfile {
    let mut e = Engine::with_trace(seed);
    let session = Session::new(config);
    let pm = PilotManager::new(&session);
    let pilot = pm
        .submit(
            &mut e,
            PilotDescription::new(resource, 1, SimDuration::from_secs(3600))
                .with_access(variant.access()),
        )
        .unwrap();
    while pilot.state() != PilotState::Active {
        assert!(e.step(), "engine drained before pilot became active");
    }
    let mut um = UnitManager::new(&session, UmScheduler::Direct);
    um.add_pilot(&pilot);
    let units = um.submit_units(
        &mut e,
        vec![ComputeUnitDescription::new(
            "probe",
            1,
            WorkSpec::Sleep(SimDuration::from_secs(10)),
        )],
    );
    while !units[0].state().is_final() {
        assert!(e.step(), "engine drained before unit finished");
    }
    assert_eq!(
        units[0].state(),
        UnitState::Done,
        "{:?}",
        units[0].failure()
    );
    pm.cancel(&mut e, &pilot);
    e.run();
    let root = units[0].root_span();
    let root_begin = e.trace.span(root).expect("unit.run span").begin;
    let phases = profile_span(&e.trace, root);
    let exec = e.trace.symbol("unit.exec");
    let startup_s = e
        .trace
        .iter_spans()
        .find(|s| s.parent == Some(root) && Some(s.name) == exec)
        .map(|s| s.begin.since(root_begin).as_secs_f64())
        .expect("unit.exec span");
    UnitProfile { startup_s, phases }
}

/// Measure Compute-Unit startup (submission → Executing) on an already
/// active pilot of the given variant. Profiler-derived.
pub fn measure_unit_startup(
    resource: &str,
    variant: Variant,
    seed: u64,
    config: SessionConfig,
) -> f64 {
    profile_unit_startup(resource, variant, seed, config).startup_s
}

/// Run a closure over `reps` seeds and summarise.
pub fn repeat(reps: u64, mut f: impl FnMut(u64) -> f64) -> Summary {
    let samples: Vec<f64> = (0..reps).map(|i| f(1000 + i * 7919)).collect();
    Summary::of(&samples)
}

/// Collects pass/fail shape assertions printed at the end of harnesses.
#[derive(Clone, Default)]
pub struct ShapeChecks {
    results: Rc<RefCell<Vec<(String, bool)>>>,
}

impl ShapeChecks {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn check(&self, label: impl Into<String>, ok: bool) {
        self.results.borrow_mut().push((label.into(), ok));
    }

    /// Print `[ok]`/`[VIOLATED]` lines; returns whether all held.
    pub fn report(&self) -> bool {
        let results = self.results.borrow();
        println!("\nShape checks (paper-vs-measured):");
        let mut all = true;
        for (label, ok) in results.iter() {
            println!("  [{}] {label}", if *ok { "ok" } else { "VIOLATED" });
            all &= ok;
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["333", "4"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("1"));
    }

    #[test]
    #[should_panic]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn startup_measurement_works_on_localhost() {
        let (startup, boot) = measure_pilot_startup(
            "localhost",
            Variant::Rp,
            1,
            1,
            SessionConfig::test_profile(),
        );
        assert!(startup > 0.0 && startup < 10.0);
        assert_eq!(boot, 0.0);
    }

    #[test]
    fn unit_startup_measurement_works() {
        let t = measure_unit_startup("localhost", Variant::Rp, 2, SessionConfig::test_profile());
        assert!(t > 0.0 && t < 5.0, "{t}");
    }

    #[test]
    fn repeat_summarises() {
        let s = repeat(5, |seed| seed as f64);
        assert_eq!(s.n, 5);
    }

    #[test]
    fn shape_checks_track_failures() {
        let c = ShapeChecks::new();
        c.check("good", true);
        assert!(c.report());
        c.check("bad", false);
        assert!(!c.report());
    }
}
