//! Integration tier for `trace_diff` attribution: a perturbed bench run
//! must be attributed to the phase that actually moved, a repeat run must
//! diff clean, and the Chrome-trace reduction must agree with the
//! engine-side [`Trace::name_totals`] aggregation it claims to mirror.

use rp_bench::diff::{diff_documents, Change, DEFAULT_EPS};
use rp_bench::harness::{bench_with, run_fault_matrix, FaultMatrixParams};
use rp_sim::trace::{SpanId, Trace};
use rp_sim::{SimDuration, SimTime};

fn small_params() -> FaultMatrixParams {
    FaultMatrixParams {
        seed: 3,
        units: 4,
        sleep_s: 300,
        intensity: 2,
    }
}

#[test]
fn repeat_run_diffs_clean_and_perturbation_names_the_compute_phase() {
    let baseline = bench_with("fault_matrix", 1, || run_fault_matrix(small_params()));
    // A fresh run of identical parameters differs only in host timings,
    // which attribution reports but never counts as movement.
    let same = bench_with("fault_matrix", 1, || run_fault_matrix(small_params()));
    let d = diff_documents(&baseline.to_json(), &same.to_json()).expect("diff");
    assert!(d.is_clean(DEFAULT_EPS), "{}", d.render_table(DEFAULT_EPS));

    // Longer sleeps: the regression must land on the compute phase, and
    // the headline must say so.
    let perturbed = bench_with("fault_matrix", 1, || {
        run_fault_matrix(FaultMatrixParams {
            sleep_s: 330,
            ..small_params()
        })
    });
    let d = diff_documents(&baseline.to_json(), &perturbed.to_json()).expect("diff");
    assert!(!d.is_clean(DEFAULT_EPS));
    let (section, top) = d.top_mover(DEFAULT_EPS).expect("a mover");
    assert_eq!(section, "phase totals", "top mover section");
    assert!(
        top.label.ends_with("/compute"),
        "expected the compute phase to lead the attribution, got {:?}",
        top.label
    );
    assert_eq!(top.change(DEFAULT_EPS), Change::Regressed);
    assert!(top.delta() > 0.0);
    let headline = d.headline(DEFAULT_EPS);
    assert!(
        headline.contains("compute") && headline.contains("regressed"),
        "headline {headline:?}"
    );
    // The critical path moved with it: sleep time is on-path.
    let crit = d
        .sections
        .iter()
        .find(|s| s.title == "critical path")
        .expect("critical section");
    assert!(
        crit.entries
            .iter()
            .any(|e| e.label.ends_with("/compute") && e.change(DEFAULT_EPS) == Change::Regressed),
        "critical path must attribute the same phase"
    );
    // Reversed operands classify the same movement as an improvement.
    let rev = diff_documents(&perturbed.to_json(), &baseline.to_json()).expect("diff");
    let (_, top) = rev.top_mover(DEFAULT_EPS).expect("a mover");
    assert_eq!(top.change(DEFAULT_EPS), Change::Improved);
}

/// Build a toy trace: `n` spans named `unit.run` of `secs` seconds each,
/// plus one fixed `setup` span.
fn toy_trace(n: u64, secs: u64) -> Trace {
    let mut tr = Trace::enabled();
    let s = tr.span_begin(SimTime(0), "setup", "setup", SpanId::NONE);
    tr.span_end(SimTime(1_000_000), s);
    for i in 0..n {
        let begin = SimTime(1_000_000 * (i + 1));
        let id = tr.span_begin(begin, "unit", "unit.run", SpanId::NONE);
        tr.span_end(SimTime(begin.0 + secs * 1_000_000), id);
    }
    tr
}

#[test]
fn chrome_diff_agrees_with_engine_side_name_totals() {
    let base = toy_trace(3, 10);
    let cand = toy_trace(3, 14);
    let d = diff_documents(&base.to_chrome_json(), &cand.to_chrome_json()).expect("diff");
    assert_eq!(d.kind, "chrome");
    let (section, top) = d.top_mover(DEFAULT_EPS).expect("a mover");
    assert_eq!(section, "span totals");
    assert_eq!(top.label, "unit.run");

    // Cross-check the reduction against Trace::name_totals on both sides:
    // the diff's per-name totals must equal the engine-side aggregation.
    let totals = |tr: &Trace, name: &str| -> (u64, SimDuration) {
        tr.name_totals()
            .into_iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, c, d)| (c, d))
            .expect("name present")
    };
    let (bc, bd) = totals(&base, "unit.run");
    let (cc, cd) = totals(&cand, "unit.run");
    assert_eq!(top.base, Some(bd.0 as f64 / 1e6));
    assert_eq!(top.cand, Some(cd.0 as f64 / 1e6));
    let counts = d
        .sections
        .iter()
        .find(|s| s.title == "span counts")
        .expect("counts section");
    let unit = counts
        .entries
        .iter()
        .find(|e| e.label == "unit.run")
        .expect("unit.run counts");
    assert_eq!(unit.base, Some(bc as f64));
    assert_eq!(unit.cand, Some(cc as f64));
    assert_eq!(unit.change(DEFAULT_EPS), Change::Unchanged);

    // Identical traces diff clean.
    let same = diff_documents(&base.to_chrome_json(), &base.to_chrome_json()).expect("diff");
    assert!(same.is_clean(DEFAULT_EPS));
}
