//! rp-analyze: offline static-analysis pass over the workspace source.
//!
//! Four rule families guard invariants the type system cannot express:
//!
//! 1. **state-machine** — every literal lifecycle transition the workspace
//!    exercises must be legal per the `can_transition_to` tables, and every
//!    table edge must be exercised somewhere (no dead contract).
//! 2. **lock-order** — nested Mutex acquisitions must be acyclic and match
//!    the blessed ordering in `lockorder.toml`.
//! 3. **determinism hazards** — `hash-iter` (HashMap/HashSet iteration
//!    order leaking into traces), `wallclock` (host-time reads in
//!    virtual-time code), `par-hazard` (relaxed atomics and thread-identity
//!    reads in code the parallel engine runs on workers), `unwrap-ratchet`
//!    (panic budget per file against `lint_baseline.toml`).
//! 4. **span-balance** — every `span_begin` must be matched by a
//!    `span_end` or an ownership transfer on all return paths.
//! 5. **PDES contracts** (call-graph-aware, see `callgraph`) —
//!    `prep-purity` (split-event prepare closures must not reach
//!    apply-side effects), `lookahead-coverage` (every latency feeding
//!    cross-domain scheduling must be registered as lookahead), and
//!    `effect-origin` (coordination-store effects must thread a real
//!    fencing origin; re-bind paths revoke before re-dispatch).
//! 6. **stale-waiver** — inline waivers that no longer suppress anything
//!    are reported (info) so the exception inventory stays honest.
//!
//! Everything is lexical: a hand-rolled token scanner (`lexer`) plus an
//! intra-workspace call graph built from the same token stream, no
//! external dependencies, no proc macros. Findings can be waived inline
//! with `// rp-lint: allow(<rule>, ...): <reason>`.

pub mod baseline;
pub mod callgraph;
pub mod effects;
pub mod hazards;
pub mod lexer;
pub mod locks;
pub mod lookahead;
pub mod preppurity;
pub mod report;
pub mod scan;
pub mod spans;
pub mod states;
pub mod waivers;

use std::path::{Path, PathBuf};
// The lint pass may time itself: per-rule wall time is host-side
// tooling cost, not simulation state (crates/analyze is on the
// wallclock allow-list for the same reason crates/bench is).
use std::time::Instant;

use report::{Finding, Report};

/// How many lifecycle state machines the workspace is expected to define
/// (PilotState and UnitState). Parsing fewer means the analyzer lost track
/// of the tables — fail loudly rather than silently passing.
pub const EXPECTED_MACHINES: usize = 2;

#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Rewrite `lockorder.toml` and `lint_baseline.toml` from the current
    /// tree instead of checking against them.
    pub bless: bool,
    /// Write lifecycle DOT graphs into this directory.
    pub emit_dot: Option<PathBuf>,
    /// Record per-rule wall time in `Pass::timings`.
    pub timings: bool,
    /// Strict mode (`RP_LINT_STRICT=1` / `--strict`): waived
    /// `prep-purity` findings are promoted back to fatal. Used by the
    /// sanitizer CI stage — under TSan a "provably pure" waived prep
    /// must actually prove itself, so the waiver is not honored.
    pub strict: bool,
}

/// Outcome of a full pass.
pub struct Pass {
    pub report: Report,
    /// Parsed machines (name -> DOT source), for artifact checks.
    pub dots: Vec<(String, String)>,
    /// Per-rule wall time in seconds (empty unless `Options::timings`).
    pub timings: Vec<(&'static str, f64)>,
}

/// Run every rule over the workspace rooted at `root`.
pub fn run_pass(root: &Path, opts: &Options) -> std::io::Result<Pass> {
    let files = scan::load_workspace(root)?;
    let mut report = Report::default();
    let mut timings: Vec<(&'static str, f64)> = Vec::new();
    macro_rules! timed {
        ($name:literal, $body:expr) => {{
            let t0 = opts.timings.then(Instant::now);
            let out = $body;
            if let Some(t0) = t0 {
                timings.push(($name, t0.elapsed().as_secs_f64()));
            }
            out
        }};
    }

    // Family 1: state-machine conformance.
    let machines = timed!("state-machine", {
        let machines = states::parse_machines(&files);
        if machines.len() < EXPECTED_MACHINES {
            report.push(Finding::new(
                "state-machine",
                "crates/core/src/states.rs",
                0,
                format!(
                    "expected {} lifecycle tables (PilotState, UnitState) but parsed {} — \
                     the analyzer no longer recognizes the can_transition_to tables",
                    EXPECTED_MACHINES,
                    machines.len()
                ),
            ));
        }
        states::check(&files, &machines, &mut report);
        machines
    });

    // Family 2: lock-order.
    timed!(
        "lock-order",
        locks::check(&files, root, opts.bless, &mut report)?
    );

    // Family 3: determinism hazards.
    timed!("wallclock", hazards::check_wallclock(&files, &mut report));
    timed!("hash-iter", hazards::check_hash_iter(&files, &mut report));
    timed!("par-hazard", hazards::check_par_hazard(&files, &mut report));
    timed!(
        "unwrap-ratchet",
        hazards::check_unwrap_ratchet(&files, root, opts.bless, &mut report)?
    );

    // Family 4: span balance.
    timed!("span-balance", spans::check(&files, &mut report));

    // Family 5: call-graph-aware PDES contracts. One graph serves all
    // three rules.
    let graph = timed!("callgraph", callgraph::CallGraph::build(&files));
    timed!(
        "prep-purity",
        preppurity::check(&files, &graph, &mut report)
    );
    timed!(
        "lookahead-coverage",
        lookahead::check(&files, &graph, &mut report)
    );
    timed!("effect-origin", effects::check(&files, &graph, &mut report));

    // Family 6: waiver hygiene — after every producing rule has run.
    timed!("stale-waiver", waivers::check_stale(&files, &mut report));

    if opts.strict {
        for f in &mut report.findings {
            if f.rule == "prep-purity" && f.waived {
                f.waived = false;
                f.fatal = true;
                f.message.push_str(" [strict: waiver not honored]");
            }
        }
    }

    report.sort();

    let mut dots = Vec::new();
    for m in &machines {
        dots.push((snake(&m.name), states::emit_dot(m)));
    }
    if let Some(dir) = &opts.emit_dot {
        std::fs::create_dir_all(dir)?;
        for (name, dot) in &dots {
            std::fs::write(dir.join(format!("{name}.dot")), dot)?;
        }
    }

    Ok(Pass {
        report,
        dots,
        timings,
    })
}

/// `PilotState` -> `pilot_states` (file-name style for DOT artifacts).
fn snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    // `pilot_state` reads better pluralized in the artifact name.
    format!("{out}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_names_match_artifacts() {
        assert_eq!(snake("PilotState"), "pilot_states");
        assert_eq!(snake("UnitState"), "unit_states");
    }
}
