//! rp-analyze: offline static-analysis pass over the workspace source.
//!
//! Four rule families guard invariants the type system cannot express:
//!
//! 1. **state-machine** — every literal lifecycle transition the workspace
//!    exercises must be legal per the `can_transition_to` tables, and every
//!    table edge must be exercised somewhere (no dead contract).
//! 2. **lock-order** — nested Mutex acquisitions must be acyclic and match
//!    the blessed ordering in `lockorder.toml`.
//! 3. **determinism hazards** — `hash-iter` (HashMap/HashSet iteration
//!    order leaking into traces), `wallclock` (host-time reads in
//!    virtual-time code), `par-hazard` (relaxed atomics and thread-identity
//!    reads in code the parallel engine runs on workers), `unwrap-ratchet`
//!    (panic budget per file against `lint_baseline.toml`).
//! 4. **span-balance** — every `span_begin` must be matched by a
//!    `span_end` or an ownership transfer on all return paths.
//!
//! Everything is lexical: a hand-rolled token scanner (`lexer`), no
//! external dependencies, no proc macros. Findings can be waived inline
//! with `// rp-lint: allow(<rule>, ...): <reason>`.

pub mod baseline;
pub mod hazards;
pub mod lexer;
pub mod locks;
pub mod report;
pub mod scan;
pub mod spans;
pub mod states;

use std::path::{Path, PathBuf};

use report::{Finding, Report};

/// How many lifecycle state machines the workspace is expected to define
/// (PilotState and UnitState). Parsing fewer means the analyzer lost track
/// of the tables — fail loudly rather than silently passing.
pub const EXPECTED_MACHINES: usize = 2;

#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Rewrite `lockorder.toml` and `lint_baseline.toml` from the current
    /// tree instead of checking against them.
    pub bless: bool,
    /// Write lifecycle DOT graphs into this directory.
    pub emit_dot: Option<PathBuf>,
}

/// Outcome of a full pass.
pub struct Pass {
    pub report: Report,
    /// Parsed machines (name -> DOT source), for artifact checks.
    pub dots: Vec<(String, String)>,
}

/// Run every rule over the workspace rooted at `root`.
pub fn run_pass(root: &Path, opts: &Options) -> std::io::Result<Pass> {
    let files = scan::load_workspace(root)?;
    let mut report = Report::default();

    // Family 1: state-machine conformance.
    let machines = states::parse_machines(&files);
    if machines.len() < EXPECTED_MACHINES {
        report.push(Finding::new(
            "state-machine",
            "crates/core/src/states.rs",
            0,
            format!(
                "expected {} lifecycle tables (PilotState, UnitState) but parsed {} — \
                 the analyzer no longer recognizes the can_transition_to tables",
                EXPECTED_MACHINES,
                machines.len()
            ),
        ));
    }
    states::check(&files, &machines, &mut report);

    // Family 2: lock-order.
    locks::check(&files, root, opts.bless, &mut report)?;

    // Family 3: determinism hazards.
    hazards::check_wallclock(&files, &mut report);
    hazards::check_hash_iter(&files, &mut report);
    hazards::check_par_hazard(&files, &mut report);
    hazards::check_unwrap_ratchet(&files, root, opts.bless, &mut report)?;

    // Family 4: span balance.
    spans::check(&files, &mut report);

    report.sort();

    let mut dots = Vec::new();
    for m in &machines {
        dots.push((snake(&m.name), states::emit_dot(m)));
    }
    if let Some(dir) = &opts.emit_dot {
        std::fs::create_dir_all(dir)?;
        for (name, dot) in &dots {
            std::fs::write(dir.join(format!("{name}.dot")), dot)?;
        }
    }

    Ok(Pass { report, dots })
}

/// `PilotState` -> `pilot_states` (file-name style for DOT artifacts).
fn snake(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    // `pilot_state` reads better pluralized in the artifact name.
    format!("{out}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_names_match_artifacts() {
        assert_eq!(snake("PilotState"), "pilot_states");
        assert_eq!(snake("UnitState"), "unit_states");
    }
}
