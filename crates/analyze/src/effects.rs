//! Rule `effect-origin`: coordination-store effects must carry a real
//! fencing origin, and re-bind paths must fence before re-dispatch.
//!
//! The partition-tolerance design (DESIGN.md §9) rejects a store write
//! whose `(PilotId, epoch)` origin is stale — but only if the sender
//! actually threads its origin. Three ways code silently opts out of
//! fencing, each checked lexically in `crates/core` library code:
//!
//!   1. **Origin-less emission** — calling the unfenced convenience
//!      variants `roundtrip(...)` / `return_units(...)` outside
//!      `coordination.rs`. Pilot-side senders must use the `_from`
//!      variants so a zombie's post-revocation write can be rejected.
//!      (UM-side authority writes such as `push_units` are exempt: the
//!      manager *is* the fencing authority.)
//!   2. **Fabricated origin** — constructing a literal
//!      `Some((PilotId(N), E))` or passing a numeric-literal epoch to a
//!      `_from` call outside the store. An epoch must come from the
//!      lease table, not be invented at the call site; a hard-coded
//!      epoch 0 defeats fencing exactly when it matters.
//!   3. **Re-dispatch before revocation** — in `manager.rs`, a function
//!      that both revokes a lease and re-dispatches orphaned units
//!      (`handle_pilot_loss` / `rebind`) must revoke first: the epoch
//!      bump is what fences the old owner's in-flight writes before new
//!      ownership exists.
//!
//! Waive a deliberate exception with
//! `// rp-lint: allow(effect-origin): <why fencing is not bypassed>`.

use crate::callgraph::{call_args, CallGraph};
use crate::lexer::TokKind;
use crate::report::{Finding, Report};
use crate::scan::SourceFile;

const SCOPE_PREFIX: &str = "crates/core/src/";
const STORE_FILE: &str = "crates/core/src/coordination.rs";
const MANAGER_FILE: &str = "crates/core/src/manager.rs";

/// Origin-less store emitters that have a fenced `_from` twin.
const UNFENCED_EMITTERS: &[&str] = &["roundtrip", "return_units"];

/// Fenced emitters whose epoch argument position is checked for
/// literals: (name, zero-based index of the epoch argument).
const FENCED_EMITTERS: &[(&str, usize)] = &[
    ("roundtrip_from", 2),
    ("return_units_from", 2),
    ("send_from", 1),
];

/// Calls that hand orphaned units to a new owner.
const REDISPATCH: &[&str] = &["handle_pilot_loss", "rebind"];

pub fn check(files: &[SourceFile], graph: &CallGraph, report: &mut Report) {
    for (fi, f) in files.iter().enumerate() {
        if !f.rel.starts_with(SCOPE_PREFIX) {
            continue;
        }
        if f.rel != STORE_FILE {
            check_emissions(f, report);
        }
        if f.rel == MANAGER_FILE {
            check_revoke_order(f, fi, graph, report);
        }
    }
}

fn check_emissions(f: &SourceFile, report: &mut Report) {
    let t = &f.lexed.toks;
    for i in 0..t.len() {
        if t[i].kind != TokKind::Ident
            || !t.get(i + 1).is_some_and(|x| x.is("("))
            || (i >= 1 && t[i - 1].is("fn"))
        {
            continue;
        }
        let line = t[i].line;
        if f.is_test_code(line) {
            continue;
        }
        let name = t[i].text.as_str();

        // 1. Origin-less emission: must be a method call (`store.roundtrip(`)
        // to avoid matching unrelated free fns of the same name.
        if UNFENCED_EMITTERS.contains(&name) && i >= 1 && t[i - 1].is(".") {
            push(
                report,
                f,
                line,
                format!(
                    "origin-less store effect `{name}(...)`: a pilot-side write \
                     without a (PilotId, epoch) origin can never be fence-rejected \
                     after lease revocation — use `{name}_from` and thread the \
                     pilot's current epoch"
                ),
            );
            continue;
        }

        // 2a. Literal epoch argument to a fenced emitter.
        if let Some(&(_, epoch_idx)) = FENCED_EMITTERS.iter().find(|(n, _)| *n == name) {
            let args = call_args(t, i + 1);
            // Method-call receiver is not part of `args`; the declared
            // index counts from the first argument after `engine`.
            // `roundtrip_from(engine, pilot, epoch, cb)` -> epoch at 2.
            if let Some(&(lo, hi)) = args.get(epoch_idx) {
                if lo == hi && t[lo].kind == TokKind::Lit && t[lo].str_content().is_none() {
                    push(
                        report,
                        f,
                        line,
                        format!(
                            "literal fencing epoch `{}` passed to `{name}(...)`: \
                             epochs must come from the lease table (the value \
                             current at send time), not be invented at the call \
                             site — a hard-coded epoch defeats fencing exactly \
                             when the lease has moved on",
                            t[lo].text
                        ),
                    );
                    continue;
                }
            }
        }

        // 2b. Fabricated origin tuple: `Some((PilotId(<lit>), <lit>))`.
        if name == "Some"
            && t.get(i + 2).is_some_and(|x| x.is("("))
            && t.get(i + 3).is_some_and(|x| x.is("PilotId"))
        {
            let inner = call_args(t, i + 2);
            let epoch_is_literal = inner
                .get(1)
                .is_some_and(|&(lo, hi)| lo == hi && t[lo].kind == TokKind::Lit);
            if epoch_is_literal {
                push(
                    report,
                    f,
                    line,
                    "fabricated origin `Some((PilotId(..), <literal>))` outside the \
                     store: construct origins from the lease table's current epoch, \
                     not literals"
                        .to_string(),
                );
            }
        }
    }
}

/// In every `manager.rs` fn that calls both `revoke_lease` and a
/// re-dispatch entry point, the first revocation must precede the first
/// re-dispatch — the epoch bump fences the old owner's writes before any
/// unit changes hands.
fn check_revoke_order(f: &SourceFile, file_idx: usize, graph: &CallGraph, report: &mut Report) {
    let t = &f.lexed.toks;
    for d in graph.fns.iter().filter(|d| d.file == file_idx) {
        let (lo, hi) = d.body;
        let mut first_revoke: Option<usize> = None;
        let mut first_redispatch: Option<(usize, &str)> = None;
        for i in lo..=hi.min(t.len() - 1) {
            if t[i].kind != TokKind::Ident || !t.get(i + 1).is_some_and(|x| x.is("(")) {
                continue;
            }
            let name = t[i].text.as_str();
            if name == "revoke_lease" && first_revoke.is_none() {
                first_revoke = Some(i);
            }
            if REDISPATCH.contains(&name) && first_redispatch.is_none() {
                first_redispatch = Some((i, t[i].text.as_str()));
            }
        }
        if let (Some(r), Some((rd, rd_name))) = (first_revoke, first_redispatch) {
            if rd < r {
                let line = t[rd].line;
                push(
                    report,
                    f,
                    line,
                    format!(
                        "`{rd_name}` re-dispatches units before `revoke_lease` in \
                         `{}`: the old owner's epoch is still live while new \
                         ownership is created, so its in-flight writes cannot be \
                         fence-rejected — revoke first",
                        d.name
                    ),
                );
            }
        }
    }
}

fn push(report: &mut Report, f: &SourceFile, line: u32, message: String) {
    let finding = Finding::new("effect-origin", &f.rel, line, message);
    report.push(if f.is_waived(line, "effect-origin") {
        finding.waived()
    } else {
        finding
    });
}
