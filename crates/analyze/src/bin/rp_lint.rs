//! rp_lint — run the workspace static-analysis pass.
//!
//! Usage:
//!   rp_lint [--json] [--root DIR] [--bless] [--emit-dot DIR] [--explain RULE]
//!           [--timings] [--waivers] [--strict]
//!
//! Exit code 1 when any unwaived fatal finding remains (or on usage error),
//! 0 otherwise.

use std::path::PathBuf;
use std::process::ExitCode;

use rp_analyze::{report, run_pass, scan, waivers, Options};

const USAGE: &str = "\
rp_lint: workspace static-analysis pass (rp-analyze)

USAGE:
    rp_lint [OPTIONS]

OPTIONS:
    --json            Emit findings as JSON on stdout
    --root DIR        Workspace root (default: nearest [workspace] Cargo.toml)
    --bless           Rewrite lockorder.toml and lint_baseline.toml from the
                      current tree instead of checking against them
    --emit-dot DIR    Write lifecycle DOT graphs into DIR
    --explain RULE    Print the long description of one rule and exit
                      (or list all rules when RULE is omitted)
    --timings         Print per-rule wall time to stderr after the pass
    --waivers         List every inline waiver (file, line, rules, reason)
                      and exit without running the rules
    --strict          Promote waived prep-purity findings to fatal (also
                      enabled by RP_LINT_STRICT=1; used under sanitizers)
    -h, --help        Show this help
";

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut opts = Options::default();
    let mut explain: Option<Option<String>> = None;
    let mut list_waivers = false;
    if std::env::var("RP_LINT_STRICT").is_ok_and(|v| v == "1") {
        opts.strict = true;
    }

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--bless" => opts.bless = true,
            "--timings" => opts.timings = true,
            "--waivers" => list_waivers = true,
            "--strict" => opts.strict = true,
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage_error("--root needs a directory"),
            },
            "--emit-dot" => match args.next() {
                Some(d) => opts.emit_dot = Some(PathBuf::from(d)),
                None => return usage_error("--emit-dot needs a directory"),
            },
            "--explain" => explain = Some(args.next()),
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if let Some(rule) = explain {
        return match rule {
            Some(r) => match report::explain(&r) {
                Some(doc) => {
                    println!("{doc}");
                    ExitCode::SUCCESS
                }
                None => usage_error(&format!(
                    "unknown rule `{r}`; rules: {}",
                    report::RULES.join(", ")
                )),
            },
            None => {
                println!("rules: {}", report::RULES.join(", "));
                println!("run `rp_lint --explain <rule>` for details");
                ExitCode::SUCCESS
            }
        };
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match scan::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("rp_lint: no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    if list_waivers {
        return match scan::load_workspace(&root) {
            Ok(files) => {
                print!("{}", waivers::render(&waivers::collect(&files)));
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("rp_lint: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let pass = match run_pass(&root, &opts) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("rp_lint: {e}");
            return ExitCode::FAILURE;
        }
    };

    if opts.bless {
        eprintln!("rp_lint: blessed lockorder.toml and lint_baseline.toml");
    }
    if json {
        print!("{}", pass.report.render_json());
    } else {
        print!("{}", pass.report.render_text());
    }
    if opts.timings {
        let total: f64 = pass.timings.iter().map(|(_, s)| s).sum();
        for (rule, secs) in &pass.timings {
            eprintln!("rp_lint: {rule:<20} {:8.2} ms", secs * 1e3);
        }
        eprintln!("rp_lint: {:<20} {:8.2} ms", "total", total * 1e3);
    }

    if pass.report.fatal_count() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("rp_lint: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}
