//! Rule `lock-order`: static deadlock detection over Mutex acquisitions.
//!
//! A `.lock()` made while an earlier guard is still live records an ordering
//! edge `held -> acquired` (names qualified by file stem). Cycles in the
//! resulting graph are potential deadlocks and always fail; acyclic edges
//! must match the blessed set in `lockorder.toml` so any new nesting gets a
//! human review before it can pass CI.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::baseline;
use crate::lexer::TokKind;
use crate::report::{Finding, Report};
use crate::scan::SourceFile;

const RULE: &str = "lock-order";

/// Edge `(held, acquired)` -> first observed site `(file, line)`.
pub type EdgeMap = BTreeMap<(String, String), (String, u32)>;

#[derive(Debug, Clone)]
struct Guard {
    name: String,
    depth: i32,
    let_bound: bool,
    /// The `let` binding's identifier, when there is one — lets an explicit
    /// `drop(guard)` release the guard early.
    binding: Option<String>,
}

/// Normalized receiver of a `.lock()` call ending just before the dot at
/// `dot`. Index expressions collapse to `[_]` so `slots[i]` and `slots[j]`
/// name the same lock family.
fn lock_receiver(t: &[crate::lexer::Tok], dot: usize) -> Option<String> {
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot; // index of the `.` before `lock`
    loop {
        if i == 0 {
            break;
        }
        let prev = i - 1;
        if t[prev].is("]") {
            // Collapse the index expression.
            let mut depth = 0i32;
            let mut j = prev;
            loop {
                if t[j].is("]") {
                    depth += 1;
                } else if t[j].is("[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            parts.push("[_]".to_string());
            i = j;
            continue;
        }
        if t[prev].kind == TokKind::Ident {
            parts.push(t[prev].text.clone());
            if prev >= 1 && t[prev - 1].is(".") {
                i = prev - 1;
                continue;
            }
        }
        break;
    }
    if parts.is_empty() {
        return None;
    }
    parts.reverse();
    let mut name = String::new();
    for p in parts {
        if p == "[_]" {
            name.push_str("[_]");
        } else {
            if !name.is_empty() {
                name.push('.');
            }
            name.push_str(&p);
        }
    }
    Some(name)
}

/// Collect lock-ordering edges from one file.
pub fn collect_edges(file: &SourceFile, edges: &mut EdgeMap) {
    let t = &file.lexed.toks;
    let stem = Path::new(&file.rel)
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| file.rel.clone());
    let mut live: Vec<Guard> = Vec::new();
    let mut depth = 0i32;

    for i in 0..t.len() {
        if t[i].is("{") {
            depth += 1;
        } else if t[i].is("}") {
            depth -= 1;
            live.retain(|g| g.depth <= depth);
        } else if t[i].is(";") {
            live.retain(|g| g.let_bound || g.depth != depth);
        } else if t[i].is("fn") {
            live.clear();
        } else if t[i].is("drop") && i + 2 < t.len() && t[i + 1].is("(") {
            let dropped = t[i + 2].text.clone();
            live.retain(|g| g.binding.as_deref() != Some(dropped.as_str()));
        } else if t[i].is("lock")
            && i >= 2
            && t[i - 1].is(".")
            && t.get(i + 1).is_some_and(|x| x.is("("))
        {
            let Some(recv) = lock_receiver(t, i - 1) else {
                continue;
            };
            let qual = format!("{stem}::{recv}");
            for g in &live {
                if g.name != qual {
                    edges
                        .entry((g.name.clone(), qual.clone()))
                        .or_insert((file.rel.clone(), t[i].line));
                }
            }
            // Back-scan for `let` in this statement to decide lifetime and
            // capture the binding name for explicit-drop tracking.
            let mut j = i;
            while j > 0 && !(t[j].is(";") || t[j].is("{") || t[j].is("}")) {
                j -= 1;
            }
            let stmt = &t[j..i];
            let let_pos = stmt.iter().position(|x| x.is("let"));
            let binding = let_pos.and_then(|p| {
                stmt[p + 1..]
                    .iter()
                    .find(|x| x.kind == TokKind::Ident && !x.is("mut"))
                    .map(|x| x.text.clone())
            });
            live.push(Guard {
                name: qual,
                depth,
                let_bound: let_pos.is_some(),
                binding,
            });
        }
    }
}

/// DFS cycle search; returns one cycle as a node path if any exists.
/// (Lock graphs here are tiny — a handful of nodes — so recursion depth is
/// never a concern.)
fn find_cycle(adj: &BTreeMap<String, BTreeSet<String>>) -> Option<Vec<String>> {
    fn dfs(
        node: &str,
        adj: &BTreeMap<String, BTreeSet<String>>,
        on_path: &mut Vec<String>,
        done: &mut BTreeSet<String>,
    ) -> Option<Vec<String>> {
        if done.contains(node) {
            return None;
        }
        if let Some(pos) = on_path.iter().position(|p| p == node) {
            let mut cycle = on_path[pos..].to_vec();
            cycle.push(node.to_string());
            return Some(cycle);
        }
        on_path.push(node.to_string());
        if let Some(nexts) = adj.get(node) {
            for next in nexts {
                if let Some(cycle) = dfs(next, adj, on_path, done) {
                    return Some(cycle);
                }
            }
        }
        on_path.pop();
        done.insert(node.to_string());
        None
    }

    let mut done = BTreeSet::new();
    for start in adj.keys() {
        let mut on_path = Vec::new();
        if let Some(cycle) = dfs(start, adj, &mut on_path, &mut done) {
            return Some(cycle);
        }
    }
    None
}

/// Run the rule: collect edges, detect cycles, diff against the blessed set.
///
/// With `bless`, rewrites `lockorder.toml` to the currently observed edges
/// and reports nothing.
pub fn check(
    files: &[SourceFile],
    root: &Path,
    bless: bool,
    report: &mut Report,
) -> std::io::Result<EdgeMap> {
    let mut edges = EdgeMap::new();
    for f in files {
        collect_edges(f, &mut edges);
    }

    let toml_path = root.join("lockorder.toml");
    if bless {
        baseline::write_lock_order(&toml_path, &edges)?;
        return Ok(edges);
    }

    // Cycle detection is unconditional: a blessed deadlock is still a
    // deadlock.
    let mut adj: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.clone()).or_default().insert(b.clone());
    }
    if let Some(cycle) = find_cycle(&adj) {
        let first = cycle.first().cloned().unwrap_or_default();
        let site = edges
            .iter()
            .find(|((a, _), _)| *a == first)
            .map(|(_, s)| s.clone())
            .unwrap_or_else(|| ("lockorder.toml".to_string(), 0));
        report.push(Finding::new(
            RULE,
            &site.0,
            site.1,
            format!(
                "lock-order cycle (potential deadlock): {}",
                cycle.join(" -> ")
            ),
        ));
    }

    let blessed = baseline::read_lock_order(&toml_path)?;
    for ((a, b), (file, line)) in &edges {
        if !blessed.contains(&(a.clone(), b.clone())) {
            let f = Finding::new(
                RULE,
                file,
                *line,
                format!(
                    "new lock nesting {a} -> {b} is not blessed in lockorder.toml; \
                     review the ordering and run `rp_lint --bless`"
                ),
            );
            let waived = files
                .iter()
                .find(|s| s.rel == *file)
                .is_some_and(|s| s.is_waived(*line, RULE));
            report.push(if waived { f.waived() } else { f });
        }
    }
    for (a, b) in &blessed {
        if !edges.contains_key(&(a.clone(), b.clone())) {
            report.push(
                Finding::new(
                    RULE,
                    "lockorder.toml",
                    0,
                    format!(
                        "blessed lock ordering {a} -> {b} is no longer observed; \
                         run `rp_lint --bless` to prune it"
                    ),
                )
                .info(),
            );
        }
    }
    Ok(edges)
}
