//! Rule `lookahead-coverage`: every latency that feeds cross-domain
//! scheduling must be registered as lookahead.
//!
//! The conservative PDES mode computes its safe horizon from the minimum
//! registered lookahead (`note_lookahead`/`note_lookahead_from`). A
//! component that schedules cross-domain work with a delay it never
//! registered silently *shrinks* the true coupling interval below the
//! claimed one — the engine then prepares events it should not, and the
//! bug surfaces hours later as a differential mismatch with no
//! attribution.
//!
//! The rule collects two kinds of *sources* in `crates/sim-core` and
//! `crates/core` library code (the engine and its telemetry, which
//! implement the mechanism, are exempt):
//!
//!   - every explicitly cross-domain schedule
//!     (`schedule_{at,in}_domain`, `schedule_split_{at,in}`), always;
//!   - every plain `schedule_at/in` whose delay expression mentions a
//!     latency-like identifier (`latency`, `delay`, `period`, `tick`,
//!     `jitter`, `poll`, `interval`, `rtt`, `ideal`, `timeout`,
//!     `heartbeat`, `gap`) — the lexical signature of a propagation
//!     delay, as opposed to a pure work duration.
//!
//! Each source is *covered* when a registration in the same function or
//! any transitive caller mentions one of the same delay identifiers
//! (duration constructors like `SimDuration::from_secs` are ignored on
//! both sides). A constant-delay source is covered by any in-scope
//! registration. Uncovered sources are fatal; waive an intra-domain
//! schedule that genuinely makes no cross-domain claim with
//! `// rp-lint: allow(lookahead-coverage): <why>`.

use std::collections::BTreeSet;

use crate::callgraph::{call_args, CallGraph};
use crate::lexer::TokKind;
use crate::report::{Finding, Report};
use crate::scan::SourceFile;

const SCOPE_PREFIXES: &[&str] = &["crates/sim-core/", "crates/core/"];

/// Files implementing the lookahead mechanism itself.
const EXEMPT_FILES: &[&str] = &[
    "crates/sim-core/src/engine.rs",
    "crates/sim-core/src/telemetry.rs",
];

/// Schedules that are cross-domain by construction.
const DOMAIN_SCHEDULES: &[&str] = &[
    "schedule_at_domain",
    "schedule_in_domain",
    "schedule_split_at",
    "schedule_split_in",
];

/// Identifier fragments that mark a delay expression as a propagation
/// latency rather than a work duration.
const LATENCY_KEYWORDS: &[&str] = &[
    "latency",
    "delay",
    "period",
    "tick",
    "jitter",
    "poll",
    "interval",
    "rtt",
    "ideal",
    "timeout",
    "heartbeat",
    "gap",
];

/// Constructor/combinator names that appear inside duration expressions
/// but carry no source identity.
const DELAY_NOISE: &[&str] = &[
    "SimDuration",
    "SimTime",
    "from_secs",
    "from_millis",
    "from_micros",
    "from_secs_f64",
    "max",
    "min",
    "ZERO",
    "mul_f64",
    "saturating_sub",
    "since",
    "now",
];

/// A `note_lookahead[_from]` call: its label, delay identifiers, and the
/// fn it sits in.
struct Registration {
    label: String,
    idents: BTreeSet<String>,
    fn_idx: Option<usize>,
}

pub fn check(files: &[SourceFile], graph: &CallGraph, report: &mut Report) {
    // Pass 1: collect every registration site in scope (registrations in
    // exempt files still count — the engine's own tests register).
    let mut regs: Vec<Registration> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if !SCOPE_PREFIXES.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        let t = &f.lexed.toks;
        for i in 0..t.len() {
            let from = t[i].is("note_lookahead_from");
            let plain = t[i].is("note_lookahead");
            if !(from || plain)
                || !t.get(i + 1).is_some_and(|x| x.is("("))
                || (i >= 1 && t[i - 1].is("fn"))
                || f.is_test_code(t[i].line)
            {
                continue;
            }
            let args = call_args(t, i + 1);
            let (label, delay_arg) = if from {
                let label = args
                    .first()
                    .and_then(|&(lo, hi)| {
                        t[lo..=hi.min(t.len() - 1)]
                            .iter()
                            .find_map(|x| x.str_content())
                    })
                    .unwrap_or("?")
                    .to_string();
                (label, args.get(1).copied())
            } else {
                ("unlabeled".to_string(), args.first().copied())
            };
            let idents = delay_arg.map(|r| delay_idents(t, r)).unwrap_or_default();
            regs.push(Registration {
                label,
                idents,
                fn_idx: graph.fn_at(fi, i),
            });
        }
    }

    // Pass 2: check every source against the in-scope registrations.
    for (fi, f) in files.iter().enumerate() {
        if !SCOPE_PREFIXES.iter().any(|p| f.rel.starts_with(p))
            || EXEMPT_FILES.contains(&f.rel.as_str())
        {
            continue;
        }
        let t = &f.lexed.toks;
        for i in 0..t.len() {
            if t[i].kind != TokKind::Ident
                || !t.get(i + 1).is_some_and(|x| x.is("("))
                || (i >= 1 && t[i - 1].is("fn"))
                || f.is_test_code(t[i].line)
            {
                continue;
            }
            let name = t[i].text.as_str();
            let domain_tagged = DOMAIN_SCHEDULES.contains(&name);
            let plain = name == "schedule_at" || name == "schedule_in";
            if !domain_tagged && !plain {
                continue;
            }
            let args = call_args(t, i + 1);
            let Some(&delay_arg) = args.first() else {
                continue;
            };
            let d = delay_idents(t, delay_arg);
            if plain && !d.iter().any(|id| is_latency_ident(id)) {
                continue; // plain schedule of a work duration — no claim
            }
            let line = t[i].line;
            let fn_idx = graph.fn_at(fi, i);
            let in_scope: Vec<&Registration> = match fn_idx {
                Some(fx) => {
                    let anc = graph.ancestors_of(fx);
                    regs.iter()
                        .filter(|r| r.fn_idx.is_some_and(|rf| anc.contains(&rf)))
                        .collect()
                }
                None => Vec::new(),
            };
            let covered = if d.is_empty() {
                !in_scope.is_empty()
            } else {
                in_scope.iter().any(|r| !r.idents.is_disjoint(&d))
            };
            if covered {
                continue;
            }
            let srcs: Vec<String> = d.iter().cloned().collect();
            let desc = if srcs.is_empty() {
                "constant delay".to_string()
            } else {
                format!("delay from `{}`", srcs.join("`, `"))
            };
            let known: BTreeSet<&str> = regs.iter().map(|r| r.label.as_str()).collect();
            let finding = Finding::new(
                "lookahead-coverage",
                &f.rel,
                line,
                format!(
                    "`{name}` feeds cross-domain scheduling with {desc} that no \
                     reachable note_lookahead registration covers (registered \
                     sources: {}); register it with note_lookahead_from so the \
                     safe horizon accounts for it, or waive an intra-domain \
                     schedule with a justification",
                    if known.is_empty() {
                        "none".to_string()
                    } else {
                        known.into_iter().collect::<Vec<_>>().join(", ")
                    }
                ),
            );
            report.push(if f.is_waived(line, "lookahead-coverage") {
                finding.waived()
            } else {
                finding
            });
        }
    }
}

/// Identifiers carrying source identity in a delay expression.
fn delay_idents(t: &[crate::lexer::Tok], (lo, hi): (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for x in &t[lo..=hi.min(t.len() - 1)] {
        if x.kind == TokKind::Ident && !DELAY_NOISE.contains(&x.text.as_str()) {
            out.insert(x.text.clone());
        }
    }
    out
}

fn is_latency_ident(id: &str) -> bool {
    let l = id.to_ascii_lowercase();
    LATENCY_KEYWORDS.iter().any(|k| l.contains(k))
}
