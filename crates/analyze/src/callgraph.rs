//! Workspace-level call graph over the lexical token stream.
//!
//! Extracts every `fn` definition (with its `impl` type qualifier and body
//! token range) and every call site inside those bodies, then resolves
//! calls to definitions:
//!
//!   - qualified calls `Type::name(...)` resolve to fns named `name`
//!     defined in an `impl Type` block (falling back to free fns named
//!     `name`, then to every `name`, when no qualified match exists);
//!   - method calls `recv.name(...)` and free calls `name(...)` resolve
//!     **receiver-blind**: every definition named `name` is a candidate.
//!
//! The graph is intentionally over-approximate — receiver-blind matching
//! can add edges that no concrete type permits — which is the safe
//! direction for purity lints (false paths are waivable; missed paths
//! would be silent unsoundness). Definitions inside test code are
//! excluded so lib-side reachability can never route through a test
//! helper that happens to share a name.

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Tok, TokKind};
use crate::scan::SourceFile;

/// One `fn` definition.
#[derive(Debug, Clone)]
pub struct FnDef {
    pub name: String,
    /// `impl` type qualifier (`TransitionDraft` for
    /// `impl TransitionDraft { fn format ... }`), empty for free fns.
    pub qual: String,
    /// Index into the `files` slice the graph was built from.
    pub file: usize,
    pub line: u32,
    /// Token index range of the body: `{` .. matching `}` (inclusive).
    pub body: (usize, usize),
}

/// One call site inside a function body (or any token range).
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    /// `Type::name(...)` qualifier, empty for method/free calls.
    pub qual: String,
    /// True for `recv.name(...)` method calls (always receiver-blind).
    pub method: bool,
    pub line: u32,
}

/// Keywords and value constructors that look like calls but are not.
const NON_CALLS: &[&str] = &[
    "if", "while", "match", "return", "loop", "for", "in", "as", "let", "else", "fn", "impl",
    "move", "Some", "Ok", "Err", "None", "Box", "Rc", "RefCell", "Cell", "Vec", "String",
];

pub struct CallGraph {
    pub fns: Vec<FnDef>,
    /// Call sites per function (parallel to `fns`).
    pub calls: Vec<Vec<CallSite>>,
    by_name: BTreeMap<String, Vec<usize>>,
    /// Resolved adjacency: caller fn index -> callee fn indices.
    adj: Vec<Vec<usize>>,
    /// Reverse adjacency: callee fn index -> caller fn indices.
    radj: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Build the graph over every non-test fn definition in `files`.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut fns: Vec<FnDef> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            collect_fn_defs(f, fi, &mut fns);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, d) in fns.iter().enumerate() {
            by_name.entry(d.name.clone()).or_default().push(i);
        }
        let mut calls: Vec<Vec<CallSite>> = vec![Vec::new(); fns.len()];
        for (i, d) in fns.iter().enumerate() {
            let toks = &files[d.file].lexed.toks;
            calls[i] = extract_calls(toks, d.body);
        }
        // Attribute each call to the *innermost* enclosing fn: a call whose
        // line sits inside a strictly smaller nested fn body of the same
        // file belongs to that nested fn, not the parent.
        for i in 0..fns.len() {
            let (bs, be) = fns[i].body;
            let file = fns[i].file;
            let nested: Vec<(usize, usize)> = fns
                .iter()
                .filter(|d| d.file == file && d.body.0 > bs && d.body.1 < be)
                .map(|d| d.body)
                .collect();
            if nested.is_empty() {
                continue;
            }
            let toks = &files[file].lexed.toks;
            let nested_lines: BTreeSet<u32> = nested
                .iter()
                .flat_map(|&(s, e)| {
                    let lo = toks[s].line;
                    let hi = toks[e.min(toks.len() - 1)].line;
                    (lo..=hi).collect::<Vec<u32>>()
                })
                .collect();
            calls[i].retain(|c| !nested_lines.contains(&c.line));
        }

        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        let mut radj: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
        for (i, sites) in calls.iter().enumerate() {
            let mut targets: BTreeSet<usize> = BTreeSet::new();
            for site in sites {
                targets.extend(resolve_site(&fns, &by_name, site));
            }
            for &t in &targets {
                adj[i].push(t);
                radj[t].push(i);
            }
        }
        CallGraph {
            fns,
            calls,
            by_name,
            adj,
            radj,
        }
    }

    /// Definitions a call site resolves to.
    pub fn resolve(&self, site: &CallSite) -> Vec<usize> {
        resolve_site(&self.fns, &self.by_name, site)
    }

    /// Index of the innermost fn whose body contains token `tok` of file
    /// `file`.
    pub fn fn_at(&self, file: usize, tok: usize) -> Option<usize> {
        innermost_fn_of(&self.fns, file, tok)
    }

    /// Every fn reachable from `start` (excluding `start` itself unless
    /// it is reachable through a cycle). Cycle-safe.
    pub fn reachable_from(&self, start: usize) -> BTreeSet<usize> {
        let mut seen = BTreeSet::new();
        let mut q = VecDeque::from(self.adj[start].clone());
        while let Some(i) = q.pop_front() {
            if seen.insert(i) {
                q.extend(self.adj[i].iter().copied());
            }
        }
        seen
    }

    /// Every fn that can reach `target` (its transitive callers),
    /// including `target` itself. Cycle-safe.
    pub fn ancestors_of(&self, target: usize) -> BTreeSet<usize> {
        let mut seen = BTreeSet::from([target]);
        let mut q = VecDeque::from(self.radj[target].clone());
        while let Some(i) = q.pop_front() {
            if seen.insert(i) {
                q.extend(self.radj[i].iter().copied());
            }
        }
        seen
    }

    /// BFS from the definitions the `seeds` call sites resolve to, looking
    /// for a fn satisfying `pred`. Returns the path of fn names from the
    /// first seed hop to the match (for finding messages). Cycle-safe.
    pub fn path_to(
        &self,
        seeds: &[CallSite],
        mut pred: impl FnMut(usize) -> bool,
    ) -> Option<Vec<String>> {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut q = VecDeque::new();
        for s in seeds {
            for d in self.resolve(s) {
                if let Entry::Vacant(e) = parent.entry(d) {
                    e.insert(None);
                    q.push_back(d);
                }
            }
        }
        while let Some(i) = q.pop_front() {
            if pred(i) {
                let mut path = vec![self.fns[i].name.clone()];
                let mut cur = i;
                while let Some(&Some(p)) = parent.get(&cur) {
                    path.push(self.fns[p].name.clone());
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for &n in &self.adj[i] {
                if let Entry::Vacant(e) = parent.entry(n) {
                    e.insert(Some(i));
                    q.push_back(n);
                }
            }
        }
        None
    }
}

fn innermost_fn_of(fns: &[FnDef], file: usize, tok: usize) -> Option<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, d)| d.file == file && tok > d.body.0 && tok < d.body.1)
        .min_by_key(|(_, d)| d.body.1 - d.body.0)
        .map(|(i, _)| i)
}

fn resolve_site(
    fns: &[FnDef],
    by_name: &BTreeMap<String, Vec<usize>>,
    site: &CallSite,
) -> Vec<usize> {
    let Some(cands) = by_name.get(&site.name) else {
        return Vec::new();
    };
    if !site.method && !site.qual.is_empty() {
        let qualified: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| fns[i].qual == site.qual)
            .collect();
        if !qualified.is_empty() {
            return qualified;
        }
        // Crate-path calls (`rp_sim::metric_key(...)`): fall back to free
        // fns of that name before going fully receiver-blind.
        let free: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| fns[i].qual.is_empty())
            .collect();
        if !free.is_empty() {
            return free;
        }
    }
    cands.clone()
}

/// Scan `file` for fn definitions outside test code, tracking `impl`
/// blocks for type qualifiers.
fn collect_fn_defs(file: &SourceFile, file_idx: usize, out: &mut Vec<FnDef>) {
    let t = &file.lexed.toks;
    // impl scopes: (type name, body token range).
    let mut impls: Vec<(String, (usize, usize))> = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if t[i].is("impl") {
            if let Some((name, body)) = parse_impl_header(t, i) {
                impls.push((name, body));
            }
        }
        i += 1;
    }

    i = 0;
    while i < t.len() {
        if !t[i].is("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = t.get(i + 1).filter(|x| x.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        if file.is_test_code(t[i].line) {
            i += 1;
            continue;
        }
        // Find the body `{`, skipping the signature (angle/paren aware);
        // `;` first means a bodyless trait method declaration.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut paren = 0i32;
        while j < t.len() {
            if t[j].is("<") {
                angle += 1;
            } else if t[j].is(">") {
                angle -= 1;
            } else if t[j].is("(") {
                paren += 1;
            } else if t[j].is(")") {
                paren -= 1;
            } else if angle <= 0 && paren == 0 && (t[j].is("{") || t[j].is(";")) {
                break;
            }
            j += 1;
        }
        if j >= t.len() || !t[j].is("{") {
            i = j;
            continue;
        }
        let open = j;
        let mut depth = 0i32;
        while j < t.len() {
            if t[j].is("{") {
                depth += 1;
            } else if t[j].is("}") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        let close = j.min(t.len() - 1);
        let qual = impls
            .iter()
            .filter(|(_, (s, e))| open > *s && open < *e)
            .min_by_key(|(_, (s, e))| e - s)
            .map(|(n, _)| n.clone())
            .unwrap_or_default();
        out.push(FnDef {
            name: name_tok.text.clone(),
            qual,
            file: file_idx,
            line: t[i].line,
            body: (open, close),
        });
        i += 1; // do not skip the body: nested fns get their own defs
    }
}

/// Parse `impl<...> Type<...> {` / `impl Trait for Type {` headed at `i`:
/// returns (type name, body token range).
fn parse_impl_header(t: &[Tok], i: usize) -> Option<(String, (usize, usize))> {
    let mut j = i + 1;
    let mut angle = 0i32;
    let mut idents_at_top: Vec<usize> = Vec::new();
    let mut after_for: Option<usize> = None;
    let mut saw_for = false;
    while j < t.len() && !t[j].is("{") {
        if t[j].is("<") {
            angle += 1;
        } else if t[j].is(">") {
            angle -= 1;
        } else if angle == 0 && t[j].is("for") {
            saw_for = true;
        } else if angle == 0 && t[j].kind == TokKind::Ident {
            if saw_for && after_for.is_none() {
                after_for = Some(j);
            }
            idents_at_top.push(j);
        }
        j += 1;
    }
    if j >= t.len() {
        return None;
    }
    // `impl Trait for Type` names `Type`; `impl Type` names the last
    // top-level path segment before the brace (handles `impl a::B`).
    let name_idx = after_for.or_else(|| idents_at_top.last().copied())?;
    let open = j;
    let mut depth = 0i32;
    while j < t.len() {
        if t[j].is("{") {
            depth += 1;
        } else if t[j].is("}") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        j += 1;
    }
    Some((t[name_idx].text.clone(), (open, j.min(t.len() - 1))))
}

/// Split a call's argument list into top-level token ranges (inclusive).
/// `open` is the index of the call's `(`. Commas nested in parens,
/// brackets, braces, or closure parameter pipes do not split.
pub fn call_args(t: &[Tok], open: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if !t.get(open).is_some_and(|x| x.is("(")) {
        return out;
    }
    let mut depth = 1i32; // paren/bracket/brace nesting inside the call
    let mut in_pipes = false; // closure parameter list `|a, b|`
    let mut start = open + 1;
    let mut i = open + 1;
    while i < t.len() {
        let x = &t[i];
        if x.is("(") || x.is("[") || x.is("{") {
            depth += 1;
        } else if x.is(")") || x.is("]") || x.is("}") {
            depth -= 1;
            if depth == 0 {
                if i > start {
                    out.push((start, i - 1));
                }
                break;
            }
        } else if depth == 1 && x.is("|") {
            in_pipes = !in_pipes;
        } else if depth == 1 && !in_pipes && x.is(",") {
            if i > start {
                out.push((start, i - 1));
            }
            start = i + 1;
        }
        i += 1;
    }
    out
}

/// Extract call sites from tokens in `range` (inclusive bounds).
pub fn extract_calls(t: &[Tok], range: (usize, usize)) -> Vec<CallSite> {
    let (lo, hi) = range;
    let mut out = Vec::new();
    let mut i = lo;
    while i <= hi.min(t.len().saturating_sub(1)) {
        let is_call = t[i].kind == TokKind::Ident
            && t.get(i + 1).is_some_and(|x| x.is("("))
            && !NON_CALLS.contains(&t[i].text.as_str())
            && !(i >= 1 && t[i - 1].is("fn"));
        if !is_call {
            i += 1;
            continue;
        }
        let method = i >= 1 && t[i - 1].is(".");
        let qual = if !method && i >= 2 && t[i - 1].is("::") && t[i - 2].kind == TokKind::Ident {
            t[i - 2].text.clone()
        } else {
            String::new()
        };
        out.push(CallSite {
            name: t[i].text.clone(),
            qual,
            method,
            line: t[i].line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{FileKind, SourceFile};

    fn lib(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_source(rel, FileKind::Lib, src)
    }

    fn find(g: &CallGraph, name: &str) -> usize {
        g.fns
            .iter()
            .position(|d| d.name == name)
            .unwrap_or_else(|| panic!("fn {name} not found"))
    }

    #[test]
    fn recursion_terminates_and_reaches_both_directions() {
        let src = r#"
fn a() { b(); }
fn b() { a(); c(); }
fn c() {}
"#;
        let files = vec![lib("x.rs", src)];
        let g = CallGraph::build(&files);
        let (a, b, c) = (find(&g, "a"), find(&g, "b"), find(&g, "c"));
        let ra = g.reachable_from(a);
        assert!(ra.contains(&b) && ra.contains(&c));
        assert!(
            ra.contains(&a),
            "a reaches itself through the a->b->a cycle"
        );
        let anc = g.ancestors_of(c);
        assert!(anc.contains(&a) && anc.contains(&b) && anc.contains(&c));
    }

    #[test]
    fn method_calls_resolve_receiver_blind_across_impls() {
        let src = r#"
struct A;
struct B;
impl A {
    fn poke(&self) {}
}
impl B {
    fn poke(&self) {}
}
fn drive(a: &A) { a.poke(); }
"#;
        let files = vec![lib("x.rs", src)];
        let g = CallGraph::build(&files);
        let drive = find(&g, "drive");
        // `.poke()` is receiver-blind: both impls are candidates.
        let r = g.reachable_from(drive);
        let pokes: Vec<&FnDef> = g.fns.iter().filter(|d| d.name == "poke").collect();
        assert_eq!(pokes.len(), 2);
        assert_eq!(r.len(), 2, "both poke defs reachable receiver-blind: {r:?}");
    }

    #[test]
    fn qualified_calls_resolve_to_the_named_impl_only() {
        let src = r#"
struct A;
struct B;
impl A {
    fn mk() -> A { A }
}
impl B {
    fn mk() -> B { B }
}
fn drive() { let _x = A::mk(); }
"#;
        let files = vec![lib("x.rs", src)];
        let g = CallGraph::build(&files);
        let drive = find(&g, "drive");
        let r = g.reachable_from(drive);
        assert_eq!(r.len(), 1, "only A::mk reachable: {r:?}");
        let only = *r.iter().next().expect("one fn");
        assert_eq!(g.fns[only].qual, "A");
    }

    #[test]
    fn trait_impls_qualify_by_the_implementing_type() {
        let src = r#"
struct A;
impl Clone for A {
    fn clone(&self) -> A { A }
}
"#;
        let files = vec![lib("x.rs", src)];
        let g = CallGraph::build(&files);
        let c = find(&g, "clone");
        assert_eq!(g.fns[c].qual, "A");
    }

    #[test]
    fn path_to_reports_the_call_chain() {
        let src = r#"
fn outer() { mid(); }
fn mid() { sink_here(); }
fn sink_here() {}
"#;
        let files = vec![lib("x.rs", src)];
        let g = CallGraph::build(&files);
        let seeds = extract_calls(&files[0].lexed.toks, g.fns[find(&g, "outer")].body);
        let path = g
            .path_to(&seeds, |i| g.fns[i].name == "sink_here")
            .expect("path exists");
        assert_eq!(path, vec!["mid".to_string(), "sink_here".to_string()]);
    }

    #[test]
    fn test_code_definitions_are_excluded() {
        let src = r#"
fn lib_fn() { helper(); }
#[cfg(test)]
mod tests {
    fn helper() { panic!("test-only") }
}
"#;
        let files = vec![lib("x.rs", src)];
        let g = CallGraph::build(&files);
        assert!(g.fns.iter().all(|d| d.name != "helper"));
        assert!(g.reachable_from(find(&g, "lib_fn")).is_empty());
    }

    #[test]
    fn nested_fn_calls_are_not_attributed_to_the_parent() {
        let src = r#"
fn parent() {
    fn child() { deep(); }
    child();
}
fn deep() {}
"#;
        let files = vec![lib("x.rs", src)];
        let g = CallGraph::build(&files);
        let parent = find(&g, "parent");
        let names: Vec<&str> = g.calls[parent].iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"child"));
        assert!(
            !names.contains(&"deep"),
            "deep() belongs to child, not parent: {names:?}"
        );
        // Reachability still finds deep through child.
        assert!(g.reachable_from(parent).contains(&find(&g, "deep")));
    }
}
