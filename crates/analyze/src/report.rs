//! Findings, text/JSON rendering, and the `--explain` rule catalog.

/// One lint finding. `fatal` findings fail the pass; waived or
/// informational findings are reported but do not affect the exit code.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    pub waived: bool,
    pub fatal: bool,
}

impl Finding {
    pub fn new(rule: &'static str, file: &str, line: u32, message: impl Into<String>) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: message.into(),
            waived: false,
            fatal: true,
        }
    }

    pub fn info(mut self) -> Finding {
        self.fatal = false;
        self
    }

    pub fn waived(mut self) -> Finding {
        self.waived = true;
        self.fatal = false;
        self
    }
}

#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
}

impl Report {
    pub fn push(&mut self, f: Finding) {
        self.findings.push(f);
    }

    pub fn fatal_count(&self) -> usize {
        self.findings.iter().filter(|f| f.fatal).count()
    }

    /// Sort for stable output: file, line, rule.
    pub fn sort(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let tag = if f.waived {
                "waived"
            } else if f.fatal {
                "error"
            } else {
                "note"
            };
            out.push_str(&format!(
                "{tag}[{}] {}:{}: {}\n",
                f.rule, f.file, f.line, f.message
            ));
        }
        out.push_str(&format!(
            "rp_lint: {} finding(s), {} fatal, {} waived\n",
            self.findings.len(),
            self.fatal_count(),
            self.findings.iter().filter(|f| f.waived).count()
        ));
        out
    }

    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"rules\": [");
        for (i, r) in RULES.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", escape(r)));
        }
        out.push_str("],\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"waived\": {}, \"fatal\": {}}}",
                escape(f.rule),
                escape(&f.file),
                f.line,
                escape(&f.message),
                f.waived,
                f.fatal
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"summary\": {{\"total\": {}, \"fatal\": {}, \"waived\": {}}}\n}}\n",
            self.findings.len(),
            self.fatal_count(),
            self.findings.iter().filter(|f| f.waived).count()
        ));
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// All rule names, for `--explain` listing and waiver validation.
pub const RULES: &[&str] = &[
    "state-machine",
    "lock-order",
    "hash-iter",
    "wallclock",
    "par-hazard",
    "unwrap-ratchet",
    "span-balance",
    "prep-purity",
    "lookahead-coverage",
    "effect-origin",
    "stale-waiver",
];

/// Long-form documentation shown by `--explain <rule>`.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "state-machine" => {
            "state-machine: CU/pilot lifecycle conformance.\n\
             Parses the `can_transition_to` tables in crates/core/src/states.rs\n\
             into the legal-edge set, then extracts every literal transition the\n\
             workspace exercises: consecutive `.advance(_, State::X)` calls on the\n\
             same receiver at the same block depth form source->target chains\n\
             (`Guarded::<S>::new()` seeds a chain at New), `for s in [A, B, ...]`\n\
             loops over state arrays chain their elements, and positive\n\
             `A.can_transition_to(B)` assertions count as exercised edges.\n\
             Errors: a chained pair the table forbids (illegal transition), and a\n\
             table edge no call site exercises (dead transition). The analysis is\n\
             lexical and approximate: it assumes statements between two advance\n\
             calls do not themselves advance the receiver. Waive a deliberate\n\
             exception with `// rp-lint: allow(state-machine)`.\n\
             `--emit-dot <dir>` renders both lifecycles as Graphviz."
        }
        "lock-order" => {
            "lock-order: static deadlock detection over Mutex acquisitions.\n\
             Within each function, a `.lock()` call made while an earlier guard is\n\
             still live (let-bound: until its block closes; temporary: until the\n\
             end of the statement) records an ordering edge `held -> acquired`,\n\
             qualified by file stem. A cycle in the resulting graph is a potential\n\
             deadlock and always fails. Every edge must also appear in the blessed\n\
             set in lockorder.toml — a new nesting fails CI until a human reviews\n\
             it and re-blesses with `rp_lint --bless`."
        }
        "hash-iter" => {
            "hash-iter: trace-order nondeterminism from hash iteration.\n\
             HashMap/HashSet iteration order varies run to run; anything it feeds\n\
             (traces, metrics, reports, scheduling decisions) breaks the\n\
             same-seed => identical-trace contract. The rule tracks names declared\n\
             as HashMap/HashSet in each library file and flags `.iter()`,\n\
             `.keys()`, `.values()`, `.drain()`, `.into_iter()`, `.into_keys()`,\n\
             `.into_values()` and `for _ in &name` over them outside test code.\n\
             Fix by switching to BTreeMap/BTreeSet or sorting the drained items;\n\
             waive a provably order-insensitive use with\n\
             `// rp-lint: allow(hash-iter): <why order cannot escape>`."
        }
        "wallclock" => {
            "wallclock: host time read from virtual-time code.\n\
             `Instant::now()`, `SystemTime::now()` and `UNIX_EPOCH` in library\n\
             code make simulated results depend on host speed, violating\n\
             determinism. Allowed in crates/bench (host-side measurement is its\n\
             job), examples, tests and benches. Waive an intentional use with\n\
             `// rp-lint: allow(wallclock): <justification>`."
        }
        "par-hazard" => {
            "par-hazard: scheduling nondeterminism from the parallel engine.\n\
             The conservative PDES mode runs split-event prep closures on\n\
             worker threads, so code in crates/sim-core and crates/core must\n\
             not let thread identity or weakly-ordered atomics influence\n\
             results. The rule flags `Ordering::Relaxed`, `thread_local!`,\n\
             `thread::current()` and `ThreadId` in library code there.\n\
             Fix by using acquire/release (or stronger) orderings and engine\n\
             state instead of thread identity; waive a provably\n\
             order-insensitive use with\n\
             `// rp-lint: allow(par-hazard): <why results cannot differ>`."
        }
        "unwrap-ratchet" => {
            "unwrap-ratchet: panic-prone `.unwrap()`/`.expect()` budget.\n\
             Counts unwrap/expect calls in non-test library code per file and\n\
             compares against lint_baseline.toml. A count above the baseline\n\
             fails (the budget only ratchets down); a count below it is reported\n\
             as a note — run `rp_lint --bless` to tighten the baseline after a\n\
             cleanup. Prefer expectful messages that state the violated\n\
             invariant, or real error paths where a fault can reach the call."
        }
        "span-balance" => {
            "span-balance: every span opened must be closed or owned.\n\
             For each `let x = ...span_begin(...)` in library code the rule\n\
             requires, within the same function, either a `span_end(..., x)`\n\
             (including inside closures) or an escape that transfers ownership\n\
             (assignment into a field/struct, passing x to a non-span_attr call,\n\
             returning it). A span id that is dropped on the floor — discarded\n\
             result or a binding only ever fed to span_attr — can never be ended\n\
             and leaks an open span into the trace. Waive intentional leaks with\n\
             `// rp-lint: allow(span-balance): <why>`."
        }
        "prep-purity" => {
            "prep-purity: split-event prepare closures must stay pure.\n\
             The parallel engine runs the prep argument of schedule_split_at/in\n\
             on worker threads, concurrently within a batch; only the apply\n\
             closure runs on the main thread in deterministic (time, seq) order.\n\
             The rule finds every inline prep closure in crates/sim-core and\n\
             crates/core library code and walks the workspace call graph from\n\
             it, flagging any reachable apply-side effect: schedule_* calls,\n\
             coordination-store writes (roundtrip*, return_units*, push_units,\n\
             report_heartbeat, revoke_lease, ...), span_begin, metrics mutation\n\
             on a shared registry, and SimRng draws on shared state. Building\n\
             SpanDraft/MetricDraft/TransitionDraft values is the sanctioned\n\
             prep-side channel and is exempt, as are rng draws threaded through\n\
             the closure's own captured state. The graph is receiver-blind and\n\
             over-approximate; waive a provably-pure path with\n\
             `// rp-lint: allow(prep-purity): <why the call cannot take effect>`.\n\
             Under RP_LINT_STRICT=1 (the sanitizer CI stage) prep-purity\n\
             waivers are not honored."
        }
        "lookahead-coverage" => {
            "lookahead-coverage: every latency feeding cross-domain scheduling\n\
             must be registered as lookahead. The conservative PDES safe horizon\n\
             is the minimum registered via note_lookahead/note_lookahead_from; a\n\
             delay that schedules cross-domain work without a registration\n\
             silently shrinks the true coupling interval below the claimed one.\n\
             Sources: every schedule_{at,in}_domain / schedule_split_{at,in}\n\
             call, plus plain schedule_at/in whose delay expression mentions a\n\
             latency-like identifier (latency, delay, period, tick, jitter,\n\
             poll, interval, rtt, ideal, timeout, heartbeat, gap). A source is\n\
             covered when a registration in the same function or any transitive\n\
             caller shares one of its delay identifiers (duration constructors\n\
             are ignored); constant delays accept any in-scope registration.\n\
             Waive a genuinely intra-domain schedule with\n\
             `// rp-lint: allow(lookahead-coverage): <why no cross-domain claim>`."
        }
        "effect-origin" => {
            "effect-origin: coordination-store effects must thread a real\n\
             fencing origin. Fencing (DESIGN.md §9) rejects writes stamped with\n\
             a stale (PilotId, epoch) — but only when senders thread their\n\
             origin. In crates/core library code outside the store itself the\n\
             rule flags: (1) origin-less emission — calling roundtrip(...) or\n\
             return_units(...) instead of the _from variants (UM authority\n\
             writes like push_units are exempt: the manager is the fencing\n\
             authority); (2) fabricated origins — literal Some((PilotId(N), E))\n\
             tuples or numeric-literal epochs passed to _from calls (epochs\n\
             come from the lease table, not the call site); (3) re-dispatch\n\
             before revocation — a manager.rs function that calls both\n\
             revoke_lease and handle_pilot_loss/rebind must revoke first, so\n\
             the epoch bump fences the old owner before new ownership exists.\n\
             Waive with `// rp-lint: allow(effect-origin): <why fencing is not\n\
             bypassed>`."
        }
        "stale-waiver" => {
            "stale-waiver: inline waivers must keep earning their place.\n\
             After every pass, each `// rp-lint: allow(...)` comment is checked\n\
             against the findings it actually suppressed. A waiver that matched\n\
             nothing (the excused code was fixed or moved) or that names an\n\
             unknown rule (typo — it never worked) is reported at info level so\n\
             the exception inventory stays honest. unwrap-ratchet waivers are\n\
             exempt: they suppress counting, not findings. List the full\n\
             inventory with `rp_lint --waivers`."
        }
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let mut r = Report::default();
        r.push(Finding::new("wallclock", "a\"b.rs", 3, "msg\nline"));
        r.push(Finding::new("hash-iter", "c.rs", 1, "ok").waived());
        let j = r.render_json();
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("msg\\nline"));
        assert!(j.contains("\"fatal\": 1"));
        assert!(j.contains("\"waived\": 1"));
        assert_eq!(r.fatal_count(), 1);
    }

    #[test]
    fn every_rule_has_an_explanation() {
        for r in RULES {
            assert!(explain(r).is_some(), "{r}");
        }
        assert!(explain("no-such-rule").is_none());
    }
}
