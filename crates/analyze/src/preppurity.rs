//! Rule `prep-purity`: split-event prepare closures must stay pure.
//!
//! The parallel engine runs the prep argument of `schedule_split_at/in`
//! on worker threads, concurrently with other preps in the same batch.
//! The contract (engine.rs module docs) is that a prep only *computes* —
//! it builds `Send` draft values (`SpanDraft`, `MetricDraft`,
//! `TransitionDraft`) from captured state. Anything effectful must wait
//! for the apply closure, which the engine runs on the main thread in
//! deterministic (time, seq) order.
//!
//! This rule finds every inline prep closure in library code and walks
//! the call graph from it, flagging any reachable call into apply-side
//! APIs:
//!
//!   - `schedule_*` — scheduling from a worker races the event heap;
//!   - coordination-store writes (`roundtrip*`, `return_units*`,
//!     `push_units`, `report_heartbeat`, `revoke_lease`, ...) — store
//!     effects must be sequenced by the applied-effect watermark;
//!   - `span_begin` and direct metrics mutation (`incr`, `gauge_set`,
//!     `observe`, ...) on an engine/registry receiver — interning and
//!     counter order must match the serial path; drafts are the
//!     sanctioned channel (calls into the draft builder types are
//!     exempt);
//!   - `SimRng` draws on shared state (receiver rooted at
//!     `engine`/`eng`/`self` or through a `.rng` field) — a worker-side
//!     draw perturbs the deterministic stream. Draws on a closure-local
//!     rng threaded through captured state are allowed.
//!
//! The analysis is receiver-blind and over-approximate (see
//! `callgraph.rs`); waive a provably-pure path with
//! `// rp-lint: allow(prep-purity): <why the call cannot take effect>`.

use crate::callgraph::{call_args, extract_calls, CallGraph, CallSite};
use crate::lexer::{Tok, TokKind};
use crate::report::{Finding, Report};
use crate::scan::SourceFile;

/// Engine scheduling entry points (anything that mutates the event heap).
const SCHEDULE_SINKS: &[&str] = &[
    "schedule_at",
    "schedule_in",
    "schedule_now",
    "schedule_at_domain",
    "schedule_in_domain",
    "schedule_split_at",
    "schedule_split_in",
];

/// Coordination-store effect emitters. Deliberately distinctive names
/// only — generic verbs (`send`, `update`, `add`) would explode under
/// receiver-blind matching.
const STORE_SINKS: &[&str] = &[
    "send_from",
    "roundtrip",
    "roundtrip_from",
    "return_units",
    "return_units_from",
    "return_units_via",
    "push_units",
    "report_heartbeat",
    "revoke_lease",
    "acquire_lease",
    "take_pending",
];

/// Metrics-registry mutators. Only flagged on a shared receiver — the
/// same names on a `MetricDraft` builder are the sanctioned prep-side
/// channel.
const METRIC_SINKS: &[&str] = &["incr", "incr_labeled", "gauge_set", "observe"];

/// `SimRng` draw methods. Only flagged on a shared receiver.
const RNG_SINKS: &[&str] = &[
    "next_u64",
    "uniform",
    "uniform_u64",
    "chance",
    "standard_normal",
    "normal",
    "normal_min",
    "lognormal",
    "exponential",
];

/// Draft builder types whose methods are pure by construction: fns
/// defined in these impls are never treated as sinks, and reachability
/// does not descend into them.
const DRAFT_TYPES: &[&str] = &["SpanDraft", "MetricDraft", "TransitionDraft"];

/// Crates whose prep closures the parallel engine actually runs.
const PREP_PREFIXES: &[&str] = &["crates/sim-core/", "crates/core/"];

/// One impure call found in or reachable from a prep closure.
struct SinkHit {
    what: String,
    line: u32,
}

pub fn check(files: &[SourceFile], graph: &CallGraph, report: &mut Report) {
    for f in files.iter() {
        if !PREP_PREFIXES.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        let t = &f.lexed.toks;
        for i in 0..t.len() {
            let is_split = (t[i].is("schedule_split_at") || t[i].is("schedule_split_in"))
                && t.get(i + 1).is_some_and(|x| x.is("("))
                // Skip the engine's own definitions/forwarders.
                && !(i >= 1 && t[i - 1].is("fn"));
            if !is_split || f.is_test_code(t[i].line) {
                continue;
            }
            let args = call_args(t, i + 1);
            // `schedule_split_at(time, domain, prep, apply)`.
            let Some(&(plo, phi)) = args.get(2) else {
                continue;
            };
            // Only inline closures are analyzable; a prep passed through a
            // variable (the engine's own `schedule_split_in` forwarder)
            // is covered at its construction site.
            let Some(body) = closure_body(t, plo, phi) else {
                continue;
            };
            let line = t[plo].line;
            let mut hits = direct_hits(t, body);
            if hits.is_empty() {
                if let Some(hit) = reachable_hit(files, graph, t, body) {
                    hits.push(hit);
                }
            }
            let Some(hit) = hits.into_iter().next() else {
                continue;
            };
            let finding = Finding::new(
                "prep-purity",
                &f.rel,
                line,
                format!(
                    "split-event prep closure reaches an apply-side effect: {} — \
                     preps run concurrently on worker threads and may only build \
                     draft values; move the effect into the apply closure",
                    hit.what
                ),
            );
            report.push(if f.is_waived(line, "prep-purity") {
                finding.waived()
            } else {
                finding
            });
        }
    }
}

/// Body token range of an inline closure in `[lo, hi]`: after the
/// parameter pipes (`|x, y|`, `||`, with optional leading `move`).
/// `None` when the argument is not an inline closure.
fn closure_body(t: &[Tok], lo: usize, hi: usize) -> Option<(usize, usize)> {
    let mut i = lo;
    if t.get(i).is_some_and(|x| x.is("move")) {
        i += 1;
    }
    if !t.get(i).is_some_and(|x| x.is("|")) {
        return None;
    }
    i += 1;
    while i <= hi && !t[i].is("|") {
        i += 1;
    }
    (i < hi).then_some((i + 1, hi))
}

/// Impure calls made directly inside `range`.
fn direct_hits(t: &[Tok], range: (usize, usize)) -> Vec<SinkHit> {
    let mut out = Vec::new();
    let (lo, hi) = range;
    for i in lo..=hi.min(t.len().saturating_sub(1)) {
        if t[i].kind != TokKind::Ident || !t.get(i + 1).is_some_and(|x| x.is("(")) {
            continue;
        }
        let name = t[i].text.as_str();
        let what = if SCHEDULE_SINKS.contains(&name) {
            Some(format!("`{name}(...)` schedules a new event"))
        } else if STORE_SINKS.contains(&name) {
            Some(format!("`{name}(...)` emits a coordination-store effect"))
        } else if name == "span_begin" {
            Some("`span_begin(...)` opens a span (interning order)".to_string())
        } else if METRIC_SINKS.contains(&name) && shared_receiver(t, i) {
            Some(format!("`{name}(...)` mutates the shared metrics registry"))
        } else if RNG_SINKS.contains(&name) && shared_receiver(t, i) {
            Some(format!("`{name}(...)` draws from the shared SimRng stream"))
        } else {
            None
        };
        if let Some(what) = what {
            out.push(SinkHit {
                what,
                line: t[i].line,
            });
        }
    }
    out
}

/// True when the method call at `i` sits on a shared receiver: a dotted
/// chain rooted at `engine`/`eng`/`self`, or routed through a
/// `metrics`/`rng`/`trace` field. Draft builders and closure-local state
/// (plain local roots) stay un-flagged.
fn shared_receiver(t: &[Tok], i: usize) -> bool {
    if i == 0 || !t[i - 1].is(".") {
        return false; // free call or builder-entry; not a method on state
    }
    // Walk the `a.b().c.`-style chain backwards collecting segment names.
    let mut j = i - 1;
    let mut root = String::new();
    let mut through_field = false;
    while j > 0 {
        if t[j].is(".") {
            j -= 1;
            continue;
        }
        if t[j].is(")") {
            // Skip a call's argument list to its receiver.
            let mut depth = 0i32;
            while j > 0 {
                if t[j].is(")") {
                    depth += 1;
                } else if t[j].is("(") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            j = j.saturating_sub(1);
            continue;
        }
        if t[j].kind == TokKind::Ident {
            if matches!(t[j].text.as_str(), "metrics" | "rng" | "trace") {
                through_field = true;
            }
            root = t[j].text.clone();
            // Chain continues only through a further `.`.
            if j >= 1 && t[j - 1].is(".") {
                j -= 1;
                continue;
            }
        }
        break;
    }
    through_field || matches!(root.as_str(), "engine" | "eng" | "self")
}

/// First impure call transitively reachable from the closure body through
/// the workspace call graph.
fn reachable_hit(
    files: &[SourceFile],
    graph: &CallGraph,
    t: &[Tok],
    body: (usize, usize),
) -> Option<SinkHit> {
    let seeds: Vec<CallSite> = extract_calls(t, body)
        .into_iter()
        .filter(|c| {
            // Do not descend into the draft builders: their methods share
            // names with registry mutators but are pure by construction.
            let defs = graph.resolve(c);
            defs.is_empty()
                || !defs
                    .iter()
                    .all(|&d| DRAFT_TYPES.contains(&graph.fns[d].qual.as_str()))
        })
        .collect();
    let mut hit: Option<SinkHit> = None;
    let path = graph.path_to(&seeds, |d| {
        if DRAFT_TYPES.contains(&graph.fns[d].qual.as_str()) {
            return false;
        }
        let def = &graph.fns[d];
        let ft = &files[def.file].lexed.toks;
        if let Some(h) = direct_hits(ft, def.body).into_iter().next() {
            hit = Some(SinkHit {
                what: format!("{} at {}:{}", h.what, files[def.file].rel, h.line),
                line: h.line,
            });
            true
        } else {
            false
        }
    });
    let path = path?;
    let hit = hit?;
    Some(SinkHit {
        what: format!("via {}: {}", path.join(" -> "), hit.what),
        line: hit.line,
    })
}
