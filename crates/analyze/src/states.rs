//! Rule `state-machine`: lifecycle conformance against the
//! `can_transition_to` tables.
//!
//! The tables in `crates/core/src/states.rs` are parsed into the legal-edge
//! set; every literal transition the workspace exercises is then extracted
//! and checked. Two failure modes: a chained pair the table forbids
//! (illegal transition at a call site), and a table edge nothing exercises
//! (dead transition — the contract claims more than the code does).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};
use crate::report::{Finding, Report};
use crate::scan::SourceFile;

const RULE: &str = "state-machine";

/// One parsed lifecycle state machine.
#[derive(Debug)]
pub struct Machine {
    pub name: String,
    pub variants: BTreeSet<String>,
    pub finals: BTreeSet<String>,
    /// Explicit `(Src, Dst) => true` arms, with the arm's source line.
    pub explicit: BTreeMap<(String, String), u32>,
    /// Targets of `(s, Dst) => !s.is_final()` wildcard arms, with line.
    pub wildcard_targets: BTreeMap<String, u32>,
    /// File the table lives in (for findings).
    pub file: String,
}

impl Machine {
    pub fn allows(&self, src: &str, dst: &str) -> bool {
        self.explicit
            .contains_key(&(src.to_string(), dst.to_string()))
            || (self.wildcard_targets.contains_key(dst) && !self.finals.contains(src))
    }
}

/// Evidence that a transition is exercised somewhere in the workspace.
#[derive(Debug, Default)]
pub struct Evidence {
    /// Chained literal source->target pairs, with provenance.
    pub chains: Vec<(usize, String, String, String, u32)>,
    /// Positive `A.can_transition_to(B)` assertions: (machine, src, dst).
    pub asserted: BTreeSet<(usize, String, String)>,
    /// Every literal advance target observed, per machine.
    pub targets: BTreeSet<(usize, String)>,
}

/// Given the index of the *last* ident of a `Foo::Bar::Baz` path, return
/// the path's start index and that final ident.
fn last_path_ident(toks: &[Tok], mut i: usize) -> Option<(usize, String)> {
    let text = toks.get(i)?.text.clone();
    while i >= 2 && toks[i - 1].is("::") && toks[i - 2].kind == TokKind::Ident {
        i -= 2;
    }
    Some((i, text))
}

/// Parse every machine: an enum with an `impl` providing both `is_final`
/// and `can_transition_to` on a `match (self, next)`.
pub fn parse_machines(files: &[SourceFile]) -> Vec<Machine> {
    let mut machines = Vec::new();
    for f in files {
        let t = &f.lexed.toks;
        // Enums first.
        let mut enums: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut i = 0;
        while i < t.len() {
            if t[i].is("enum") && i + 1 < t.len() && t[i + 1].kind == TokKind::Ident {
                let name = t[i + 1].text.clone();
                let mut j = i + 2;
                while j < t.len() && !t[j].is("{") {
                    j += 1;
                }
                let mut depth = 0i32;
                let mut variants = BTreeSet::new();
                let mut expect_variant = true;
                while j < t.len() {
                    if t[j].is("{") {
                        depth += 1;
                        if depth > 1 {
                            expect_variant = false;
                        }
                    } else if t[j].is("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if depth == 1 {
                        if t[j].is("#") {
                            // Skip `#[...]` attribute on a variant.
                            while j < t.len() && !t[j].is("]") {
                                j += 1;
                            }
                        } else if t[j].is(",") {
                            expect_variant = true;
                        } else if expect_variant && t[j].kind == TokKind::Ident {
                            variants.insert(t[j].text.clone());
                            expect_variant = false;
                        }
                    }
                    j += 1;
                }
                enums.insert(name, variants);
                i = j;
            }
            i += 1;
        }

        // Impl blocks providing the two lifecycle functions.
        let mut i = 0;
        while i + 1 < t.len() {
            if t[i].is("impl") && t[i + 1].kind == TokKind::Ident {
                let name = t[i + 1].text.clone();
                if let Some(variants) = enums.get(&name) {
                    let end = block_end(t, i);
                    let body = &t[i..end];
                    let finals = parse_is_final(body, variants);
                    if let Some((explicit, wildcard)) = parse_transition_table(body, variants) {
                        machines.push(Machine {
                            name,
                            variants: variants.clone(),
                            finals,
                            explicit,
                            wildcard_targets: wildcard,
                            file: f.rel.clone(),
                        });
                    }
                    i = end;
                    continue;
                }
            }
            i += 1;
        }
    }
    machines
}

/// Index one past the matching `}` of the first `{` at/after `i`.
fn block_end(t: &[Tok], mut i: usize) -> usize {
    while i < t.len() && !t[i].is("{") {
        i += 1;
    }
    let mut depth = 0i32;
    while i < t.len() {
        if t[i].is("{") {
            depth += 1;
        } else if t[i].is("}") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    t.len()
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(t: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < t.len() {
        if t[i].is("(") {
            depth += 1;
        } else if t[i].is(")") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    t.len()
}

fn parse_is_final(body: &[Tok], variants: &BTreeSet<String>) -> BTreeSet<String> {
    let mut finals = BTreeSet::new();
    for i in 1..body.len() {
        if body[i].is("is_final") && body[i - 1].is("fn") {
            // Find `matches ! ( self ,` then variant idents up to `)`.
            let mut j = i;
            while j + 1 < body.len() && !(body[j].is("matches") && body[j + 1].is("!")) {
                j += 1;
            }
            while j < body.len() && !body[j].is(",") {
                j += 1;
            }
            while j < body.len() && !body[j].is(")") {
                if body[j].kind == TokKind::Ident && variants.contains(&body[j].text) {
                    finals.insert(body[j].text.clone());
                }
                j += 1;
            }
            break;
        }
    }
    finals
}

type Table = (BTreeMap<(String, String), u32>, BTreeMap<String, u32>);

fn parse_transition_table(body: &[Tok], variants: &BTreeSet<String>) -> Option<Table> {
    let mut i = 1;
    while i < body.len() && !(body[i].is("can_transition_to") && body[i - 1].is("fn")) {
        i += 1;
    }
    if i >= body.len() {
        return None;
    }
    while i < body.len() && !body[i].is("match") {
        i += 1;
    }
    while i < body.len() && !body[i].is("{") {
        i += 1;
    }
    if i >= body.len() {
        return None;
    }
    let end = block_end(body, i);
    let arms = &body[i + 1..end - 1];

    let mut explicit = BTreeMap::new();
    let mut wildcard = BTreeMap::new();
    let mut j = 0;
    while j < arms.len() {
        // One arm: pattern alternatives until `=>`, expr until `,` at
        // bracket depth 0 (or end of match body).
        let arm_line = arms[j].line;
        let mut pats: Vec<(Option<String>, Option<String>)> = Vec::new();
        let mut depth = 0i32;
        let mut k = j;
        while k < arms.len() && !(depth == 0 && arms[k].is("=>")) {
            if arms[k].is("(") {
                if depth == 0 {
                    // Collect the `(a, b)` pair.
                    let close = matching_paren(arms, k);
                    let mut parts: Vec<Option<String>> = Vec::new();
                    let mut cur: Option<String> = None;
                    let mut d2 = 0i32;
                    for tok in &arms[k + 1..close] {
                        if tok.is("(") {
                            d2 += 1;
                        } else if tok.is(")") {
                            d2 -= 1;
                        } else if d2 == 0 && tok.is(",") {
                            parts.push(cur.take());
                        } else if d2 == 0 && tok.kind == TokKind::Ident {
                            cur = Some(tok.text.clone());
                        }
                    }
                    parts.push(cur.take());
                    if parts.len() == 2 {
                        let lit = |p: &Option<String>| {
                            p.as_ref()
                                .filter(|v| variants.contains(v.as_str()))
                                .cloned()
                        };
                        pats.push((lit(&parts[0]), lit(&parts[1])));
                    }
                    k = close + 1;
                    continue;
                }
                depth += 1;
            } else if arms[k].is(")") {
                depth -= 1;
            }
            k += 1;
        }
        if k >= arms.len() {
            break;
        }
        // Expression tokens of the arm.
        let mut e = k + 1;
        let mut d = 0i32;
        let expr_start = e;
        while e < arms.len() {
            if arms[e].is("(") || arms[e].is("{") || arms[e].is("[") {
                d += 1;
            } else if arms[e].is(")") || arms[e].is("}") || arms[e].is("]") {
                d -= 1;
            } else if d == 0 && arms[e].is(",") {
                break;
            }
            e += 1;
        }
        let expr = &arms[expr_start..e];
        let is_true = expr.first().is_some_and(|t| t.is("true"));
        let is_nonfinal_guard =
            expr.iter().any(|t| t.is("is_final")) && expr.first().is_some_and(|t| t.is("!"));
        for (src, dst) in &pats {
            match (src, dst) {
                (Some(s), Some(dd)) if is_true => {
                    explicit.insert((s.clone(), dd.clone()), arm_line);
                }
                (None, Some(dd)) if is_nonfinal_guard => {
                    wildcard.insert(dd.clone(), arm_line);
                }
                _ => {}
            }
        }
        j = e + 1;
    }
    Some((explicit, wildcard))
}

fn machine_idx(machines: &[Machine], name: &str) -> Option<usize> {
    machines.iter().position(|m| m.name == name)
}

/// First `Enum::Variant` literal among `toks` where Enum is a machine.
fn path_literal(toks: &[Tok], machines: &[Machine]) -> Option<(usize, String)> {
    for j in 0..toks.len() {
        if toks[j].kind == TokKind::Ident
            && j + 2 < toks.len()
            && toks[j + 1].is("::")
            && toks[j + 2].kind == TokKind::Ident
        {
            if let Some(mi) = machine_idx(machines, &toks[j].text) {
                if machines[mi].variants.contains(&toks[j + 2].text) {
                    return Some((mi, toks[j + 2].text.clone()));
                }
            }
        }
    }
    None
}

/// The dotted receiver chain ending at token `end` (e.g. `self.foo`).
fn receiver_chain(t: &[Tok], end: usize) -> Option<String> {
    let mut i = end;
    if t.get(i)?.kind != TokKind::Ident {
        return None;
    }
    while i >= 2 && t[i - 1].is(".") && t[i - 2].kind == TokKind::Ident {
        i -= 2;
    }
    Some(
        t[i..=end]
            .iter()
            .map(|tok| tok.text.as_str())
            .collect::<Vec<_>>()
            .join(""),
    )
}

/// Collect exercised-transition evidence from one file.
///
/// The chain model is lexical and deliberately approximate: consecutive
/// `.advance(_, State::X)` calls on the same receiver at the same brace
/// depth form a source->target chain; entering a closure or a new function
/// resets it. `Guarded::<S>::new()` seeds a receiver at `New`, and
/// `for s in [State::A, State::B] { recv.advance(_, s) }` chains the array.
pub fn collect_evidence(file: &SourceFile, machines: &[Machine], ev: &mut Evidence) {
    let t = &file.lexed.toks;
    // (receiver, depth) -> (machine, state)
    let mut last: BTreeMap<(String, i32), (usize, String)> = BTreeMap::new();
    let mut depth = 0i32;

    let mut i = 0;
    while i < t.len() {
        if t[i].is("{") {
            depth += 1;
        } else if t[i].is("}") {
            depth -= 1;
            last.retain(|(_, d), _| *d <= depth);
        } else if t[i].is("fn") {
            // New function: forget chain state (approximation boundary).
            last.clear();
        } else if t[i].is("Guarded")
            && i + 6 < t.len()
            && t[i + 1].is("::")
            && t[i + 2].is("<")
            && t[i + 4].is(">")
            && t[i + 5].is("::")
            && t[i + 6].is("new")
        {
            if let Some(mi) = machine_idx(machines, &t[i + 3].text) {
                // Back-scan for `let [mut] NAME` in the same statement.
                let mut j = i;
                while j > 0 && !(t[j].is(";") || t[j].is("{") || t[j].is("}")) {
                    j -= 1;
                }
                if let Some(p) = t[j..i].iter().position(|x| x.is("let")) {
                    let name = t[j + p + 1..i]
                        .iter()
                        .find(|x| x.kind == TokKind::Ident && !x.is("mut"))
                        .map(|x| x.text.clone());
                    if let Some(name) = name {
                        last.insert((name, depth), (mi, "New".to_string()));
                    }
                }
            }
        } else if t[i].is("for")
            && i + 3 < t.len()
            && t[i + 1].kind == TokKind::Ident
            && t[i + 2].is("in")
            && (t[i + 3].is("[") || (t[i + 3].is("&") && t.get(i + 4).is_some_and(|x| x.is("["))))
        {
            // `for VAR in [Enum::A, Enum::B, ...] { body }`
            let var = t[i + 1].text.clone();
            let open = if t[i + 3].is("[") { i + 3 } else { i + 4 };
            let mut elems: Vec<(usize, String)> = Vec::new();
            let mut j = open + 1;
            let mut literal_array = true;
            while j < t.len() && !t[j].is("]") {
                if t[j].kind == TokKind::Ident {
                    if j + 2 < t.len() && t[j + 1].is("::") && t[j + 2].kind == TokKind::Ident {
                        match machine_idx(machines, &t[j].text) {
                            Some(mi) if machines[mi].variants.contains(&t[j + 2].text) => {
                                elems.push((mi, t[j + 2].text.clone()));
                            }
                            _ => literal_array = false,
                        }
                        j += 2;
                    } else {
                        literal_array = false;
                    }
                } else if !t[j].is(",") {
                    literal_array = false;
                }
                j += 1;
            }
            if literal_array && !elems.is_empty() && elems.iter().all(|(m, _)| *m == elems[0].0) {
                let mi = elems[0].0;
                let body_end = block_end(t, j);
                let body = &t[j..body_end];
                for b in 2..body.len() {
                    let called = |name: &str| {
                        body[b].is(name)
                            && body[b - 1].is(".")
                            && body.get(b + 1).is_some_and(|x| x.is("("))
                    };
                    if called("advance") {
                        let args_end = matching_paren(body, b + 1);
                        if body[b + 2..args_end].iter().any(|a| a.text == var) {
                            let line = body[b].line;
                            // Seed edge from the receiver's pre-loop state.
                            if let Some(recv) = receiver_chain(body, b - 2) {
                                if let Some((pm, ps)) = last.get(&(recv.clone(), depth)) {
                                    if *pm == mi {
                                        ev.chains.push((
                                            mi,
                                            ps.clone(),
                                            elems[0].1.clone(),
                                            file.rel.clone(),
                                            line,
                                        ));
                                    }
                                }
                                last.insert((recv, depth), (mi, elems[elems.len() - 1].1.clone()));
                            }
                            for w in elems.windows(2) {
                                ev.chains.push((
                                    mi,
                                    w[0].1.clone(),
                                    w[1].1.clone(),
                                    file.rel.clone(),
                                    line,
                                ));
                            }
                            for (m, v) in &elems {
                                ev.targets.insert((*m, v.clone()));
                            }
                        }
                    } else if called("can_transition_to")
                        && body[b - 2].text == var
                        && !(b >= 3 && body[b - 3].is("!"))
                    {
                        let args_end = matching_paren(body, b + 1);
                        if let Some((m2, v2)) = path_literal(&body[b + 2..args_end], machines) {
                            if m2 == mi {
                                for (_, v) in &elems {
                                    ev.asserted.insert((mi, v.clone(), v2.clone()));
                                }
                            }
                        }
                    }
                }
            }
        } else if t[i].is("advance")
            && i >= 2
            && t[i - 1].is(".")
            && t.get(i + 1).is_some_and(|x| x.is("("))
        {
            let args_end = matching_paren(t, i + 1);
            if let Some((mi, target)) = path_literal(&t[i + 2..args_end], machines) {
                ev.targets.insert((mi, target.clone()));
                if let Some(recv) = receiver_chain(t, i - 2) {
                    let key = (recv, depth);
                    if let Some((pm, ps)) = last.get(&key) {
                        if *pm == mi {
                            ev.chains.push((
                                mi,
                                ps.clone(),
                                target.clone(),
                                file.rel.clone(),
                                t[i].line,
                            ));
                        }
                    }
                    last.insert(key, (mi, target));
                }
            }
        } else if t[i].is("can_transition_to")
            && i >= 3
            && t[i - 1].is(".")
            && t.get(i + 1).is_some_and(|x| x.is("("))
        {
            // `Enum::Src.can_transition_to(Enum::Dst)`, not negated.
            if let Some((start, src)) = last_path_ident(t, i - 2) {
                if let Some(mi) = machine_idx(machines, &t[start].text) {
                    let negated = start >= 1 && t[start - 1].is("!");
                    if !negated && machines[mi].variants.contains(&src) {
                        let args_end = matching_paren(t, i + 1);
                        if let Some((m2, dst)) = path_literal(&t[i + 2..args_end], machines) {
                            if m2 == mi {
                                ev.asserted.insert((mi, src, dst));
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// Run the full rule over the workspace.
pub fn check(files: &[SourceFile], machines: &[Machine], report: &mut Report) -> Evidence {
    let mut ev = Evidence::default();
    for f in files {
        collect_evidence(f, machines, &mut ev);
    }

    let push = |report: &mut Report, files: &[SourceFile], finding: Finding| {
        let waived = files
            .iter()
            .find(|f| f.rel == finding.file)
            .is_some_and(|f| f.is_waived(finding.line, RULE));
        report.push(if waived { finding.waived() } else { finding });
    };

    // Illegal chained transitions.
    for (mi, src, dst, file, line) in &ev.chains {
        let m = &machines[*mi];
        if !m.allows(src, dst) {
            push(
                report,
                files,
                Finding::new(
                    RULE,
                    file,
                    *line,
                    format!(
                        "illegal {} transition {src} -> {dst}: not allowed by \
                         can_transition_to in {}",
                        m.name, m.file
                    ),
                ),
            );
        }
    }

    // Dead table edges.
    let mut exercised: BTreeSet<(usize, String, String)> = ev.asserted.clone();
    for (mi, s, d, _, _) in &ev.chains {
        exercised.insert((*mi, s.clone(), d.clone()));
    }
    for (mi, m) in machines.iter().enumerate() {
        for ((src, dst), line) in &m.explicit {
            if !exercised.contains(&(mi, src.clone(), dst.clone())) {
                push(
                    report,
                    files,
                    Finding::new(
                        RULE,
                        &m.file,
                        *line,
                        format!(
                            "dead transition: table allows {} {src} -> {dst} but no call \
                             site or assertion exercises it",
                            m.name
                        ),
                    ),
                );
            }
        }
        for (dst, line) in &m.wildcard_targets {
            if !ev.targets.contains(&(mi, dst.clone()))
                && !exercised.iter().any(|(em, _, ed)| *em == mi && ed == dst)
            {
                push(
                    report,
                    files,
                    Finding::new(
                        RULE,
                        &m.file,
                        *line,
                        format!(
                            "dead transition: table allows {} * -> {dst} but no call site \
                             reaches it",
                            m.name
                        ),
                    ),
                );
            }
        }
    }
    ev
}

/// Render a machine's lifecycle as Graphviz DOT.
pub fn emit_dot(m: &Machine) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "// Generated by rp_lint --emit-dot from {} — do not edit by hand.\n",
        m.file
    ));
    out.push_str(&format!("digraph {} {{\n", m.name));
    out.push_str("    rankdir=LR;\n    node [shape=box, style=rounded];\n");
    for v in &m.variants {
        if m.finals.contains(v) {
            out.push_str(&format!("    {v} [peripheries=2];\n"));
        } else {
            out.push_str(&format!("    {v};\n"));
        }
    }
    for (src, dst) in m.explicit.keys() {
        out.push_str(&format!("    {src} -> {dst};\n"));
    }
    if !m.wildcard_targets.is_empty() {
        out.push_str("    any_live [label=\"any non-final\", shape=plaintext];\n");
        for dst in m.wildcard_targets.keys() {
            out.push_str(&format!("    any_live -> {dst} [style=dashed];\n"));
        }
    }
    out.push_str("}\n");
    out
}
