//! Rule `span-balance`: every span opened must be closed or owned.
//!
//! For each `span_begin` call in library code, classify the result:
//!   - bound with `let x = ...` — require, within the enclosing function, a
//!     later `span_end(..., x)` or an ownership escape (x assigned into a
//!     field, passed to a call other than `span_attr`, or returned);
//!   - assigned without `let` (`rec.span_open = ...span_begin(...)`) — the
//!     id is stored, ownership transferred: fine;
//!   - used inline as a call argument or struct-literal field — ownership
//!     transferred: fine;
//!   - discarded in statement position — the span can never be ended: error.

use crate::lexer::{Tok, TokKind};
use crate::report::{Finding, Report};
use crate::scan::SourceFile;

const RULE: &str = "span-balance";

/// Spans (start..end token indices, exclusive) of every `fn` body.
/// Closures are not `fn`, so they stay inside their function's range.
fn fn_body_ranges(t: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if t[i].is("fn") {
            // Find the body `{` of this fn, skipping the signature. A `;`
            // first means a trait method declaration without a body.
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut paren = 0i32;
            while j < t.len() {
                if t[j].is("<") {
                    angle += 1;
                } else if t[j].is(">") {
                    angle -= 1;
                } else if t[j].is("(") {
                    paren += 1;
                } else if t[j].is(")") {
                    paren -= 1;
                } else if angle <= 0 && paren == 0 && (t[j].is("{") || t[j].is(";")) {
                    break;
                }
                j += 1;
            }
            if j < t.len() && t[j].is("{") {
                let mut depth = 0i32;
                let mut k = j;
                while k < t.len() {
                    if t[k].is("{") {
                        depth += 1;
                    } else if t[k].is("}") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k += 1;
                }
                out.push((j, k.min(t.len())));
                i += 1;
                continue;
            }
            i = j;
        }
        i += 1;
    }
    out
}

/// Innermost fn body containing token index `i`.
fn enclosing_fn(ranges: &[(usize, usize)], i: usize) -> Option<(usize, usize)> {
    ranges
        .iter()
        .filter(|&&(s, e)| i > s && i < e)
        .min_by_key(|&&(s, e)| e - s)
        .copied()
}

pub fn check(files: &[SourceFile], report: &mut Report) {
    for f in files {
        let t = &f.lexed.toks;
        let ranges = fn_body_ranges(t);
        for i in 0..t.len() {
            if !t[i].is("span_begin") {
                continue;
            }
            // Skip the method definition itself (`fn span_begin`).
            if i >= 1 && t[i - 1].is("fn") {
                continue;
            }
            if t.get(i + 1).is_none_or(|x| !x.is("(")) {
                continue;
            }
            let line = t[i].line;
            if f.is_test_code(line) {
                continue;
            }

            // Statement start: last `;`/`{`/`}` before the call.
            let mut s = i;
            while s > 0 && !(t[s].is(";") || t[s].is("{") || t[s].is("}")) {
                s -= 1;
            }
            let stmt = &t[s..i];

            // Case: inline use — a `(` or `,` or `:` directly drives the
            // call into a larger expression (argument, struct field value).
            // Anything with an `=` is an assignment; handle below.
            let has_eq = stmt.iter().any(|x| x.is("=") && !x.is("=>"));
            let let_pos = stmt.iter().position(|x| x.is("let"));

            if let Some(p) = let_pos {
                // `let NAME = ...span_begin(...)`: trace NAME's later uses.
                let name = stmt[p + 1..]
                    .iter()
                    .find(|x| x.kind == TokKind::Ident && !x.is("mut"))
                    .map(|x| x.text.clone());
                let Some(name) = name else { continue };
                let Some((_, fn_end)) = enclosing_fn(&ranges, i) else {
                    continue;
                };
                // End of the binding statement.
                let mut stmt_end = i;
                let mut depth = 0i32;
                while stmt_end < t.len() {
                    if t[stmt_end].is("(") || t[stmt_end].is("{") || t[stmt_end].is("[") {
                        depth += 1;
                    } else if t[stmt_end].is(")") || t[stmt_end].is("}") || t[stmt_end].is("]") {
                        depth -= 1;
                    } else if depth == 0 && t[stmt_end].is(";") {
                        break;
                    }
                    stmt_end += 1;
                }

                let mut balanced = false;
                let mut escaped = false;
                let mut j = stmt_end;
                while j < fn_end {
                    if t[j].kind == TokKind::Ident && t[j].text == name {
                        // Which context is this use in?
                        // Walk back to see if it's inside span_end(...) or
                        // span_attr(...) args.
                        let mut k = j;
                        let mut pdepth = 0i32;
                        let mut callee: Option<&str> = None;
                        while k > stmt_end {
                            if t[k].is(")") {
                                pdepth += 1;
                            } else if t[k].is("(") {
                                if pdepth == 0 {
                                    if k >= 1 && t[k - 1].kind == TokKind::Ident {
                                        callee = Some(t[k - 1].text.as_str());
                                    }
                                    break;
                                }
                                pdepth -= 1;
                            }
                            k -= 1;
                        }
                        match callee {
                            Some("span_end") => balanced = true,
                            Some("span_attr") => {} // attr use doesn't consume
                            Some(_) => escaped = true,
                            None => escaped = true, // assignment / return / tail
                        }
                    }
                    j += 1;
                }
                if !(balanced || escaped) {
                    let finding = Finding::new(
                        RULE,
                        &f.rel,
                        line,
                        format!(
                            "span id `{name}` is opened but never passed to span_end \
                             or stored; the span leaks open in the trace"
                        ),
                    );
                    report.push(if f.is_waived(line, RULE) {
                        finding.waived()
                    } else {
                        finding
                    });
                }
            } else if !has_eq {
                // No let, no assignment: either inline argument/field use
                // (ownership transferred) or a discarded statement.
                // Inline use: somewhere in `stmt` after the start there is
                // an unclosed `(` or a `,`/`:` context — detect by checking
                // the token right before the receiver chain of span_begin.
                // Walk the dotted receiver chain backwards from the `.`
                // before span_begin to find what drives the expression.
                let mut r = i - 1;
                while r > s {
                    let p = &t[r - 1];
                    if p.is(".") || p.kind == TokKind::Ident {
                        r -= 1;
                    } else {
                        break;
                    }
                }
                let before = if r > s { Some(&t[r - 1]) } else { None };
                let inline = matches!(
                    before,
                    Some(tok) if tok.is("(") || tok.is(",") || tok.is(":")
                        || tok.is("return") || tok.is("=>")
                );
                // Tail expression (`...span_begin(...)` right before fn `}`)
                // is a return: ownership transferred to the caller.
                let call_close = {
                    let mut depth = 0i32;
                    let mut k = i + 1;
                    loop {
                        if t[k].is("(") {
                            depth += 1;
                        } else if t[k].is(")") {
                            depth -= 1;
                            if depth == 0 {
                                break k;
                            }
                        }
                        k += 1;
                        if k >= t.len() {
                            break t.len() - 1;
                        }
                    }
                };
                let is_tail = t.get(call_close + 1).is_some_and(|x| x.is("}"));
                if !inline && !is_tail {
                    let finding = Finding::new(
                        RULE,
                        &f.rel,
                        line,
                        "span_begin result discarded; the span can never be ended \
                         and leaks open in the trace",
                    );
                    report.push(if f.is_waived(line, RULE) {
                        finding.waived()
                    } else {
                        finding
                    });
                }
            }
            // `has_eq && no let`: `place = ...span_begin(...)` — stored,
            // ownership transferred. Nothing to check.
        }
    }
}
