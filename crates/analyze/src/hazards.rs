//! Determinism-hazard rules: `wallclock`, `hash-iter`, `unwrap-ratchet`.
//!
//! The workspace's contract is same seed => bit-identical traces. Host
//! clocks and hash-iteration order are the two ways real code breaks that
//! silently; panic-prone unwraps are the way fault injection turns into
//! aborts instead of recoveries. All three rules apply to library code
//! only — tests, benches and examples are exempt.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::baseline;
use crate::lexer::TokKind;
use crate::report::{Finding, Report};
use crate::scan::SourceFile;

/// Crates allowed to read host time: bench measures the host by design,
/// the harness binaries time real subprocess work, and the lint pass
/// times its own rules (`--timings` — host-side tooling cost, not
/// simulation state).
const WALLCLOCK_ALLOWED_PREFIXES: &[&str] = &["crates/bench/", "crates/analyze/"];

/// Individual files allowed to read host time outside the allowed crates.
/// The engine flight recorder is the single sim-core module that may
/// touch `Instant` — it observes host cost of batches and is proven
/// result-inert by the telemetry differential test (`tests/telemetry.rs`).
/// Everything else in sim-core/core must go through it.
const WALLCLOCK_ALLOWED_FILES: &[&str] = &["crates/sim-core/src/telemetry.rs"];

/// Rule `wallclock`: flag host-time reads in library code.
pub fn check_wallclock(files: &[SourceFile], report: &mut Report) {
    for f in files {
        if WALLCLOCK_ALLOWED_PREFIXES
            .iter()
            .any(|p| f.rel.starts_with(p))
            || WALLCLOCK_ALLOWED_FILES.contains(&f.rel.as_str())
        {
            continue;
        }
        let t = &f.lexed.toks;
        for i in 0..t.len() {
            let hit = if t[i].is("now")
                && i >= 2
                && t[i - 1].is("::")
                && (t[i - 2].is("Instant") || t[i - 2].is("SystemTime"))
            {
                Some(format!("{}::now()", t[i - 2].text))
            } else if t[i].is("UNIX_EPOCH") && t[i].kind == TokKind::Ident {
                Some("UNIX_EPOCH".to_string())
            } else {
                None
            };
            let Some(what) = hit else { continue };
            let line = t[i].line;
            if f.is_test_code(line) {
                continue;
            }
            let finding = Finding::new(
                "wallclock",
                &f.rel,
                line,
                format!(
                    "{what} reads host time from virtual-time code; results will \
                     depend on host speed. Use SimTime, or waive with a \
                     justification if host timing is the point"
                ),
            );
            report.push(if f.is_waived(line, "wallclock") {
                finding.waived()
            } else {
                finding
            });
        }
    }
}

/// Crates whose library code is result-affecting for the parallel engine:
/// the PDES mode runs split-event prep closures from these crates on
/// worker threads, so thread identity and relaxed atomics there can leak
/// scheduling nondeterminism into replayed results.
const PAR_HAZARD_PREFIXES: &[&str] = &["crates/sim-core/", "crates/core/"];

/// Rule `par-hazard`: relaxed atomics and thread-identity reads in
/// result-affecting simulation code.
pub fn check_par_hazard(files: &[SourceFile], report: &mut Report) {
    for f in files {
        if !PAR_HAZARD_PREFIXES.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        let t = &f.lexed.toks;
        for i in 0..t.len() {
            let hit =
                if t[i].is("Relaxed") && i >= 2 && t[i - 1].is("::") && t[i - 2].is("Ordering") {
                    Some("Ordering::Relaxed")
                } else if t[i].is("thread_local") && t.get(i + 1).is_some_and(|x| x.is("!")) {
                    Some("thread_local!")
                } else if t[i].is("current") && i >= 2 && t[i - 1].is("::") && t[i - 2].is("thread")
                {
                    Some("thread::current()")
                } else if t[i].is("ThreadId") && t[i].kind == TokKind::Ident {
                    Some("ThreadId")
                } else {
                    None
                };
            let Some(what) = hit else { continue };
            let line = t[i].line;
            if f.is_test_code(line) {
                continue;
            }
            let finding = Finding::new(
                "par-hazard",
                &f.rel,
                line,
                format!(
                    "{what} in result-affecting simulation code; worker threads \
                     run split-event prep here, so relaxed orderings and \
                     thread-identity reads can leak scheduling nondeterminism \
                     into results. Use acquire/release or engine state, or \
                     waive with a proof the value cannot reach an output"
                ),
            );
            report.push(if f.is_waived(line, "par-hazard") {
                finding.waived()
            } else {
                finding
            });
        }
    }
}

/// Iteration methods whose order leaks from a hash container.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// Rule `hash-iter`: iteration over HashMap/HashSet in library code.
///
/// Tracks, per file, every identifier declared with a `HashMap`/`HashSet`
/// type (let annotations, struct fields, fn params) or initialized from
/// `HashMap::`/`HashSet::`, then flags order-leaking iteration over those
/// names outside test code.
pub fn check_hash_iter(files: &[SourceFile], report: &mut Report) {
    for f in files {
        let t = &f.lexed.toks;

        // Pass 1: names with hash-container types. Test-only declarations
        // are skipped — flagging happens only in library code, and a name
        // declared in a test module cannot be the container a library-side
        // use refers to (short names like `m` would otherwise collide).
        let mut hash_names: BTreeSet<String> = BTreeSet::new();
        for i in 0..t.len() {
            if !(t[i].is("HashMap") || t[i].is("HashSet")) {
                continue;
            }
            if f.is_test_code(t[i].line) {
                continue;
            }
            // Walk back over a `std :: collections ::` qualifying path so
            // `std::collections::HashMap` tracks like plain `HashMap`.
            let mut start = i;
            while start >= 2 && t[start - 1].is("::") && t[start - 2].kind == TokKind::Ident {
                start -= 2;
            }
            // `name : HashMap< ... >` (let annotation, field, or param),
            // also through `&`/`&mut` references.
            {
                let mut j = start;
                while j >= 1 && (t[j - 1].is("&") || t[j - 1].is("mut")) {
                    j -= 1;
                }
                if j >= 2 && t[j - 1].is(":") && t[j - 2].kind == TokKind::Ident {
                    hash_names.insert(t[j - 2].text.clone());
                }
            }
            // `let [mut] name = HashMap::new()` / `= HashMap::with_capacity`
            // / `= HashMap::from(...)`.
            if start >= 2 && t[start - 1].is("=") {
                let mut j = start - 1;
                while j > 0 && !(t[j].is(";") || t[j].is("{") || t[j].is("}")) {
                    j -= 1;
                }
                if let Some(p) = t[j..start].iter().position(|x| x.is("let")) {
                    if let Some(name) = t[j + p + 1..start]
                        .iter()
                        .find(|x| x.kind == TokKind::Ident && !x.is("mut"))
                    {
                        hash_names.insert(name.text.clone());
                    }
                }
            }
        }
        if hash_names.is_empty() {
            continue;
        }

        // Pass 2: order-leaking uses of those names.
        let mut flagged_lines: BTreeSet<u32> = BTreeSet::new();
        for i in 0..t.len() {
            let line = t[i].line;
            if f.is_test_code(line) {
                continue;
            }
            // `name.iter()` / `self.name.keys()` ... — method call whose
            // receiver's final segment is a tracked hash name.
            let is_iter_method = ITER_METHODS.contains(&t[i].text.as_str())
                && i >= 2
                && t[i - 1].is(".")
                && t.get(i + 1).is_some_and(|x| x.is("("))
                && t[i - 2].kind == TokKind::Ident
                && hash_names.contains(&t[i - 2].text);
            // `for x in &name {` / `for (k, v) in &mut self.name {`
            let is_for_iter = t[i].kind == TokKind::Ident
                && hash_names.contains(&t[i].text)
                && t.get(i + 1).is_some_and(|x| x.is("{"))
                && {
                    // Scan back past `&`, `mut`, `.`-chains to an `in`.
                    let mut j = i;
                    let mut found_in = false;
                    while j > 0 {
                        let p = &t[j - 1];
                        if p.is("in") {
                            found_in = true;
                            break;
                        }
                        if p.is("&") || p.is("mut") || p.is(".") || p.kind == TokKind::Ident {
                            j -= 1;
                        } else {
                            break;
                        }
                    }
                    found_in
                };
            if !(is_iter_method || is_for_iter) {
                continue;
            }
            if !flagged_lines.insert(line) {
                continue; // one finding per line is enough
            }
            let name = if is_iter_method {
                t[i - 2].text.clone()
            } else {
                t[i].text.clone()
            };
            let finding = Finding::new(
                "hash-iter",
                &f.rel,
                line,
                format!(
                    "iteration over hash container `{name}` has nondeterministic \
                     order; switch to BTreeMap/BTreeSet or sort before use"
                ),
            );
            report.push(if f.is_waived(line, "hash-iter") {
                finding.waived()
            } else {
                finding
            });
        }
    }
}

/// Rule `unwrap-ratchet`: per-file unwrap/expect budget against
/// `lint_baseline.toml`. With `bless`, rewrites the baseline instead.
pub fn check_unwrap_ratchet(
    files: &[SourceFile],
    root: &Path,
    bless: bool,
    report: &mut Report,
) -> std::io::Result<()> {
    // Count non-test, non-waived unwrap/expect call sites per file.
    let mut counts: BTreeMap<String, u32> = BTreeMap::new();
    let mut first_line: BTreeMap<String, u32> = BTreeMap::new();
    for f in files {
        if f.kind != crate::scan::FileKind::Lib {
            continue;
        }
        let t = &f.lexed.toks;
        let mut count = 0u32;
        for i in 0..t.len() {
            let is_call = (t[i].is("unwrap") || t[i].is("expect"))
                && i >= 2
                && t[i - 1].is(".")
                && t.get(i + 1).is_some_and(|x| x.is("("));
            if !is_call {
                continue;
            }
            let line = t[i].line;
            if f.is_test_code(line) || f.is_waived(line, "unwrap-ratchet") {
                continue;
            }
            count += 1;
            first_line.entry(f.rel.clone()).or_insert(line);
        }
        if count > 0 {
            counts.insert(f.rel.clone(), count);
        }
    }

    let path = root.join("lint_baseline.toml");
    if bless {
        return baseline::write_unwrap_baseline(&path, &counts);
    }
    let base = baseline::read_unwrap_baseline(&path)?;

    for (file, &count) in &counts {
        let allowed = base.get(file).copied().unwrap_or(0);
        let line = first_line.get(file).copied().unwrap_or(1);
        if count > allowed {
            report.push(Finding::new(
                "unwrap-ratchet",
                file,
                line,
                format!(
                    "{count} unwrap/expect call(s) in library code exceeds the \
                     baseline of {allowed}; convert to real error paths or \
                     expect() with an invariant message and re-bless"
                ),
            ));
        } else if count < allowed {
            report.push(
                Finding::new(
                    "unwrap-ratchet",
                    file,
                    line,
                    format!(
                        "{count} unwrap/expect call(s), below the baseline of \
                         {allowed} — run `rp_lint --bless` to ratchet down"
                    ),
                )
                .info(),
            );
        }
    }
    for (file, &allowed) in &base {
        if !counts.contains_key(file) && allowed > 0 {
            report.push(
                Finding::new(
                    "unwrap-ratchet",
                    file,
                    0,
                    format!(
                        "baseline allows {allowed} unwrap/expect call(s) but the file \
                         now has none — run `rp_lint --bless` to ratchet down"
                    ),
                )
                .info(),
            );
        }
    }
    Ok(())
}
