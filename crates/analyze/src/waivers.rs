//! Waiver inventory (`rp_lint --waivers`) and the `stale-waiver` rule.
//!
//! Every inline `// rp-lint: allow(<rules>): <reason>` comment is a
//! standing exception that erodes the lint's guarantees, so the set must
//! stay auditable: `--waivers` lists them all with their justification,
//! and after every pass the `stale-waiver` check (info-level) flags
//! waivers that no longer suppress anything — either the code they
//! excused was fixed (remove the comment) or they name a rule that does
//! not exist (typo: the waiver never worked).
//!
//! `unwrap-ratchet` waivers are exempt from staleness: they suppress
//! *counting* rather than producing a waived finding, so absence of a
//! waived finding proves nothing.

use std::collections::BTreeSet;

use crate::report::{Finding, Report, RULES};
use crate::scan::SourceFile;

/// One waiver comment, for the `--waivers` listing.
#[derive(Debug, Clone)]
pub struct WaiverEntry {
    pub file: String,
    pub line: u32,
    pub rules: Vec<String>,
    pub reason: String,
}

/// Collect every waiver comment in the workspace, in stable order.
pub fn collect(files: &[SourceFile]) -> Vec<WaiverEntry> {
    let mut out = Vec::new();
    for f in files {
        for (&line, rules) in &f.lexed.waivers {
            out.push(WaiverEntry {
                file: f.rel.clone(),
                line,
                rules: rules.clone(),
                reason: f
                    .lexed
                    .waiver_reasons
                    .get(&line)
                    .cloned()
                    .unwrap_or_default(),
            });
        }
    }
    out
}

/// Aligned text table of the waiver inventory.
pub fn render(entries: &[WaiverEntry]) -> String {
    let mut out = String::new();
    for e in entries {
        let reason = if e.reason.is_empty() {
            "(no reason given)"
        } else {
            &e.reason
        };
        out.push_str(&format!(
            "{}:{}: allow({}) — {}\n",
            e.file,
            e.line,
            e.rules.join(", "),
            reason
        ));
    }
    out.push_str(&format!("rp_lint: {} waiver(s)\n", entries.len()));
    out
}

/// Rules whose waivers suppress counting instead of producing waived
/// findings — staleness cannot be judged from the report.
const COUNTING_RULES: &[&str] = &["unwrap-ratchet"];

/// Run after all rules: flag waivers that suppressed nothing this pass.
/// A waiver at line L covers findings at L and L+1 (see
/// `SourceFile::is_waived`).
pub fn check_stale(files: &[SourceFile], report: &mut Report) {
    // Where did waived findings actually land?
    let waived_at: BTreeSet<(String, &'static str, u32)> = report
        .findings
        .iter()
        .filter(|f| f.waived)
        .map(|f| (f.file.clone(), f.rule, f.line))
        .collect();

    let mut stale: Vec<Finding> = Vec::new();
    for f in files {
        for (&line, rules) in &f.lexed.waivers {
            for rule in rules {
                if !RULES.contains(&rule.as_str()) {
                    stale.push(
                        Finding::new(
                            "stale-waiver",
                            &f.rel,
                            line,
                            format!(
                                "waiver names unknown rule `{rule}` (known: {}) — \
                                 it has never suppressed anything",
                                RULES.join(", ")
                            ),
                        )
                        .info(),
                    );
                    continue;
                }
                if COUNTING_RULES.contains(&rule.as_str()) {
                    continue;
                }
                let hit = [line, line + 1].iter().any(|&l| {
                    RULES
                        .iter()
                        .find(|r| **r == rule.as_str())
                        .is_some_and(|r| waived_at.contains(&(f.rel.clone(), *r, l)))
                });
                if !hit {
                    stale.push(
                        Finding::new(
                            "stale-waiver",
                            &f.rel,
                            line,
                            format!(
                                "waiver for `{rule}` no longer matches any finding \
                                 on line {line} or {} — the excused code was fixed \
                                 or moved; remove the comment",
                                line + 1
                            ),
                        )
                        .info(),
                    );
                }
            }
        }
    }
    for s in stale {
        report.push(s);
    }
}
