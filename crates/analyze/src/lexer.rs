//! Minimal Rust token scanner — just enough structure for the lint rules.
//!
//! Produces a flat token stream (identifiers, punctuation, literals) with
//! line numbers, skipping comments and string/char literal *contents* so
//! rules never match inside them. Lifetimes are distinguished from char
//! literals, `::`/`=>`/`->` are fused into single punctuation tokens, and
//! `// rp-lint: allow(rule, ...)` waiver comments are collected per line.

use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct,
    /// String/char/byte/numeric literal. The text of string-ish literals is
    /// replaced by a placeholder so rules cannot match literal contents.
    Lit,
    Lifetime,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }

    /// Content of a plain `"..."` string literal token, `None` for every
    /// other token. String tokens keep their quoted source text, so they
    /// can never collide with identifier matches — rules that *want* the
    /// literal (lookahead labels) go through this accessor.
    pub fn str_content(&self) -> Option<&str> {
        if self.kind == TokKind::Lit && self.text.len() >= 2 && self.text.starts_with('"') {
            Some(&self.text[1..self.text.len() - 1])
        } else {
            None
        }
    }
}

/// Lexed file: tokens plus waiver comments (`line -> waived rule names`)
/// and their justification text (`line -> reason`, for `--waivers`).
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub waivers: BTreeMap<u32, Vec<String>>,
    pub waiver_reasons: BTreeMap<u32, String>,
}

/// Parse the rule list (and trailing `: reason`) out of an
/// `rp-lint: allow(a, b): reason` comment body.
fn parse_waiver(body: &str) -> (Vec<String>, String) {
    let Some(idx) = body.find("rp-lint:") else {
        return (Vec::new(), String::new());
    };
    let rest = body[idx + "rp-lint:".len()..].trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return (Vec::new(), String::new());
    };
    let Some(close) = rest.find(')') else {
        return (Vec::new(), String::new());
    };
    let rules = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let reason = rest[close + 1..]
        .trim_start()
        .strip_prefix(':')
        .map(|r| r.trim().to_string())
        .unwrap_or_default();
    (rules, reason)
}

pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut waivers: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    let mut waiver_reasons: BTreeMap<u32, String> = BTreeMap::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    let bump_lines = |s: &[u8]| s.iter().filter(|&&c| c == b'\n').count() as u32;

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map(|p| i + p).unwrap_or(n);
                let body = &src[i + 2..end];
                // Doc comments (`///`, `//!`) are documentation — text
                // that *mentions* the waiver syntax there must not become
                // a live waiver. Only plain `//` comments carry waivers.
                let is_doc = body.starts_with('/') || body.starts_with('!');
                let (rules, reason) = if is_doc {
                    (Vec::new(), String::new())
                } else {
                    parse_waiver(body)
                };
                if !rules.is_empty() {
                    waivers.entry(line).or_default().extend(rules);
                    waiver_reasons.entry(line).or_insert(reason);
                }
                i = end;
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Nested block comments.
                let mut depth = 1;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if b[j] == b'/' && j + 1 < n && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < n && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                line += bump_lines(&b[i..j]);
                i = j;
            }
            b'"' => {
                let j = scan_string(b, i);
                let start_line = line;
                line += bump_lines(&b[i..j]);
                // Keep the quoted source text: the quotes guarantee a
                // string token can never match an identifier pattern, and
                // rules that need the literal (lookahead labels) read it
                // back through `Tok::str_content`.
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: src[i..j].to_string(),
                    line: start_line,
                });
                i = j;
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let j = scan_raw_or_byte_string(b, i);
                line += bump_lines(&b[i..j]);
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: "\"\"".into(),
                    line,
                });
                i = j;
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let (j, kind, text) = scan_quote(b, src, i);
                toks.push(Tok { kind, text, line });
                i = j;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let mut j = i + 1;
                while j < n && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n
                    && (b[j] == b'_'
                        || b[j] == b'.'
                        || b[j].is_ascii_alphanumeric()
                        || ((b[j] == b'+' || b[j] == b'-')
                            && matches!(b[j - 1], b'e' | b'E')
                            && j + 1 < n
                            && b[j + 1].is_ascii_digit()))
                {
                    // Don't swallow `..` range or a method call on a number.
                    if b[j] == b'.' && (j + 1 >= n || !b[j + 1].is_ascii_digit()) {
                        break;
                    }
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            _ => {
                // Fuse the few multi-char puncts the rules care about.
                let (text, len) = if i + 1 < n {
                    match (c, b[i + 1]) {
                        (b':', b':') => ("::", 2),
                        (b'=', b'>') => ("=>", 2),
                        (b'-', b'>') => ("->", 2),
                        _ => ("", 1),
                    }
                } else {
                    ("", 1)
                };
                let text = if len == 2 {
                    text.to_string()
                } else {
                    (c as char).to_string()
                };
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
                i += len;
            }
        }
    }
    Lexed {
        toks,
        waivers,
        waiver_reasons,
    }
}

/// End index (exclusive) of a normal `"..."` string starting at `i`.
fn scan_string(b: &[u8], i: usize) -> usize {
    let n = b.len();
    let mut j = i + 1;
    while j < n {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    let n = b.len();
    match b[i] {
        b'r' => {
            let mut j = i + 1;
            while j < n && b[j] == b'#' {
                j += 1;
            }
            j < n && b[j] == b'"'
        }
        b'b' => {
            if i + 1 >= n {
                return false;
            }
            match b[i + 1] {
                b'"' | b'\'' => true,
                b'r' => {
                    let mut j = i + 2;
                    while j < n && b[j] == b'#' {
                        j += 1;
                    }
                    j < n && b[j] == b'"'
                }
                _ => false,
            }
        }
        _ => false,
    }
}

fn scan_raw_or_byte_string(b: &[u8], i: usize) -> usize {
    let n = b.len();
    let mut j = i;
    // Skip the `b`/`r`/`br` prefix.
    if b[j] == b'b' {
        j += 1;
    }
    if j < n && b[j] == b'\'' {
        // Byte char literal `b'x'`.
        j += 1;
        while j < n {
            match b[j] {
                b'\\' => j += 2,
                b'\'' => return j + 1,
                _ => j += 1,
            }
        }
        return n;
    }
    let raw = j < n && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < n && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || b[j] != b'"' {
        return j; // not actually a string; treat prefix as consumed
    }
    j += 1;
    if !raw {
        return scan_string(b, j - 1);
    }
    // Raw string: find `"` followed by `hashes` hashes.
    while j < n {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < n && b[k] == b'#' && seen < hashes {
                k += 1;
                seen += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        j += 1;
    }
    n
}

/// Scan from a `'`: returns (end, kind, text). Lifetimes keep their name.
fn scan_quote(b: &[u8], src: &str, i: usize) -> (usize, TokKind, String) {
    let n = b.len();
    // `'\...'` is always a char literal.
    if i + 1 < n && b[i + 1] == b'\\' {
        let mut j = i + 2;
        while j < n && b[j] != b'\'' {
            j += 1;
        }
        return (j.min(n - 1) + 1, TokKind::Lit, "''".into());
    }
    // `'x'` char literal: one char then closing quote.
    if i + 2 < n && b[i + 2] == b'\'' {
        return (i + 3, TokKind::Lit, "''".into());
    }
    // Otherwise a lifetime/label: `'ident`.
    let mut j = i + 1;
    while j < n && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    (j, TokKind::Lifetime, src[i..j].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_fused_ops() {
        assert_eq!(
            texts("a::b => c -> d"),
            vec!["a", "::", "b", "=>", "c", "->", "d"]
        );
    }

    #[test]
    fn strings_are_opaque() {
        // No `unwrap` identifier token may come from a string literal.
        let toks = lex(r#"let s = "x.unwrap()"; s"#).toks;
        assert!(!toks.iter().any(|t| t.text == "unwrap"));
        assert!(toks.iter().any(|t| t.kind == TokKind::Lit));
    }

    #[test]
    fn raw_strings_and_bytes_are_opaque() {
        let toks = lex(r###"let s = r#"Instant::now()"#; let b = b"SystemTime";"###).toks;
        assert!(!toks.iter().any(|t| t.text == "Instant"));
        assert!(!toks.iter().any(|t| t.text == "SystemTime"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }").toks;
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::Lit && t.text == "''")
                .count(),
            2
        );
    }

    #[test]
    fn comments_are_skipped_but_waivers_collected() {
        let l = lex("let a = 1; // rp-lint: allow(hash-iter, wallclock): reason\nlet b = 2;");
        assert!(!l.toks.iter().any(|t| t.text == "rp"));
        assert_eq!(
            l.waivers.get(&1).map(Vec::as_slice),
            Some(&["hash-iter".to_string(), "wallclock".to_string()][..])
        );
        assert_eq!(l.waiver_reasons.get(&1).map(String::as_str), Some("reason"));
    }

    #[test]
    fn waiver_without_reason_records_empty_reason() {
        let l = lex("// rp-lint: allow(wallclock)\nlet a = 1;");
        assert_eq!(l.waiver_reasons.get(&1).map(String::as_str), Some(""));
    }

    #[test]
    fn string_content_is_readable_but_never_matches_idents() {
        let l = lex(r#"note_lookahead_from("store.write", latency)"#);
        let lit = l
            .toks
            .iter()
            .find(|t| t.kind == TokKind::Lit)
            .expect("string token");
        assert_eq!(lit.str_content(), Some("store.write"));
        // The quoted text cannot equal any identifier.
        assert!(!l.toks.iter().any(|t| t.is("store.write")));
        // Non-string tokens have no content.
        assert_eq!(l.toks[0].str_content(), None);
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let l = lex("/* a\nb */\nfoo");
        assert_eq!(l.toks[0].text, "foo");
        assert_eq!(l.toks[0].line, 3);
    }

    #[test]
    fn numbers_lex_as_single_literals() {
        assert_eq!(
            texts("1_000.5e-3 0xFF 12u64"),
            vec!["1_000.5e-3", "0xFF", "12u64"]
        );
        // Ranges and method calls on numbers don't swallow the dot pair.
        assert_eq!(texts("0..n"), vec!["0", ".", ".", "n"]);
    }
}
