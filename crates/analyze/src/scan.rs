//! Workspace walking: loads every Rust source, lexes it, and classifies
//! test-like regions so rules can distinguish library code from tests.

use std::path::{Path, PathBuf};

use crate::lexer::{lex, Lexed, TokKind};

/// Where the file sits in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FileKind {
    /// Library/bin source under a `src/` directory.
    Lib,
    /// Integration tests, examples, benches — exempt from determinism lints.
    TestLike,
}

#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across hosts).
    pub rel: String,
    pub kind: FileKind,
    pub lexed: Lexed,
    /// Line ranges (inclusive) of `#[cfg(test)] mod` bodies.
    test_regions: Vec<(u32, u32)>,
}

impl SourceFile {
    pub fn from_source(rel: &str, kind: FileKind, src: &str) -> SourceFile {
        let lexed = lex(src);
        let test_regions = find_test_regions(&lexed);
        SourceFile {
            rel: rel.to_string(),
            kind,
            lexed,
            test_regions,
        }
    }

    /// True when `line` is inside a `#[cfg(test)]` module (or the whole
    /// file is test-like).
    pub fn is_test_code(&self, line: u32) -> bool {
        self.kind == FileKind::TestLike
            || self
                .test_regions
                .iter()
                .any(|&(lo, hi)| line >= lo && line <= hi)
    }

    /// True when a waiver comment for `rule` covers `line` (same line or
    /// the line directly above).
    pub fn is_waived(&self, line: u32, rule: &str) -> bool {
        [line, line.saturating_sub(1)].iter().any(|l| {
            self.lexed
                .waivers
                .get(l)
                .is_some_and(|rs| rs.iter().any(|r| r == rule))
        })
    }
}

/// Locate test regions by token walk: `#[cfg(test)] mod name { ... }`
/// bodies, and `#[test]`-attributed functions declared *outside* such a
/// module (mixed files: integration-test helpers beside inline tests).
fn find_test_regions(lexed: &Lexed) -> Vec<(u32, u32)> {
    let t = &lexed.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 3 < t.len() {
        // `#[cfg(test)]` (mod form) or `#[test]` / `#[foo::test]` (fn form).
        let is_cfg_test = i + 6 < t.len()
            && t[i].is("#")
            && t[i + 1].is("[")
            && t[i + 2].is("cfg")
            && t[i + 3].is("(")
            && t[i + 4].is("test")
            && t[i + 5].is(")")
            && t[i + 6].is("]");
        let is_test_attr = t[i].is("#") && t[i + 1].is("[") && {
            // Attribute path ends in `test` right before the `]`:
            // `#[test]`, `#[tokio::test]`, ...
            let mut j = i + 2;
            let mut depth = 1i32;
            let mut last_ident: Option<usize> = None;
            while j < t.len() && depth > 0 {
                if t[j].is("[") {
                    depth += 1;
                } else if t[j].is("]") {
                    depth -= 1;
                } else if depth == 1 && t[j].kind == crate::lexer::TokKind::Ident {
                    last_ident = Some(j);
                }
                j += 1;
            }
            // `test` must be the attribute path itself (`#[test]`) or a
            // path segment (`#[tokio::test]`) — not a `cfg(...)` argument.
            last_ident.is_some_and(|l| {
                t[l].is("test") && j > 0 && t[j - 1].is("]") && (l == i + 2 || t[l - 1].is("::"))
            })
        };
        if !(is_cfg_test || is_test_attr) {
            i += 1;
            continue;
        }
        // Skip this attribute and any further `#[...]` attributes to the
        // introducing keyword (`mod` or `fn`).
        let mut j = i;
        while j < t.len() && t[j].is("#") {
            let mut depth = 0;
            j += 1;
            while j < t.len() {
                if t[j].is("[") {
                    depth += 1;
                } else if t[j].is("]") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        let introduces = j < t.len()
            && ((is_cfg_test && t[j].is("mod"))
                || (is_test_attr && (t[j].is("fn") || t[j].is("async"))));
        if introduces {
            // Find the opening brace, then its match.
            let mut k = j;
            while k < t.len() && !t[k].is("{") {
                k += 1;
            }
            if k < t.len() {
                let start_line = t[i].line;
                let mut depth = 0i32;
                let mut end_line = t[k].line;
                while k < t.len() {
                    if t[k].is("{") {
                        depth += 1;
                    } else if t[k].is("}") {
                        depth -= 1;
                        if depth == 0 {
                            end_line = t[k].line;
                            break;
                        }
                    }
                    k += 1;
                }
                out.push((start_line, end_line));
                i = k;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Load every `.rs` file in the workspace, in sorted (deterministic) order.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut paths: Vec<(PathBuf, FileKind)> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in read_dir_sorted(&crates)? {
            for (sub, kind) in [
                ("src", FileKind::Lib),
                ("tests", FileKind::TestLike),
                ("benches", FileKind::TestLike),
                ("examples", FileKind::TestLike),
            ] {
                collect_rs(&entry.join(sub), kind, &mut paths)?;
            }
        }
    }
    collect_rs(&root.join("src"), FileKind::Lib, &mut paths)?;
    collect_rs(&root.join("tests"), FileKind::TestLike, &mut paths)?;
    collect_rs(&root.join("examples"), FileKind::TestLike, &mut paths)?;
    paths.sort();
    paths.dedup();

    let mut out = Vec::with_capacity(paths.len());
    for (p, kind) in paths {
        let src = std::fs::read_to_string(&p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(SourceFile::from_source(&rel, kind, &src));
    }
    Ok(out)
}

fn read_dir_sorted(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    v.sort();
    Ok(v)
}

fn collect_rs(
    dir: &Path,
    kind: FileKind,
    out: &mut Vec<(PathBuf, FileKind)>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&p, kind, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push((p, kind));
        }
    }
    Ok(())
}

/// Walk upward from `start` to the directory containing the workspace
/// `Cargo.toml` (the one declaring `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(s) = std::fs::read_to_string(&manifest) {
                if s.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Iterate non-test tokens of a file: yields indices whose line is outside
/// every test region. (Helper for rules that ignore test code.)
pub fn lib_token_indices(file: &SourceFile) -> Vec<usize> {
    (0..file.lexed.toks.len())
        .filter(|&i| !file.is_test_code(file.lexed.toks[i].line))
        .collect()
}

/// Convenience: the token at `i` if it is an identifier.
pub fn ident_at(file: &SourceFile, i: usize) -> Option<&str> {
    let t = file.lexed.toks.get(i)?;
    (t.kind == TokKind::Ident).then_some(t.text.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n";
        let f = SourceFile::from_source("x.rs", FileKind::Lib, src);
        assert!(!f.is_test_code(1));
        assert!(f.is_test_code(3));
        assert!(f.is_test_code(4));
        assert!(!f.is_test_code(6));
    }

    #[test]
    fn bare_test_fns_outside_cfg_test_mods_are_test_code() {
        let src = "fn lib() {}\n#[test]\nfn t() {\n    let x = 1;\n}\nfn tail() {}\n";
        let f = SourceFile::from_source("x.rs", FileKind::Lib, src);
        assert!(!f.is_test_code(1));
        assert!(f.is_test_code(2));
        assert!(f.is_test_code(4));
        assert!(!f.is_test_code(6));
    }

    #[test]
    fn pathed_test_attrs_count_but_cfg_not_test_does_not() {
        let pathed = "#[tokio::test]\nasync fn t() {\n    let x = 1;\n}\n";
        let f = SourceFile::from_source("x.rs", FileKind::Lib, pathed);
        assert!(f.is_test_code(3));

        let not_test = "#[cfg(not(test))]\nfn prod() {\n    let x = 1;\n}\n";
        let f = SourceFile::from_source("y.rs", FileKind::Lib, not_test);
        assert!(!f.is_test_code(3));
    }

    #[test]
    fn testlike_files_are_all_test_code() {
        let f = SourceFile::from_source("tests/x.rs", FileKind::TestLike, "fn a() {}");
        assert!(f.is_test_code(1));
    }

    #[test]
    fn waiver_applies_to_same_and_next_line() {
        let src =
            "// rp-lint: allow(wallclock)\nlet t = 1;\nlet u = 2; // rp-lint: allow(hash-iter)\n";
        let f = SourceFile::from_source("x.rs", FileKind::Lib, src);
        assert!(f.is_waived(2, "wallclock"));
        assert!(!f.is_waived(3, "wallclock"));
        assert!(f.is_waived(3, "hash-iter"));
    }
}
