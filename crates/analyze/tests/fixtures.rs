//! Fixture tests: every rule family must demonstrably fire on a known-bad
//! snippet and stay silent on the known-good equivalent. This is the
//! executable proof that the lint pass actually guards the invariants it
//! claims to — a rule that cannot fail is not a rule.

use rp_analyze::report::Report;
use rp_analyze::scan::{FileKind, SourceFile};
use rp_analyze::{baseline, hazards, locks, spans, states};

fn lib_file(rel: &str, src: &str) -> SourceFile {
    SourceFile::from_source(rel, FileKind::Lib, src)
}

fn fatal_rules(report: &Report) -> Vec<&'static str> {
    report
        .findings
        .iter()
        .filter(|f| f.fatal)
        .map(|f| f.rule)
        .collect()
}

/// A miniature lifecycle in the same shape as crates/core/src/states.rs.
const MACHINE_SRC: &str = r#"
pub enum DemoState {
    New,
    Running,
    Done,
    Failed,
}

impl DemoState {
    pub fn is_final(self) -> bool {
        matches!(self, DemoState::Done | DemoState::Failed)
    }
    pub fn can_transition_to(self, next: DemoState) -> bool {
        match (self, next) {
            (DemoState::New, DemoState::Running) => true,
            (DemoState::Running, DemoState::Done) => true,
            (s, DemoState::Failed) => !s.is_final(),
            _ => false,
        }
    }
}
"#;

#[test]
fn state_machine_parses_the_fixture_table() {
    let files = vec![lib_file("states.rs", MACHINE_SRC)];
    let machines = states::parse_machines(&files);
    assert_eq!(machines.len(), 1);
    let m = &machines[0];
    assert_eq!(m.name, "DemoState");
    assert_eq!(m.variants.len(), 4);
    assert!(m.finals.contains("Done") && m.finals.contains("Failed"));
    assert!(m.allows("New", "Running"));
    assert!(m.allows("Running", "Failed")); // wildcard
    assert!(!m.allows("Done", "Failed")); // final is terminal
    assert!(!m.allows("New", "Done")); // no skipping
}

#[test]
fn state_machine_fires_on_illegal_chain() {
    let bad = r#"
fn drive(engine: &mut Engine, u: UnitHandle) {
    u.advance(engine, DemoState::New);
    u.advance(engine, DemoState::Done); // skips Running
}
"#;
    let files = vec![lib_file("states.rs", MACHINE_SRC), lib_file("bad.rs", bad)];
    let machines = states::parse_machines(&files);
    let mut report = Report::default();
    states::check(&files, &machines, &mut report);
    assert!(
        fatal_rules(&report).contains(&"state-machine"),
        "expected an illegal-transition finding: {}",
        report.render_text()
    );
    assert!(report
        .findings
        .iter()
        .any(|f| f.fatal && f.message.contains("New -> Done")));
}

#[test]
fn state_machine_fires_on_dead_table_edge() {
    // Only New -> Running is exercised; Running -> Done is dead, and so is
    // the wildcard -> Failed edge.
    let partial = r#"
fn drive(engine: &mut Engine, u: UnitHandle) {
    u.advance(engine, DemoState::New);
    u.advance(engine, DemoState::Running);
}
"#;
    let files = vec![
        lib_file("states.rs", MACHINE_SRC),
        lib_file("partial.rs", partial),
    ];
    let machines = states::parse_machines(&files);
    let mut report = Report::default();
    states::check(&files, &machines, &mut report);
    assert!(report
        .findings
        .iter()
        .any(|f| f.fatal && f.message.contains("dead transition") && f.message.contains("Done")));
}

#[test]
fn state_machine_silent_on_fully_exercised_lifecycle() {
    // Chains cover both explicit edges; a positive assert and a literal
    // advance cover the wildcard target.
    let good = r#"
fn drive(engine: &mut Engine, u: UnitHandle) {
    u.advance(engine, DemoState::New);
    u.advance(engine, DemoState::Running);
    u.advance(engine, DemoState::Done);
}
fn fail_path(engine: &mut Engine, v: UnitHandle) {
    v.advance(engine, DemoState::Failed);
}
fn check() {
    assert!(DemoState::Running.can_transition_to(DemoState::Failed));
}
"#;
    let files = vec![
        lib_file("states.rs", MACHINE_SRC),
        lib_file("good.rs", good),
    ];
    let machines = states::parse_machines(&files);
    let mut report = Report::default();
    states::check(&files, &machines, &mut report);
    assert_eq!(
        report.fatal_count(),
        0,
        "expected silence: {}",
        report.render_text()
    );
}

#[test]
fn state_machine_waiver_downgrades_finding() {
    let waived = r#"
fn drive(engine: &mut Engine, u: UnitHandle) {
    u.advance(engine, DemoState::New);
    // rp-lint: allow(state-machine): fixture exercises the panic path
    u.advance(engine, DemoState::Done);
}
"#;
    let files = vec![
        lib_file("states.rs", MACHINE_SRC),
        lib_file("waived.rs", waived),
    ];
    let machines = states::parse_machines(&files);
    let mut report = Report::default();
    states::check(&files, &machines, &mut report);
    // The illegal-transition finding is downgraded to waived. (This tiny
    // fixture still reports dead table edges — only the waiver behaviour
    // is under test here.)
    assert!(report
        .findings
        .iter()
        .any(|f| f.waived && f.message.contains("illegal")));
    assert!(!report
        .findings
        .iter()
        .any(|f| f.fatal && f.message.contains("illegal")));
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rp_analyze_fixture_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp root");
    dir
}

#[test]
fn lock_order_fires_on_unblessed_nesting_and_inversion_cycle() {
    let bad = r#"
fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock().expect("a");
    let gb = b.lock().expect("b");
}
fn ba(a: &Mutex<u32>, b: &Mutex<u32>) {
    let gb = b.lock().expect("b");
    let ga = a.lock().expect("a");
}
"#;
    let files = vec![lib_file("crates/x/src/pair.rs", bad)];
    let root = temp_root("lock_bad");
    let mut report = Report::default();
    let edges = locks::check(&files, &root, false, &mut report).expect("lock check");
    assert_eq!(edges.len(), 2, "both orderings observed");
    // Both edges unblessed (no lockorder.toml in temp root) => fatal, and
    // the a->b->a cycle is reported as a potential deadlock.
    assert!(report
        .findings
        .iter()
        .any(|f| f.fatal && f.message.contains("not blessed")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.fatal && f.message.contains("cycle")));
}

#[test]
fn lock_order_silent_on_blessed_acyclic_nesting() {
    let nested = r#"
fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock().expect("a");
    let gb = b.lock().expect("b");
}
"#;
    let files = vec![lib_file("crates/x/src/pair.rs", nested)];
    let root = temp_root("lock_good");
    let mut report = Report::default();
    // Bless first, then check: the same edge must now pass.
    locks::check(&files, &root, true, &mut report).expect("bless");
    locks::check(&files, &root, false, &mut report).expect("recheck");
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn lock_order_sequential_locks_record_no_edge() {
    // Guards dropped before the next acquisition: no nesting.
    let seq = r#"
fn one_at_a_time(a: &Mutex<u32>, b: &Mutex<u32>) {
    {
        let ga = a.lock().expect("a");
    }
    let gb = b.lock().expect("b");
}
fn temporaries(a: &Mutex<u32>, b: &Mutex<u32>) {
    *a.lock().expect("a") += 1;
    *b.lock().expect("b") += 1;
}
fn explicit_drop(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock().expect("a");
    drop(ga);
    let gb = b.lock().expect("b");
}
"#;
    let files = vec![lib_file("crates/x/src/seq.rs", seq)];
    let root = temp_root("lock_seq");
    let mut report = Report::default();
    let edges = locks::check(&files, &root, false, &mut report).expect("lock check");
    assert!(edges.is_empty(), "edges: {edges:?}");
    assert_eq!(report.fatal_count(), 0);
}

#[test]
fn wallclock_fires_in_lib_and_not_in_tests_or_waivers() {
    let bad = "fn t() -> u64 { let t0 = Instant::now(); 0 }\n";
    let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { let t0 = Instant::now(); }\n}\n";
    let waived = "fn t() {\n    // rp-lint: allow(wallclock): measuring the host on purpose\n    let t0 = Instant::now();\n}\n";
    let mut report = Report::default();
    hazards::check_wallclock(&[lib_file("bad.rs", bad)], &mut report);
    assert_eq!(report.fatal_count(), 1);

    let mut report = Report::default();
    hazards::check_wallclock(&[lib_file("t.rs", test_only)], &mut report);
    assert_eq!(report.fatal_count(), 0);

    let mut report = Report::default();
    hazards::check_wallclock(&[lib_file("w.rs", waived)], &mut report);
    assert_eq!(report.fatal_count(), 0);
    assert!(report.findings.iter().any(|f| f.waived));
}

#[test]
fn wallclock_allows_bench_crate_and_string_mentions() {
    let bench = "fn t() { let t0 = Instant::now(); }\n";
    let string_only = r#"fn t() { let s = "Instant::now()"; }"#;
    let mut report = Report::default();
    hazards::check_wallclock(
        &[
            lib_file("crates/bench/src/lib.rs", bench),
            lib_file("doc.rs", string_only),
        ],
        &mut report,
    );
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn wallclock_allows_only_the_telemetry_module_in_sim_core() {
    let clocky = "fn t() { let t0 = Instant::now(); }\n";
    let mut report = Report::default();
    hazards::check_wallclock(
        &[lib_file("crates/sim-core/src/telemetry.rs", clocky)],
        &mut report,
    );
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());

    // Any other sim-core module reading the host clock is still flagged:
    // the flight recorder is the single allowed wall-clock site.
    let mut report = Report::default();
    hazards::check_wallclock(
        &[lib_file("crates/sim-core/src/engine.rs", clocky)],
        &mut report,
    );
    assert_eq!(report.fatal_count(), 1, "{}", report.render_text());
}

#[test]
fn hash_iter_fires_on_iteration_not_on_keyed_access() {
    let bad = r#"
fn summarize(m: &HashMap<String, u64>) -> u64 {
    let mut total = 0;
    for (k, v) in m {
        total += v;
    }
    total
}
"#;
    let good = r#"
fn lookup(m: &HashMap<String, u64>, key: &str) -> u64 {
    m.get(key).copied().unwrap_or(0)
}
"#;
    let mut report = Report::default();
    hazards::check_hash_iter(&[lib_file("bad.rs", bad)], &mut report);
    assert_eq!(report.fatal_count(), 1, "{}", report.render_text());

    let mut report = Report::default();
    hazards::check_hash_iter(&[lib_file("good.rs", good)], &mut report);
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn hash_iter_fires_on_method_iteration_of_tracked_let_binding() {
    let bad = r#"
fn collect_all() -> Vec<u64> {
    let mut seen = HashMap::new();
    seen.insert(1u64, 2u64);
    seen.values().cloned().collect()
}
"#;
    let btree_ok = r#"
fn collect_all() -> Vec<u64> {
    let mut seen = BTreeMap::new();
    seen.insert(1u64, 2u64);
    seen.values().cloned().collect()
}
"#;
    let mut report = Report::default();
    hazards::check_hash_iter(&[lib_file("bad.rs", bad)], &mut report);
    assert_eq!(report.fatal_count(), 1, "{}", report.render_text());

    let mut report = Report::default();
    hazards::check_hash_iter(&[lib_file("ok.rs", btree_ok)], &mut report);
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn par_hazard_fires_on_relaxed_atomics_and_thread_identity() {
    let relaxed = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
    let tls = "thread_local! {\n    static SCRATCH: Cell<u64> = const { Cell::new(0) };\n}\n";
    let tid = "fn tag() -> ThreadId { std::thread::current().id() }\n";
    let mut report = Report::default();
    hazards::check_par_hazard(
        &[
            lib_file("crates/sim-core/src/a.rs", relaxed),
            lib_file("crates/core/src/b.rs", tls),
            lib_file("crates/sim-core/src/c.rs", tid),
        ],
        &mut report,
    );
    // `tid` hits twice (ThreadId + thread::current); the others once each.
    assert_eq!(report.fatal_count(), 4, "{}", report.render_text());
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("Relaxed")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("thread_local!")));
}

#[test]
fn par_hazard_scoped_to_sim_crates_and_honors_waivers_and_tests() {
    // Same hazards outside the simulation crates: out of scope.
    let elsewhere = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
    // Acquire/release ordering in scope: fine.
    let acq = "fn read(c: &AtomicU64) -> u64 { c.load(Ordering::Acquire) }\n";
    // Waived and test-only uses: reported but not fatal / skipped.
    let waived = "fn bump(c: &AtomicU64) {\n    // rp-lint: allow(par-hazard): order-insensitive counter\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
    let test_only = "#[cfg(test)]\nmod tests {\n    fn t(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n}\n";
    let mut report = Report::default();
    hazards::check_par_hazard(
        &[
            lib_file("crates/analyze/src/elsewhere.rs", elsewhere),
            lib_file("crates/sim-core/src/acq.rs", acq),
            lib_file("crates/sim-core/src/waived.rs", waived),
            lib_file("crates/core/src/test_only.rs", test_only),
        ],
        &mut report,
    );
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
    assert!(report.findings.iter().any(|f| f.waived));
}

#[test]
fn unwrap_ratchet_fails_above_baseline_and_notes_below() {
    let two = "fn a(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"set\") }\n";
    let files = vec![lib_file("crates/x/src/two.rs", two)];

    // No baseline => budget 0 => fatal.
    let root = temp_root("ratchet_none");
    let mut report = Report::default();
    hazards::check_unwrap_ratchet(&files, &root, false, &mut report).expect("check");
    assert_eq!(report.fatal_count(), 1);
    assert!(report.findings[0]
        .message
        .contains("exceeds the baseline of 0"));

    // Bless, then recheck: exact budget => silence.
    let root = temp_root("ratchet_exact");
    let mut report = Report::default();
    hazards::check_unwrap_ratchet(&files, &root, true, &mut report).expect("bless");
    hazards::check_unwrap_ratchet(&files, &root, false, &mut report).expect("recheck");
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());

    // Budget higher than reality => note, not error.
    let mut generous = std::collections::BTreeMap::new();
    generous.insert("crates/x/src/two.rs".to_string(), 5u32);
    baseline::write_unwrap_baseline(&root.join("lint_baseline.toml"), &generous).expect("write");
    let mut report = Report::default();
    hazards::check_unwrap_ratchet(&files, &root, false, &mut report).expect("recheck");
    assert_eq!(report.fatal_count(), 0);
    assert!(report
        .findings
        .iter()
        .any(|f| !f.fatal && f.message.contains("below the baseline")));
}

#[test]
fn unwrap_ratchet_ignores_test_code() {
    let test_only =
        "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
    let root = temp_root("ratchet_test");
    let mut report = Report::default();
    hazards::check_unwrap_ratchet(&[lib_file("t.rs", test_only)], &root, false, &mut report)
        .expect("check");
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn span_balance_fires_on_leaked_and_discarded_spans() {
    let leaked = r#"
fn run(engine: &mut Engine) {
    let span = engine.trace.span_begin(engine.now(), "cat", "name", None);
    engine.trace.span_attr(engine.now(), span, "k", "v");
}
"#;
    let discarded = r#"
fn run(engine: &mut Engine) {
    engine.trace.span_begin(engine.now(), "cat", "name", None);
}
"#;
    let mut report = Report::default();
    spans::check(&[lib_file("leak.rs", leaked)], &mut report);
    assert_eq!(report.fatal_count(), 1, "{}", report.render_text());
    assert!(report.findings[0]
        .message
        .contains("never passed to span_end"));

    let mut report = Report::default();
    spans::check(&[lib_file("drop.rs", discarded)], &mut report);
    assert_eq!(report.fatal_count(), 1, "{}", report.render_text());
    assert!(report.findings[0].message.contains("discarded"));
}

#[test]
fn span_balance_silent_on_ended_stored_or_escaping_spans() {
    let good = r#"
fn ended(engine: &mut Engine) {
    let span = engine.trace.span_begin(engine.now(), "cat", "name", None);
    engine.trace.span_end(engine.now(), span);
}
fn ended_in_closure(engine: &mut Engine) {
    let span = engine.trace.span_begin(engine.now(), "cat", "name", None);
    engine.schedule_now(move |eng| {
        eng.trace.span_end(eng.now(), span);
    });
}
fn stored(engine: &mut Engine, rec: &mut Record) {
    rec.span_open = engine.trace.span_begin(engine.now(), "cat", "name", None);
}
fn stored_via_let(engine: &mut Engine, rec: &mut Record) {
    let span = engine.trace.span_begin(engine.now(), "cat", "name", None);
    rec.span_open = Some(span);
}
fn returned(engine: &mut Engine) -> SpanId {
    engine.trace.span_begin(engine.now(), "cat", "name", None)
}
"#;
    let mut report = Report::default();
    spans::check(&[lib_file("good.rs", good)], &mut report);
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn span_balance_waiver_downgrades() {
    let waived = r#"
fn run(engine: &mut Engine) {
    // rp-lint: allow(span-balance): root span intentionally outlives the run
    let span = engine.trace.span_begin(engine.now(), "cat", "name", None);
    engine.trace.span_attr(engine.now(), span, "k", "v");
}
"#;
    let mut report = Report::default();
    spans::check(&[lib_file("w.rs", waived)], &mut report);
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
    assert!(report.findings.iter().any(|f| f.waived));
}

// ---- call-graph-aware PDES contract rules (prep-purity,
// lookahead-coverage, effect-origin) and waiver hygiene ----

use rp_analyze::callgraph::CallGraph;
use rp_analyze::{effects, lookahead, preppurity, waivers};

/// Run one of the call-graph rules over a set of (path, source) fixtures.
fn run_graph_rule(
    srcs: &[(&str, &str)],
    rule: fn(&[SourceFile], &CallGraph, &mut Report),
) -> Report {
    let files: Vec<SourceFile> = srcs.iter().map(|(rel, s)| lib_file(rel, s)).collect();
    let graph = CallGraph::build(&files);
    let mut report = Report::default();
    rule(&files, &graph, &mut report);
    report
}

#[test]
fn prep_purity_fires_on_direct_store_write_in_prep() {
    let bad = r#"
fn drive(engine: &mut Engine, store: Store, dur: SimDuration) {
    engine.schedule_split_in(
        dur,
        domain,
        move || { store.push_units(snapshot, id, units); 1u32 },
        move |eng, v| consume(eng, v),
    );
}
"#;
    let report = run_graph_rule(&[("crates/core/src/bad.rs", bad)], preppurity::check);
    assert!(
        fatal_rules(&report).contains(&"prep-purity"),
        "store write inside a prep closure must be fatal: {}",
        report.render_text()
    );
}

#[test]
fn prep_purity_fires_on_transitively_reached_effect() {
    // The prep looks innocent; two hops down the call graph it mutates
    // the shared metrics registry.
    let bad = r#"
fn leaf(engine: &mut Engine) {
    engine.metrics.incr("boom");
}
fn middle(engine: &mut Engine) {
    leaf(engine);
}
fn drive(engine: &mut Engine, dur: SimDuration) {
    engine.schedule_split_in(dur, domain, move || middle_value(), move |eng, v| apply(eng, v));
}
fn middle_value() -> u32 {
    middle(whatever());
    7
}
"#;
    let report = run_graph_rule(&[("crates/core/src/bad.rs", bad)], preppurity::check);
    assert!(
        fatal_rules(&report).contains(&"prep-purity"),
        "transitive registry mutation must be fatal: {}",
        report.render_text()
    );
    // The message names the path so the finding is actionable.
    let f = report
        .findings
        .iter()
        .find(|f| f.rule == "prep-purity")
        .expect("finding");
    assert!(
        f.message.contains("middle_value") && f.message.contains("leaf"),
        "message should carry the call path: {}",
        f.message
    );
}

#[test]
fn prep_purity_silent_on_draft_building_prep() {
    // Building draft values — including via a pure helper and a draft
    // builder whose method names collide with registry mutators — is the
    // sanctioned prep-side channel.
    let good = r#"
pub struct MetricDraft;
impl MetricDraft {
    pub fn new() -> MetricDraft { MetricDraft }
    pub fn incr(self, name: &str) -> MetricDraft { self }
    pub fn gauge_set(self, name: &str, v: f64) -> MetricDraft { self }
}
fn pure_label(id: u64) -> String {
    format!("unit-{id}")
}
fn drive(engine: &mut Engine, dur: SimDuration, id: u64) {
    engine.schedule_split_in(
        dur,
        domain,
        move || MetricDraft::new().incr(&pure_label(id)).gauge_set("g", 1.0),
        move |eng, d| eng.apply_draft(d),
    );
}
"#;
    let report = run_graph_rule(&[("crates/core/src/good.rs", good)], preppurity::check);
    assert_eq!(
        report.fatal_count(),
        0,
        "draft building must stay clean: {}",
        report.render_text()
    );
}

#[test]
fn prep_purity_allows_rng_threaded_through_captured_state() {
    // A draw on a closure-local rng (forked and captured by value) is the
    // documented escape hatch; a draw through the engine is not.
    let good = r#"
fn drive(engine: &mut Engine, dur: SimDuration, mut local_rng: SimRng) {
    engine.schedule_split_in(
        dur,
        domain,
        move || local_rng.uniform(0.0, 1.0),
        move |eng, v| apply(eng, v),
    );
}
"#;
    let bad = r#"
fn drive(engine: &mut Engine, dur: SimDuration) {
    engine.schedule_split_in(
        dur,
        domain,
        move || engine.rng.uniform(0.0, 1.0),
        move |eng, v| apply(eng, v),
    );
}
"#;
    let ok = run_graph_rule(&[("crates/core/src/good.rs", good)], preppurity::check);
    assert_eq!(ok.fatal_count(), 0, "{}", ok.render_text());
    let nok = run_graph_rule(&[("crates/core/src/bad.rs", bad)], preppurity::check);
    assert!(
        fatal_rules(&nok).contains(&"prep-purity"),
        "shared-rng draw must be fatal: {}",
        nok.render_text()
    );
}

#[test]
fn prep_purity_waiver_downgrades() {
    let waived = r#"
fn drive(engine: &mut Engine, store: Store, dur: SimDuration) {
    engine.schedule_split_in(
        dur,
        domain,
        // rp-lint: allow(prep-purity): effect is proven idempotent and commutative for this test double
        move || { store.push_units(snapshot, id, units); 1u32 },
        move |eng, v| consume(eng, v),
    );
}
"#;
    let report = run_graph_rule(&[("crates/core/src/w.rs", waived)], preppurity::check);
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
    assert!(report
        .findings
        .iter()
        .any(|f| f.waived && f.rule == "prep-purity"));
}

#[test]
fn lookahead_coverage_fires_on_unregistered_cross_domain_delay() {
    let bad = r#"
fn poll(engine: &mut Engine, poll_interval: SimDuration) {
    engine.schedule_in_domain(poll_interval, domain, move |eng| on_poll(eng));
}
"#;
    let report = run_graph_rule(&[("crates/core/src/net.rs", bad)], lookahead::check);
    assert!(
        fatal_rules(&report).contains(&"lookahead-coverage"),
        "unregistered cross-domain delay must be fatal: {}",
        report.render_text()
    );
}

#[test]
fn lookahead_coverage_fires_on_latency_named_plain_schedule() {
    // Even a plain schedule_in is a claim when its delay is a latency.
    let bad = r#"
fn deliver(engine: &mut Engine, link_latency: SimDuration) {
    engine.schedule_in(link_latency, move |eng| arrive(eng));
}
"#;
    let report = run_graph_rule(&[("crates/core/src/xfer.rs", bad)], lookahead::check);
    assert!(
        fatal_rules(&report).contains(&"lookahead-coverage"),
        "latency-named delay without registration must be fatal: {}",
        report.render_text()
    );
}

#[test]
fn lookahead_coverage_silent_when_registered_in_caller() {
    // Registration in a transitive caller covers the source: the caller
    // claims the latency before the callee schedules with it.
    let good = r#"
fn setup(engine: &mut Engine, poll_interval: SimDuration) {
    engine.note_lookahead_from("net.poll", poll_interval);
    poll(engine, poll_interval);
}
fn poll(engine: &mut Engine, poll_interval: SimDuration) {
    engine.schedule_in_domain(poll_interval, domain, move |eng| on_poll(eng));
}
"#;
    let report = run_graph_rule(&[("crates/core/src/net.rs", good)], lookahead::check);
    assert_eq!(
        report.fatal_count(),
        0,
        "caller-side registration must cover the callee: {}",
        report.render_text()
    );
}

#[test]
fn lookahead_coverage_ignores_work_durations() {
    // A plain schedule of a compute duration makes no cross-domain claim.
    let good = r#"
fn run(engine: &mut Engine, compute_cost: SimDuration) {
    engine.schedule_in(compute_cost, move |eng| finish(eng));
}
"#;
    let report = run_graph_rule(&[("crates/core/src/work.rs", good)], lookahead::check);
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn lookahead_coverage_waiver_downgrades() {
    let waived = r#"
fn poll(engine: &mut Engine, poll_interval: SimDuration) {
    // rp-lint: allow(lookahead-coverage): same-domain self-wakeup, no coupling claim
    engine.schedule_in_domain(poll_interval, domain, move |eng| on_poll(eng));
}
"#;
    let report = run_graph_rule(&[("crates/core/src/w.rs", waived)], lookahead::check);
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
    assert!(report
        .findings
        .iter()
        .any(|f| f.waived && f.rule == "lookahead-coverage"));
}

#[test]
fn effect_origin_fires_on_origin_less_emission() {
    let bad = r#"
fn report(engine: &mut Engine, store: &CoordinationStore) {
    store.roundtrip(engine, move |eng| done(eng));
}
"#;
    let report = run_graph_rule(&[("crates/core/src/side.rs", bad)], effects::check);
    assert!(
        fatal_rules(&report).contains(&"effect-origin"),
        "origin-less roundtrip must be fatal: {}",
        report.render_text()
    );
}

#[test]
fn effect_origin_fires_on_literal_epoch_and_fabricated_origin() {
    let bad = r#"
fn report(engine: &mut Engine, store: &CoordinationStore, pilot: PilotId) {
    store.roundtrip_from(engine, pilot, 0, move |eng| done(eng));
}
fn fabricate(engine: &mut Engine, store: &CoordinationStore) {
    let origin = Some((PilotId(3), 0));
    store.stash(origin);
}
"#;
    let report = run_graph_rule(&[("crates/core/src/side.rs", bad)], effects::check);
    let fatals = fatal_rules(&report);
    assert_eq!(
        fatals.iter().filter(|r| **r == "effect-origin").count(),
        2,
        "literal epoch and fabricated tuple must both be fatal: {}",
        report.render_text()
    );
}

#[test]
fn effect_origin_fires_on_redispatch_before_revoke() {
    let bad = r#"
impl UnitManager {
    fn monitor_tick(&self, engine: &mut Engine, id: PilotId) {
        self.handle_pilot_loss(engine, id, "gap");
        store.revoke_lease(engine, id);
    }
}
"#;
    let report = run_graph_rule(&[("crates/core/src/manager.rs", bad)], effects::check);
    assert!(
        fatal_rules(&report).contains(&"effect-origin"),
        "re-dispatch before revoke must be fatal: {}",
        report.render_text()
    );
}

#[test]
fn effect_origin_silent_on_threaded_origin_and_revoke_first() {
    let good = r#"
fn report(engine: &mut Engine, store: &CoordinationStore, pilot: PilotId, epoch: u64) {
    store.roundtrip_from(engine, pilot, epoch, move |eng| done(eng));
}
"#;
    let good_manager = r#"
impl UnitManager {
    fn monitor_tick(&self, engine: &mut Engine, id: PilotId) {
        store.revoke_lease(engine, id);
        self.handle_pilot_loss(engine, id, "lease expired");
    }
}
"#;
    let report = run_graph_rule(
        &[
            ("crates/core/src/side.rs", good),
            ("crates/core/src/manager.rs", good_manager),
        ],
        effects::check,
    );
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn effect_origin_waiver_downgrades() {
    let waived = r#"
fn report(engine: &mut Engine, store: &CoordinationStore) {
    // rp-lint: allow(effect-origin): bootstrap write before any lease exists
    store.roundtrip(engine, move |eng| done(eng));
}
"#;
    let report = run_graph_rule(&[("crates/core/src/w.rs", waived)], effects::check);
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
    assert!(report
        .findings
        .iter()
        .any(|f| f.waived && f.rule == "effect-origin"));
}

#[test]
fn stale_waiver_flags_dead_and_unknown_waivers_only() {
    // One live waiver (suppresses a real wallclock finding), one dead
    // (nothing on its line fires), one with a typo'd rule name.
    let src = r#"
fn run() {
    // rp-lint: allow(wallclock): host timing is the point here
    let t = Instant::now();
    // rp-lint: allow(wallclock): nothing here reads the clock anymore
    let x = 1;
    // rp-lint: allow(wallclcok): typo never worked
    let y = Instant::now();
}
"#;
    let files = vec![lib_file("crates/core/src/x.rs", src)];
    let mut report = Report::default();
    hazards::check_wallclock(&files, &mut report);
    waivers::check_stale(&files, &mut report);
    let stale: Vec<&String> = report
        .findings
        .iter()
        .filter(|f| f.rule == "stale-waiver")
        .map(|f| &f.message)
        .collect();
    assert_eq!(stale.len(), 2, "{}", report.render_text());
    assert!(stale.iter().any(|m| m.contains("no longer matches")));
    assert!(stale.iter().any(|m| m.contains("unknown rule `wallclcok`")));
    // Stale findings are info-level: they never fail the pass alone...
    assert!(report
        .findings
        .iter()
        .filter(|f| f.rule == "stale-waiver")
        .all(|f| !f.fatal));
    // ...and the live waiver is not flagged.
    assert!(!stale.iter().any(|m| m.contains("host timing")));
}

#[test]
fn waiver_inventory_lists_file_line_rules_and_reason() {
    let src = r#"
fn run() {
    // rp-lint: allow(wallclock, hash-iter): measured on the host by design
    let t = Instant::now();
}
"#;
    let files = vec![lib_file("crates/core/src/x.rs", src)];
    let entries = waivers::collect(&files);
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].file, "crates/core/src/x.rs");
    assert_eq!(entries[0].line, 3);
    assert_eq!(entries[0].rules, vec!["wallclock", "hash-iter"]);
    assert_eq!(entries[0].reason, "measured on the host by design");
    let rendered = waivers::render(&entries);
    assert!(rendered.contains("crates/core/src/x.rs:3"));
    assert!(rendered.contains("measured on the host by design"));
    assert!(rendered.contains("1 waiver(s)"));
}
