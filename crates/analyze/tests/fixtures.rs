//! Fixture tests: every rule family must demonstrably fire on a known-bad
//! snippet and stay silent on the known-good equivalent. This is the
//! executable proof that the lint pass actually guards the invariants it
//! claims to — a rule that cannot fail is not a rule.

use rp_analyze::report::Report;
use rp_analyze::scan::{FileKind, SourceFile};
use rp_analyze::{baseline, hazards, locks, spans, states};

fn lib_file(rel: &str, src: &str) -> SourceFile {
    SourceFile::from_source(rel, FileKind::Lib, src)
}

fn fatal_rules(report: &Report) -> Vec<&'static str> {
    report
        .findings
        .iter()
        .filter(|f| f.fatal)
        .map(|f| f.rule)
        .collect()
}

/// A miniature lifecycle in the same shape as crates/core/src/states.rs.
const MACHINE_SRC: &str = r#"
pub enum DemoState {
    New,
    Running,
    Done,
    Failed,
}

impl DemoState {
    pub fn is_final(self) -> bool {
        matches!(self, DemoState::Done | DemoState::Failed)
    }
    pub fn can_transition_to(self, next: DemoState) -> bool {
        match (self, next) {
            (DemoState::New, DemoState::Running) => true,
            (DemoState::Running, DemoState::Done) => true,
            (s, DemoState::Failed) => !s.is_final(),
            _ => false,
        }
    }
}
"#;

#[test]
fn state_machine_parses_the_fixture_table() {
    let files = vec![lib_file("states.rs", MACHINE_SRC)];
    let machines = states::parse_machines(&files);
    assert_eq!(machines.len(), 1);
    let m = &machines[0];
    assert_eq!(m.name, "DemoState");
    assert_eq!(m.variants.len(), 4);
    assert!(m.finals.contains("Done") && m.finals.contains("Failed"));
    assert!(m.allows("New", "Running"));
    assert!(m.allows("Running", "Failed")); // wildcard
    assert!(!m.allows("Done", "Failed")); // final is terminal
    assert!(!m.allows("New", "Done")); // no skipping
}

#[test]
fn state_machine_fires_on_illegal_chain() {
    let bad = r#"
fn drive(engine: &mut Engine, u: UnitHandle) {
    u.advance(engine, DemoState::New);
    u.advance(engine, DemoState::Done); // skips Running
}
"#;
    let files = vec![lib_file("states.rs", MACHINE_SRC), lib_file("bad.rs", bad)];
    let machines = states::parse_machines(&files);
    let mut report = Report::default();
    states::check(&files, &machines, &mut report);
    assert!(
        fatal_rules(&report).contains(&"state-machine"),
        "expected an illegal-transition finding: {}",
        report.render_text()
    );
    assert!(report
        .findings
        .iter()
        .any(|f| f.fatal && f.message.contains("New -> Done")));
}

#[test]
fn state_machine_fires_on_dead_table_edge() {
    // Only New -> Running is exercised; Running -> Done is dead, and so is
    // the wildcard -> Failed edge.
    let partial = r#"
fn drive(engine: &mut Engine, u: UnitHandle) {
    u.advance(engine, DemoState::New);
    u.advance(engine, DemoState::Running);
}
"#;
    let files = vec![
        lib_file("states.rs", MACHINE_SRC),
        lib_file("partial.rs", partial),
    ];
    let machines = states::parse_machines(&files);
    let mut report = Report::default();
    states::check(&files, &machines, &mut report);
    assert!(report
        .findings
        .iter()
        .any(|f| f.fatal && f.message.contains("dead transition") && f.message.contains("Done")));
}

#[test]
fn state_machine_silent_on_fully_exercised_lifecycle() {
    // Chains cover both explicit edges; a positive assert and a literal
    // advance cover the wildcard target.
    let good = r#"
fn drive(engine: &mut Engine, u: UnitHandle) {
    u.advance(engine, DemoState::New);
    u.advance(engine, DemoState::Running);
    u.advance(engine, DemoState::Done);
}
fn fail_path(engine: &mut Engine, v: UnitHandle) {
    v.advance(engine, DemoState::Failed);
}
fn check() {
    assert!(DemoState::Running.can_transition_to(DemoState::Failed));
}
"#;
    let files = vec![
        lib_file("states.rs", MACHINE_SRC),
        lib_file("good.rs", good),
    ];
    let machines = states::parse_machines(&files);
    let mut report = Report::default();
    states::check(&files, &machines, &mut report);
    assert_eq!(
        report.fatal_count(),
        0,
        "expected silence: {}",
        report.render_text()
    );
}

#[test]
fn state_machine_waiver_downgrades_finding() {
    let waived = r#"
fn drive(engine: &mut Engine, u: UnitHandle) {
    u.advance(engine, DemoState::New);
    // rp-lint: allow(state-machine): fixture exercises the panic path
    u.advance(engine, DemoState::Done);
}
"#;
    let files = vec![
        lib_file("states.rs", MACHINE_SRC),
        lib_file("waived.rs", waived),
    ];
    let machines = states::parse_machines(&files);
    let mut report = Report::default();
    states::check(&files, &machines, &mut report);
    // The illegal-transition finding is downgraded to waived. (This tiny
    // fixture still reports dead table edges — only the waiver behaviour
    // is under test here.)
    assert!(report
        .findings
        .iter()
        .any(|f| f.waived && f.message.contains("illegal")));
    assert!(!report
        .findings
        .iter()
        .any(|f| f.fatal && f.message.contains("illegal")));
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rp_analyze_fixture_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp root");
    dir
}

#[test]
fn lock_order_fires_on_unblessed_nesting_and_inversion_cycle() {
    let bad = r#"
fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock().expect("a");
    let gb = b.lock().expect("b");
}
fn ba(a: &Mutex<u32>, b: &Mutex<u32>) {
    let gb = b.lock().expect("b");
    let ga = a.lock().expect("a");
}
"#;
    let files = vec![lib_file("crates/x/src/pair.rs", bad)];
    let root = temp_root("lock_bad");
    let mut report = Report::default();
    let edges = locks::check(&files, &root, false, &mut report).expect("lock check");
    assert_eq!(edges.len(), 2, "both orderings observed");
    // Both edges unblessed (no lockorder.toml in temp root) => fatal, and
    // the a->b->a cycle is reported as a potential deadlock.
    assert!(report
        .findings
        .iter()
        .any(|f| f.fatal && f.message.contains("not blessed")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.fatal && f.message.contains("cycle")));
}

#[test]
fn lock_order_silent_on_blessed_acyclic_nesting() {
    let nested = r#"
fn ab(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock().expect("a");
    let gb = b.lock().expect("b");
}
"#;
    let files = vec![lib_file("crates/x/src/pair.rs", nested)];
    let root = temp_root("lock_good");
    let mut report = Report::default();
    // Bless first, then check: the same edge must now pass.
    locks::check(&files, &root, true, &mut report).expect("bless");
    locks::check(&files, &root, false, &mut report).expect("recheck");
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn lock_order_sequential_locks_record_no_edge() {
    // Guards dropped before the next acquisition: no nesting.
    let seq = r#"
fn one_at_a_time(a: &Mutex<u32>, b: &Mutex<u32>) {
    {
        let ga = a.lock().expect("a");
    }
    let gb = b.lock().expect("b");
}
fn temporaries(a: &Mutex<u32>, b: &Mutex<u32>) {
    *a.lock().expect("a") += 1;
    *b.lock().expect("b") += 1;
}
fn explicit_drop(a: &Mutex<u32>, b: &Mutex<u32>) {
    let ga = a.lock().expect("a");
    drop(ga);
    let gb = b.lock().expect("b");
}
"#;
    let files = vec![lib_file("crates/x/src/seq.rs", seq)];
    let root = temp_root("lock_seq");
    let mut report = Report::default();
    let edges = locks::check(&files, &root, false, &mut report).expect("lock check");
    assert!(edges.is_empty(), "edges: {edges:?}");
    assert_eq!(report.fatal_count(), 0);
}

#[test]
fn wallclock_fires_in_lib_and_not_in_tests_or_waivers() {
    let bad = "fn t() -> u64 { let t0 = Instant::now(); 0 }\n";
    let test_only = "#[cfg(test)]\nmod tests {\n    fn t() { let t0 = Instant::now(); }\n}\n";
    let waived = "fn t() {\n    // rp-lint: allow(wallclock): measuring the host on purpose\n    let t0 = Instant::now();\n}\n";
    let mut report = Report::default();
    hazards::check_wallclock(&[lib_file("bad.rs", bad)], &mut report);
    assert_eq!(report.fatal_count(), 1);

    let mut report = Report::default();
    hazards::check_wallclock(&[lib_file("t.rs", test_only)], &mut report);
    assert_eq!(report.fatal_count(), 0);

    let mut report = Report::default();
    hazards::check_wallclock(&[lib_file("w.rs", waived)], &mut report);
    assert_eq!(report.fatal_count(), 0);
    assert!(report.findings.iter().any(|f| f.waived));
}

#[test]
fn wallclock_allows_bench_crate_and_string_mentions() {
    let bench = "fn t() { let t0 = Instant::now(); }\n";
    let string_only = r#"fn t() { let s = "Instant::now()"; }"#;
    let mut report = Report::default();
    hazards::check_wallclock(
        &[
            lib_file("crates/bench/src/lib.rs", bench),
            lib_file("doc.rs", string_only),
        ],
        &mut report,
    );
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn wallclock_allows_only_the_telemetry_module_in_sim_core() {
    let clocky = "fn t() { let t0 = Instant::now(); }\n";
    let mut report = Report::default();
    hazards::check_wallclock(
        &[lib_file("crates/sim-core/src/telemetry.rs", clocky)],
        &mut report,
    );
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());

    // Any other sim-core module reading the host clock is still flagged:
    // the flight recorder is the single allowed wall-clock site.
    let mut report = Report::default();
    hazards::check_wallclock(
        &[lib_file("crates/sim-core/src/engine.rs", clocky)],
        &mut report,
    );
    assert_eq!(report.fatal_count(), 1, "{}", report.render_text());
}

#[test]
fn hash_iter_fires_on_iteration_not_on_keyed_access() {
    let bad = r#"
fn summarize(m: &HashMap<String, u64>) -> u64 {
    let mut total = 0;
    for (k, v) in m {
        total += v;
    }
    total
}
"#;
    let good = r#"
fn lookup(m: &HashMap<String, u64>, key: &str) -> u64 {
    m.get(key).copied().unwrap_or(0)
}
"#;
    let mut report = Report::default();
    hazards::check_hash_iter(&[lib_file("bad.rs", bad)], &mut report);
    assert_eq!(report.fatal_count(), 1, "{}", report.render_text());

    let mut report = Report::default();
    hazards::check_hash_iter(&[lib_file("good.rs", good)], &mut report);
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn hash_iter_fires_on_method_iteration_of_tracked_let_binding() {
    let bad = r#"
fn collect_all() -> Vec<u64> {
    let mut seen = HashMap::new();
    seen.insert(1u64, 2u64);
    seen.values().cloned().collect()
}
"#;
    let btree_ok = r#"
fn collect_all() -> Vec<u64> {
    let mut seen = BTreeMap::new();
    seen.insert(1u64, 2u64);
    seen.values().cloned().collect()
}
"#;
    let mut report = Report::default();
    hazards::check_hash_iter(&[lib_file("bad.rs", bad)], &mut report);
    assert_eq!(report.fatal_count(), 1, "{}", report.render_text());

    let mut report = Report::default();
    hazards::check_hash_iter(&[lib_file("ok.rs", btree_ok)], &mut report);
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn par_hazard_fires_on_relaxed_atomics_and_thread_identity() {
    let relaxed = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
    let tls = "thread_local! {\n    static SCRATCH: Cell<u64> = const { Cell::new(0) };\n}\n";
    let tid = "fn tag() -> ThreadId { std::thread::current().id() }\n";
    let mut report = Report::default();
    hazards::check_par_hazard(
        &[
            lib_file("crates/sim-core/src/a.rs", relaxed),
            lib_file("crates/core/src/b.rs", tls),
            lib_file("crates/sim-core/src/c.rs", tid),
        ],
        &mut report,
    );
    // `tid` hits twice (ThreadId + thread::current); the others once each.
    assert_eq!(report.fatal_count(), 4, "{}", report.render_text());
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("Relaxed")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("thread_local!")));
}

#[test]
fn par_hazard_scoped_to_sim_crates_and_honors_waivers_and_tests() {
    // Same hazards outside the simulation crates: out of scope.
    let elsewhere = "fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
    // Acquire/release ordering in scope: fine.
    let acq = "fn read(c: &AtomicU64) -> u64 { c.load(Ordering::Acquire) }\n";
    // Waived and test-only uses: reported but not fatal / skipped.
    let waived = "fn bump(c: &AtomicU64) {\n    // rp-lint: allow(par-hazard): order-insensitive counter\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
    let test_only = "#[cfg(test)]\nmod tests {\n    fn t(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n}\n";
    let mut report = Report::default();
    hazards::check_par_hazard(
        &[
            lib_file("crates/analyze/src/elsewhere.rs", elsewhere),
            lib_file("crates/sim-core/src/acq.rs", acq),
            lib_file("crates/sim-core/src/waived.rs", waived),
            lib_file("crates/core/src/test_only.rs", test_only),
        ],
        &mut report,
    );
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
    assert!(report.findings.iter().any(|f| f.waived));
}

#[test]
fn unwrap_ratchet_fails_above_baseline_and_notes_below() {
    let two = "fn a(x: Option<u32>) -> u32 { x.unwrap() + x.expect(\"set\") }\n";
    let files = vec![lib_file("crates/x/src/two.rs", two)];

    // No baseline => budget 0 => fatal.
    let root = temp_root("ratchet_none");
    let mut report = Report::default();
    hazards::check_unwrap_ratchet(&files, &root, false, &mut report).expect("check");
    assert_eq!(report.fatal_count(), 1);
    assert!(report.findings[0]
        .message
        .contains("exceeds the baseline of 0"));

    // Bless, then recheck: exact budget => silence.
    let root = temp_root("ratchet_exact");
    let mut report = Report::default();
    hazards::check_unwrap_ratchet(&files, &root, true, &mut report).expect("bless");
    hazards::check_unwrap_ratchet(&files, &root, false, &mut report).expect("recheck");
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());

    // Budget higher than reality => note, not error.
    let mut generous = std::collections::BTreeMap::new();
    generous.insert("crates/x/src/two.rs".to_string(), 5u32);
    baseline::write_unwrap_baseline(&root.join("lint_baseline.toml"), &generous).expect("write");
    let mut report = Report::default();
    hazards::check_unwrap_ratchet(&files, &root, false, &mut report).expect("recheck");
    assert_eq!(report.fatal_count(), 0);
    assert!(report
        .findings
        .iter()
        .any(|f| !f.fatal && f.message.contains("below the baseline")));
}

#[test]
fn unwrap_ratchet_ignores_test_code() {
    let test_only =
        "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
    let root = temp_root("ratchet_test");
    let mut report = Report::default();
    hazards::check_unwrap_ratchet(&[lib_file("t.rs", test_only)], &root, false, &mut report)
        .expect("check");
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn span_balance_fires_on_leaked_and_discarded_spans() {
    let leaked = r#"
fn run(engine: &mut Engine) {
    let span = engine.trace.span_begin(engine.now(), "cat", "name", None);
    engine.trace.span_attr(engine.now(), span, "k", "v");
}
"#;
    let discarded = r#"
fn run(engine: &mut Engine) {
    engine.trace.span_begin(engine.now(), "cat", "name", None);
}
"#;
    let mut report = Report::default();
    spans::check(&[lib_file("leak.rs", leaked)], &mut report);
    assert_eq!(report.fatal_count(), 1, "{}", report.render_text());
    assert!(report.findings[0]
        .message
        .contains("never passed to span_end"));

    let mut report = Report::default();
    spans::check(&[lib_file("drop.rs", discarded)], &mut report);
    assert_eq!(report.fatal_count(), 1, "{}", report.render_text());
    assert!(report.findings[0].message.contains("discarded"));
}

#[test]
fn span_balance_silent_on_ended_stored_or_escaping_spans() {
    let good = r#"
fn ended(engine: &mut Engine) {
    let span = engine.trace.span_begin(engine.now(), "cat", "name", None);
    engine.trace.span_end(engine.now(), span);
}
fn ended_in_closure(engine: &mut Engine) {
    let span = engine.trace.span_begin(engine.now(), "cat", "name", None);
    engine.schedule_now(move |eng| {
        eng.trace.span_end(eng.now(), span);
    });
}
fn stored(engine: &mut Engine, rec: &mut Record) {
    rec.span_open = engine.trace.span_begin(engine.now(), "cat", "name", None);
}
fn stored_via_let(engine: &mut Engine, rec: &mut Record) {
    let span = engine.trace.span_begin(engine.now(), "cat", "name", None);
    rec.span_open = Some(span);
}
fn returned(engine: &mut Engine) -> SpanId {
    engine.trace.span_begin(engine.now(), "cat", "name", None)
}
"#;
    let mut report = Report::default();
    spans::check(&[lib_file("good.rs", good)], &mut report);
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
}

#[test]
fn span_balance_waiver_downgrades() {
    let waived = r#"
fn run(engine: &mut Engine) {
    // rp-lint: allow(span-balance): root span intentionally outlives the run
    let span = engine.trace.span_begin(engine.now(), "cat", "name", None);
    engine.trace.span_attr(engine.now(), span, "k", "v");
}
"#;
    let mut report = Report::default();
    spans::check(&[lib_file("w.rs", waived)], &mut report);
    assert_eq!(report.fatal_count(), 0, "{}", report.render_text());
    assert!(report.findings.iter().any(|f| f.waived));
}
