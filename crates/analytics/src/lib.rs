//! # rp-analytics — the paper's application workloads
//!
//! * [`kmeans`] — the Fig. 6 benchmark workload in four shapes: native
//!   parallel Lloyd, MapReduce, mini-RDD, and (in [`scenarios`]) the
//!   pilot-orchestrated RP / RP-YARN variants.
//! * [`scenarios`] — the three Fig. 6 scenarios with calibrated cost
//!   models and the run harnesses the benchmark binaries call.
//! * [`trajectory`] — molecular-dynamics trajectory analysis (RMSD
//!   series, moments, PCA), the paper's motivating domain.
//! * [`graph`] — triangle counting (network-science workload, ref \[12\]).
//! * [`dataset`] — seeded synthetic data generators for all of the above.

pub mod dataset;
pub mod graph;
pub mod kmeans;
pub mod scenarios;
pub mod trajectory;
pub mod workloads;

pub use dataset::{gaussian_blobs, md_trajectory, random_graph, Frame, Graph, Point3};
pub use kmeans::{kmeans_mapreduce, kmeans_rdd, lloyd, lloyd_sequential, KMeansResult};
pub use scenarios::{
    fig6_session_config, nodes_for_tasks, run_rp_kmeans, run_rp_spark_kmeans, run_rp_yarn_kmeans,
    KMeansCalibration, KMeansRunStats, KMeansScenario, SCENARIOS,
};
pub use trajectory::{leaflet_finder, moments, pca, rmsd, rmsd_series, Moments, Pca};
pub use workloads::{grep, inverted_index, rmsd_histogram_mapreduce, word_count};
