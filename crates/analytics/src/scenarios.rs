//! The paper's K-Means evaluation scenarios (Fig. 6) and their
//! pilot-orchestrated runners.
//!
//! Three scenarios with constant compute (points × clusters = 5·10⁷) and
//! shuffle volume growing with the number of points:
//!
//! | scenario | points    | clusters |
//! |----------|-----------|----------|
//! | S1       | 10 000    | 5 000    |
//! | S2       | 100 000   | 500      |
//! | S3       | 1 000 000 | 50       |
//!
//! Two execution paths, exactly as in §IV-B:
//!
//! * **RADICAL-Pilot (plain)** — each iteration fans out `tasks`
//!   Compute-Units that read their partition, compute assignments and
//!   write intermediate records to **Lustre**; an aggregation unit merges
//!   them into new centroids. Runtime is measured from pilot activation
//!   (cluster provisioning excluded).
//! * **RADICAL-Pilot-YARN (Mode I)** — each iteration is one MapReduce
//!   job on the pilot's YARN cluster, shuffling through **node-local
//!   disks**; runtime *includes* the YARN cluster download/startup, as in
//!   the paper.

use rp_hdfs::StoragePolicy;
use rp_mapreduce::{MrCostModel, MrJobSpec, ShuffleBackend};
use rp_pilot::{
    AccessMode, ComputeUnitDescription, PilotDescription, PilotManager, PilotState, Session,
    UmScheduler, UnitHandle, UnitIoTarget, UnitManager, UnitState, WorkSpec,
};
use rp_sim::{Engine, SimDuration, MB};
use rp_yarn::Resource;

/// One Fig. 6 scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeansScenario {
    pub label: &'static str,
    pub points: u64,
    pub clusters: u64,
}

/// The three scenarios of §IV-B.
pub const SCENARIOS: [KMeansScenario; 3] = [
    KMeansScenario {
        label: "10,000 points / 5,000 clusters",
        points: 10_000,
        clusters: 5_000,
    },
    KMeansScenario {
        label: "100,000 points / 500 clusters",
        points: 100_000,
        clusters: 500,
    },
    KMeansScenario {
        label: "1,000,000 points / 50 clusters",
        points: 1_000_000,
        clusters: 50,
    },
];

/// Calibrated workload constants. Values are chosen so absolute runtimes
/// land in Fig. 6's range (hundreds to ~2000 s) for the Python/Hadoop-era
/// implementations the paper measured; every constant is documented.
#[derive(Debug, Clone)]
pub struct KMeansCalibration {
    /// Core-seconds per (point × cluster) distance evaluation on a
    /// reference core. 1.2e-4 reflects the paper's interpreted-language
    /// K-Means (≈8 000 point-cluster evaluations/s/core).
    pub core_s_per_pair: f64,
    /// Bytes per input point (3 doubles + framing).
    pub input_bytes_per_point: f64,
    /// Bytes per intermediate (cluster-id, point, count) record emitted
    /// per point into the shuffle / Lustre exchange (text serialization).
    pub record_bytes: f64,
    /// Core-seconds to merge one intermediate record on the reduce side.
    pub reduce_core_s_per_record: f64,
    /// Reducers per MapReduce job (Hadoop K-Means uses a small fixed
    /// count; reduce work is therefore an Amdahl term that grows with
    /// points — the paper's "decline of the speedup" with I/O).
    pub mr_reducers: usize,
    /// Memory demand per task container (JVM/Python heap), MB.
    pub task_mem_mb: u64,
    pub iterations: u32,
}

impl Default for KMeansCalibration {
    fn default() -> Self {
        KMeansCalibration {
            core_s_per_pair: 1.2e-4,
            input_bytes_per_point: 30.0,
            record_bytes: 600.0,
            reduce_core_s_per_record: 4.0e-5,
            mr_reducers: 4,
            task_mem_mb: 2_048,
            iterations: 2,
        }
    }
}

impl KMeansScenario {
    /// Total compute per iteration in reference core-seconds.
    pub fn compute_core_s(&self, cal: &KMeansCalibration) -> f64 {
        self.points as f64 * self.clusters as f64 * cal.core_s_per_pair
    }

    pub fn input_bytes(&self, cal: &KMeansCalibration) -> f64 {
        self.points as f64 * cal.input_bytes_per_point
    }

    pub fn shuffle_bytes(&self, cal: &KMeansCalibration) -> f64 {
        self.points as f64 * cal.record_bytes
    }
}

/// Outcome of one K-Means run through the pilot stack.
#[derive(Debug, Clone)]
pub struct KMeansRunStats {
    /// Time-to-completion as the paper reports it (see module docs for
    /// what each path includes).
    pub time_to_completion: f64,
    /// Framework bootstrap portion (YARN path only; 0 for plain RP).
    pub bootstrap_s: f64,
    pub tasks: u32,
    pub nodes: u32,
    pub iterations: u32,
}

/// Session configuration the Fig. 6 harness uses: production-like
/// latencies plus the serial Python-agent spawn rate of 2015-era
/// RADICAL-Pilot (~0.3 units/s), which is what limits plain-RP scaling
/// at 32 tasks (see EXPERIMENTS.md for the calibration argument).
pub fn fig6_session_config() -> rp_pilot::SessionConfig {
    rp_pilot::SessionConfig {
        exec_prep_s: (4.0, 0.5),
        ..rp_pilot::SessionConfig::default()
    }
}

/// Paper's task→node mapping: 8 tasks on 1 node, 16 on 2, 32 on 3.
pub fn nodes_for_tasks(tasks: u32) -> u32 {
    match tasks {
        0..=8 => 1,
        9..=16 => 2,
        _ => 3,
    }
}

/// Run K-Means through a **plain** RADICAL-Pilot (Lustre data exchange).
pub fn run_rp_kmeans(
    engine: &mut Engine,
    session: &Session,
    resource: &str,
    tasks: u32,
    scenario: KMeansScenario,
    cal: &KMeansCalibration,
) -> KMeansRunStats {
    let nodes = nodes_for_tasks(tasks);
    let pm = PilotManager::new(session);
    let pilot = pm
        .submit(
            engine,
            PilotDescription::new(resource, nodes, SimDuration::from_secs(4 * 3600)),
        )
        .unwrap_or_else(|e| panic!("pilot submit failed: {e}"));
    let mut um = UnitManager::new(session, UmScheduler::Direct);
    um.add_pilot(&pilot);

    // Wait for activation.
    run_while(engine, |_| pilot.state() != PilotState::Active);
    assert_eq!(pilot.state(), PilotState::Active, "pilot failed to start");
    let t0 = engine.now();

    let compute = scenario.compute_core_s(cal);
    let per_task_read = scenario.input_bytes(cal) / tasks as f64 / MB;
    let per_task_write = scenario.shuffle_bytes(cal) / tasks as f64 / MB;
    for _ in 0..cal.iterations {
        // Fan-out: `tasks` assignment units.
        let descrs: Vec<ComputeUnitDescription> = (0..tasks)
            .map(|i| {
                ComputeUnitDescription::new(
                    format!("kmeans-task-{i}"),
                    1,
                    WorkSpec::Compute {
                        core_seconds: compute / tasks as f64,
                        read_mb: per_task_read,
                        write_mb: per_task_write,
                        io: UnitIoTarget::Lustre,
                    },
                )
                .with_memory(cal.task_mem_mb)
            })
            .collect();
        let units = um.submit_units(engine, descrs);
        wait_done(engine, &units);

        // Aggregation unit: read every intermediate record back from
        // Lustre and merge into the new centroids (serial).
        let agg = um.submit_units(
            engine,
            vec![ComputeUnitDescription::new(
                "kmeans-aggregate",
                1,
                WorkSpec::Compute {
                    core_seconds: scenario.points as f64 * cal.reduce_core_s_per_record,
                    read_mb: scenario.shuffle_bytes(cal) / MB,
                    write_mb: (scenario.clusters as f64 * 24.0) / MB,
                    io: UnitIoTarget::Lustre,
                },
            )],
        );
        wait_done(engine, &agg);
    }
    let elapsed = engine.now().since(t0).as_secs_f64();
    pm.cancel(engine, &pilot);
    engine.run();
    KMeansRunStats {
        time_to_completion: elapsed,
        bootstrap_s: 0.0,
        tasks,
        nodes,
        iterations: cal.iterations,
    }
}

/// Run K-Means through a **Mode I RADICAL-Pilot-YARN** pilot (MapReduce
/// with node-local shuffle; bootstrap included in the reported time).
pub fn run_rp_yarn_kmeans(
    engine: &mut Engine,
    session: &Session,
    resource: &str,
    tasks: u32,
    scenario: KMeansScenario,
    cal: &KMeansCalibration,
) -> KMeansRunStats {
    let nodes = nodes_for_tasks(tasks);
    let pm = PilotManager::new(session);
    let pilot = pm
        .submit(
            engine,
            PilotDescription::new(resource, nodes, SimDuration::from_secs(4 * 3600))
                .with_access(AccessMode::YarnModeI { with_hdfs: true }),
        )
        .unwrap_or_else(|e| panic!("pilot submit failed: {e}"));
    let mut um = UnitManager::new(session, UmScheduler::Direct);
    um.add_pilot(&pilot);

    run_while(engine, |_| pilot.state() != PilotState::Active);
    assert_eq!(pilot.state(), PilotState::Active, "pilot failed to start");
    let agent = pilot.agent().expect("active pilot has agent");
    let bootstrap = agent.framework_bootstrap_time().as_secs_f64();
    // Paper: "the runtimes include the time required to download and
    // start the YARN cluster" → measure from agent launch.
    let t0 = pilot.times().launched.expect("launched");

    // Load the input into HDFS with a block size that yields exactly
    // `tasks` map tasks.
    let env = agent.hadoop_env().expect("mode I pilot has hadoop");
    let hdfs = env.hdfs.clone().expect("with_hdfs");
    let input_bytes = scenario.input_bytes(cal).ceil() as u64;
    // Pre-split into exactly `tasks` blocks → `tasks` map tasks.
    hdfs.create_synthetic_with_blocks("/kmeans/input", input_bytes, StoragePolicy::Default, tasks)
        .unwrap();

    let points_per_mb = MB / cal.input_bytes_per_point;
    let cost = MrCostModel {
        map_core_s_per_input_mb: points_per_mb * scenario.clusters as f64 * cal.core_s_per_pair,
        map_fixed_s: 1.5,
        map_output_ratio: cal.record_bytes / cal.input_bytes_per_point,
        reduce_core_s_per_shuffle_mb: (MB / cal.record_bytes) * cal.reduce_core_s_per_record,
        reduce_fixed_s: 1.5,
        reduce_output_ratio: (scenario.clusters as f64 * 24.0) / scenario.shuffle_bytes(cal),
        task_jitter_sigma: 0.08,
        speculative_threshold: 0.0,
    };
    for iter in 0..cal.iterations {
        let units = um.submit_units(
            engine,
            vec![ComputeUnitDescription::new(
                format!("kmeans-mr-iter{iter}"),
                1,
                WorkSpec::MapReduce(MrJobSpec {
                    name: format!("kmeans-{}-it{iter}", scenario.points),
                    input_path: "/kmeans/input".into(),
                    num_reducers: cal.mr_reducers.min(tasks as usize).max(1),
                    container: Resource::new(1, cal.task_mem_mb),
                    shuffle: ShuffleBackend::LocalDisk,
                    cost: cost.clone(),
                }),
            )],
        );
        wait_done(engine, &units);
        assert_eq!(
            units[0].state(),
            UnitState::Done,
            "MR iteration failed: {:?}",
            units[0].failure()
        );
    }
    let elapsed = engine.now().since(t0).as_secs_f64();
    pm.cancel(engine, &pilot);
    engine.run();
    KMeansRunStats {
        time_to_completion: elapsed,
        bootstrap_s: bootstrap,
        tasks,
        nodes,
        iterations: cal.iterations,
    }
}

/// Run K-Means through an **RP-Spark (Mode I)** pilot: the agent deploys
/// a standalone Spark cluster; each run is ONE Spark application whose
/// stages are the K-Means iterations over a **cached** RDD — only the
/// first stage reads the input, and shuffles are map-side-combined
/// (clusters × executors records, not points). This is the paper's §V
/// in-memory future work, measurable against the RP and RP-YARN paths.
/// Runtime includes the Spark cluster bootstrap (as the YARN path
/// includes its bootstrap).
pub fn run_rp_spark_kmeans(
    engine: &mut Engine,
    session: &Session,
    resource: &str,
    tasks: u32,
    scenario: KMeansScenario,
    cal: &KMeansCalibration,
) -> KMeansRunStats {
    let nodes = nodes_for_tasks(tasks);
    let pm = PilotManager::new(session);
    let pilot = pm
        .submit(
            engine,
            PilotDescription::new(resource, nodes, SimDuration::from_secs(4 * 3600))
                .with_access(AccessMode::SparkModeI),
        )
        .unwrap_or_else(|e| panic!("pilot submit failed: {e}"));
    let mut um = UnitManager::new(session, UmScheduler::Direct);
    um.add_pilot(&pilot);

    run_while(engine, |_| pilot.state() != PilotState::Active);
    assert_eq!(pilot.state(), PilotState::Active, "pilot failed to start");
    let agent = pilot.agent().expect("active pilot has agent");
    let bootstrap = agent.framework_bootstrap_time().as_secs_f64();
    let t0 = pilot.times().launched.expect("launched");

    // Map-side combine: shuffle is per-executor partial sums, ∝ clusters.
    let shuffle_mb = (scenario.clusters as f64 * tasks as f64 * 32.0) / MB;
    let stages = (0..cal.iterations)
        .map(|i| rp_spark::SparkStage {
            name: format!("iter{i}"),
            compute_core_s: scenario.compute_core_s(cal),
            input_read_mb: if i == 0 {
                scenario.input_bytes(cal) / MB
            } else {
                0.0 // cached RDD
            },
            shuffle_mb,
        })
        .collect();
    let units = um.submit_units(
        engine,
        vec![ComputeUnitDescription::new(
            "kmeans-spark",
            tasks,
            WorkSpec::SparkJob(rp_spark::SparkJobSpec {
                name: format!("kmeans-{}", scenario.points),
                executor_cores: tasks,
                stages,
                jitter_sigma: 0.08,
            }),
        )],
    );
    wait_done(engine, &units);
    let elapsed = engine.now().since(t0).as_secs_f64();
    pm.cancel(engine, &pilot);
    engine.run();
    KMeansRunStats {
        time_to_completion: elapsed,
        bootstrap_s: bootstrap,
        tasks,
        nodes,
        iterations: cal.iterations,
    }
}

/// Drive the engine until `cond` goes false (or the event queue drains).
fn run_while(engine: &mut Engine, cond: impl Fn(&Engine) -> bool) {
    while cond(engine) {
        if !engine.step() {
            break;
        }
    }
}

/// Drive the engine until all units are final.
fn wait_done(engine: &mut Engine, units: &[UnitHandle]) {
    run_while(engine, |_| units.iter().any(|u| !u.state().is_final()));
    for u in units {
        assert_eq!(
            u.state(),
            UnitState::Done,
            "{} failed: {:?}",
            u.name(),
            u.failure()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig6_session() -> Session {
        Session::new(fig6_session_config())
    }

    fn quick_cal() -> KMeansCalibration {
        KMeansCalibration {
            // Shrink compute 50× so tests stay fast; ratios preserved.
            core_s_per_pair: 2.4e-6,
            ..KMeansCalibration::default()
        }
    }

    #[test]
    fn rp_runtime_decreases_with_tasks() {
        let scenario = SCENARIOS[2];
        // Shrink compute only 10× here so it still dominates the serial
        // spawner at 32 tasks (as in the full-size Fig. 6 runs).
        let cal = KMeansCalibration {
            core_s_per_pair: 1.2e-5,
            ..KMeansCalibration::default()
        };
        let mut times = Vec::new();
        for &tasks in &[8u32, 32] {
            let mut e = Engine::new(100 + tasks as u64);
            let session = Session::new(rp_pilot::SessionConfig::default());
            let stats = run_rp_kmeans(&mut e, &session, "xsede.stampede", tasks, scenario, &cal);
            times.push(stats.time_to_completion);
        }
        assert!(
            times[1] < times[0],
            "32 tasks ({}) should beat 8 tasks ({})",
            times[1],
            times[0]
        );
    }

    #[test]
    fn yarn_includes_bootstrap() {
        let scenario = SCENARIOS[0];
        let cal = quick_cal();
        let mut e = Engine::new(7);
        let session = fig6_session();
        let stats = run_rp_yarn_kmeans(&mut e, &session, "xsede.stampede", 8, scenario, &cal);
        assert!(stats.bootstrap_s > 40.0, "bootstrap {}", stats.bootstrap_s);
        assert!(stats.time_to_completion > stats.bootstrap_s);
    }

    #[test]
    fn yarn_wins_at_scale_loses_at_8_tasks() {
        // The headline Fig. 6 shape, on a reduced-size problem.
        let scenario = SCENARIOS[2];
        let cal = quick_cal();
        let run = |yarn: bool, tasks: u32| {
            let mut e = Engine::new(300 + tasks as u64);
            let session = fig6_session();
            if yarn {
                run_rp_yarn_kmeans(&mut e, &session, "xsede.wrangler", tasks, scenario, &cal)
                    .time_to_completion
            } else {
                run_rp_kmeans(&mut e, &session, "xsede.wrangler", tasks, scenario, &cal)
                    .time_to_completion
            }
        };
        let rp8 = run(false, 8);
        let yarn8 = run(true, 8);
        let rp32 = run(false, 32);
        let yarn32 = run(true, 32);
        // At 8 tasks the YARN bootstrap dominates the small problem.
        assert!(yarn8 > rp8, "yarn8 {yarn8} rp8 {rp8}");
        // At 32 tasks YARN's in-framework fan-out beats serial CU spawning.
        assert!(yarn32 < rp32, "yarn32 {yarn32} rp32 {rp32}");
    }

    #[test]
    fn wrangler_outperforms_stampede() {
        let scenario = SCENARIOS[1];
        let cal = quick_cal();
        let time = |resource: &str| {
            let mut e = Engine::new(55);
            let session = fig6_session();
            run_rp_kmeans(&mut e, &session, resource, 16, scenario, &cal).time_to_completion
        };
        let stampede = time("xsede.stampede");
        let wrangler = time("xsede.wrangler");
        assert!(
            wrangler < stampede,
            "wrangler {wrangler} stampede {stampede}"
        );
    }

    #[test]
    fn spark_path_completes_and_caching_helps() {
        let cal = quick_cal();
        let scenario = SCENARIOS[2];
        let mut e = Engine::new(71);
        let session = fig6_session();
        let spark = run_rp_spark_kmeans(&mut e, &session, "xsede.wrangler", 32, scenario, &cal);
        assert!(
            spark.bootstrap_s > 10.0,
            "spark bootstrap {}",
            spark.bootstrap_s
        );
        assert!(spark.time_to_completion > spark.bootstrap_s);
        // The cached-RDD Spark path beats RP-YARN (which re-reads input and
        // pays MR AM + container overheads every iteration).
        let mut e = Engine::new(71);
        let session = fig6_session();
        let yarn = run_rp_yarn_kmeans(&mut e, &session, "xsede.wrangler", 32, scenario, &cal);
        assert!(
            spark.time_to_completion < yarn.time_to_completion,
            "spark {} vs yarn {}",
            spark.time_to_completion,
            yarn.time_to_completion
        );
    }

    #[test]
    fn scenario_invariants() {
        let cal = KMeansCalibration::default();
        // Constant compute across scenarios.
        let c: Vec<f64> = SCENARIOS.iter().map(|s| s.compute_core_s(&cal)).collect();
        assert_eq!(c[0], c[1]);
        assert_eq!(c[1], c[2]);
        // Shuffle grows with points.
        let sh: Vec<f64> = SCENARIOS.iter().map(|s| s.shuffle_bytes(&cal)).collect();
        assert!(sh[0] < sh[1] && sh[1] < sh[2]);
    }

    #[test]
    fn node_mapping_matches_paper() {
        assert_eq!(nodes_for_tasks(8), 1);
        assert_eq!(nodes_for_tasks(16), 2);
        assert_eq!(nodes_for_tasks(32), 3);
    }
}
