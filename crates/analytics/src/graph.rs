//! Triangle counting — the network-science workload the paper cites
//! (ref \[12\], space-efficient parallel triangle counting).
//!
//! Node-iterator algorithm with the degree-ordering optimization, parallel
//! over nodes; plus an RDD formulation to exercise the mini-Spark engine.

use rp_sim::par::{default_threads, parallel_map_indexed};
use rp_spark::SparkContext;

use crate::dataset::Graph;

/// Count triangles exactly (each triangle counted once).
///
/// Uses the forward/degree-ordering method: for every node u, intersect
/// the "higher" neighbourhoods of u's higher neighbours.
pub fn count_triangles(g: &Graph) -> u64 {
    let n = g.nodes();
    // Order nodes by (degree, id); keep only edges pointing "up".
    let rank: Vec<u64> = {
        let mut r = vec![0u64; n];
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| (g.adj[v as usize].len(), v));
        for (i, v) in order.into_iter().enumerate() {
            r[v as usize] = i as u64;
        }
        r
    };
    let up: Vec<Vec<u32>> = (0..n)
        .map(|u| {
            let mut l: Vec<u32> = g.adj[u]
                .iter()
                .copied()
                .filter(|&v| rank[v as usize] > rank[u])
                .collect();
            l.sort_by_key(|&v| rank[v as usize]);
            l
        })
        .collect();

    parallel_map_indexed(n, default_threads(n), |u| {
        let mut count = 0u64;
        let nu = &up[u];
        for (i, &v) in nu.iter().enumerate() {
            let nv = &up[v as usize];
            // Sorted-by-rank intersection of nu[i+1..] and nv.
            let mut a = i + 1;
            let mut b = 0;
            while a < nu.len() && b < nv.len() {
                let ra = rank[nu[a] as usize];
                let rb = rank[nv[b] as usize];
                match ra.cmp(&rb) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
        count
    })
    .into_iter()
    .sum()
}

/// Naive O(n·d²) reference used as the test oracle.
pub fn count_triangles_naive(g: &Graph) -> u64 {
    let mut count = 0u64;
    for u in 0..g.nodes() as u32 {
        for &v in &g.adj[u as usize] {
            if v <= u {
                continue;
            }
            for &w in &g.adj[v as usize] {
                if w <= v {
                    continue;
                }
                if g.adj[u as usize].binary_search(&w).is_ok() {
                    count += 1;
                }
            }
        }
    }
    count
}

/// Triangle counting expressed on the mini-RDD engine: per-node counting
/// distributed over partitions.
pub fn count_triangles_rdd(g: &Graph, partitions: usize) -> u64 {
    let sc = SparkContext::new(partitions);
    let adj = std::sync::Arc::new(g.adj.clone());
    let nodes: Vec<u32> = (0..g.nodes() as u32).collect();
    sc.parallelize(nodes, partitions)
        .map(move |u| {
            // Count triangles where u is the smallest vertex.
            let nu = &adj[u as usize];
            let mut c = 0u64;
            for &v in nu.iter().filter(|&&v| v > u) {
                for &w in adj[v as usize].iter().filter(|&&w| w > v) {
                    if nu.binary_search(&w).is_ok() {
                        c += 1;
                    }
                }
            }
            c
        })
        .reduce(|a, b| a + b)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{complete_graph, random_graph};

    #[test]
    fn complete_graph_has_binomial_triangles() {
        for n in [3usize, 4, 5, 8] {
            let g = complete_graph(n);
            let expect = (n * (n - 1) * (n - 2) / 6) as u64;
            assert_eq!(count_triangles(&g), expect, "K{n}");
            assert_eq!(count_triangles_naive(&g), expect);
            assert_eq!(count_triangles_rdd(&g, 3), expect);
        }
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        // A path graph.
        let adj = vec![vec![1], vec![0, 2], vec![1, 3], vec![2]];
        let g = Graph { adj };
        assert_eq!(count_triangles(&g), 0);
    }

    #[test]
    fn fast_matches_naive_on_random_graphs() {
        for seed in 0..5 {
            let g = random_graph(300, 12.0, seed);
            assert_eq!(
                count_triangles(&g),
                count_triangles_naive(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn rdd_matches_fast_on_random_graph() {
        let g = random_graph(500, 10.0, 9);
        assert_eq!(count_triangles_rdd(&g, 8), count_triangles(&g));
    }
}
