//! Molecular-dynamics trajectory analysis — the paper's motivating
//! application domain (§I: trajectory data analysis with MDAnalysis /
//! CPPTraj-style tools, principal components, higher-order moments).
//!
//! Real parallel compute over synthetic trajectories.

use rp_sim::par::{default_threads, parallel_map};

use crate::dataset::{Frame, Point3};

/// Root-mean-square deviation between two frames (no alignment — the
/// synthetic trajectories have no global drift to remove).
pub fn rmsd(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(a.positions.len(), b.positions.len(), "atom count mismatch");
    let n = a.positions.len() as f64;
    let ss: f64 = a
        .positions
        .iter()
        .zip(&b.positions)
        .map(|(p, q)| (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2))
        .sum();
    (ss / n).sqrt()
}

/// RMSD of every frame against a reference frame, in parallel.
pub fn rmsd_series(trajectory: &[Frame], reference: usize) -> Vec<f64> {
    let r = &trajectory[reference];
    parallel_map(trajectory, default_threads(trajectory.len()), |f| {
        rmsd(f, r)
    })
}

/// Per-dimension moments of all atom positions across the trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Moments {
    pub mean: Point3,
    pub variance: Point3,
    pub skewness: Point3,
}

/// Higher-order moments over every atom position in every frame
/// (the "computing the higher order moments" analysis of §I).
pub fn moments(trajectory: &[Frame]) -> Moments {
    let threads = default_threads(trajectory.len());
    // (n, sum, sum2, sum3) per dimension.
    let partials = parallel_map(trajectory, threads, |f| {
        let mut acc = [[0.0f64; 3]; 3]; // [sum, sum2, sum3][dim]
        for p in &f.positions {
            for d in 0..3 {
                acc[0][d] += p[d];
                acc[1][d] += p[d] * p[d];
                acc[2][d] += p[d] * p[d] * p[d];
            }
        }
        (f.positions.len() as f64, acc)
    });
    let mut n = 0.0;
    let mut acc = [[0.0f64; 3]; 3];
    for (cnt, a) in partials {
        n += cnt;
        for i in 0..3 {
            for d in 0..3 {
                acc[i][d] += a[i][d];
            }
        }
    }
    assert!(n > 0.0, "empty trajectory");
    let mut mean = [0.0; 3];
    let mut var = [0.0; 3];
    let mut skew = [0.0; 3];
    for d in 0..3 {
        let m = acc[0][d] / n;
        let m2 = acc[1][d] / n - m * m;
        let m3 = acc[2][d] / n - 3.0 * m * m2 - m * m * m;
        mean[d] = m;
        var[d] = m2;
        skew[d] = if m2 > 1e-12 { m3 / m2.powf(1.5) } else { 0.0 };
    }
    Moments {
        mean,
        variance: var,
        skewness: skew,
    }
}

/// Principal axes of the atom-position distribution: eigenvectors of the
/// 3×3 covariance matrix, found by power iteration with deflation (the
/// PCA-based analysis of the paper's future work, ref \[10\]).
#[derive(Debug, Clone)]
pub struct Pca {
    /// Eigenvalues, descending.
    pub eigenvalues: [f64; 3],
    /// Matching unit eigenvectors.
    pub components: [Point3; 3],
}

pub fn pca(trajectory: &[Frame]) -> Pca {
    let threads = default_threads(trajectory.len());
    // Mean.
    let m = moments(trajectory).mean;
    // Covariance accumulation in parallel.
    let partials = parallel_map(trajectory, threads, |f| {
        let mut cov = [[0.0f64; 3]; 3];
        for p in &f.positions {
            let d = [p[0] - m[0], p[1] - m[1], p[2] - m[2]];
            for i in 0..3 {
                for j in 0..3 {
                    cov[i][j] += d[i] * d[j];
                }
            }
        }
        (f.positions.len() as f64, cov)
    });
    let mut n = 0.0;
    let mut cov = [[0.0f64; 3]; 3];
    for (cnt, c) in partials {
        n += cnt;
        for i in 0..3 {
            for j in 0..3 {
                cov[i][j] += c[i][j];
            }
        }
    }
    for row in cov.iter_mut() {
        for x in row.iter_mut() {
            *x /= n;
        }
    }

    let mut eigenvalues = [0.0; 3];
    let mut components = [[0.0; 3]; 3];
    let mut work = cov;
    for k in 0..3 {
        let (val, vec) = power_iteration(&work, 500, 1e-12, k as u64);
        eigenvalues[k] = val;
        components[k] = vec;
        // Deflate.
        for i in 0..3 {
            for j in 0..3 {
                work[i][j] -= val * vec[i] * vec[j];
            }
        }
    }
    Pca {
        eigenvalues,
        components,
    }
}

fn power_iteration(m: &[[f64; 3]; 3], iters: u32, tol: f64, seed: u64) -> (f64, Point3) {
    // Deterministic start vector, varied per deflation round.
    let mut v = [1.0, 0.7 + seed as f64 * 0.13, 0.3 + seed as f64 * 0.29];
    normalize(&mut v);
    let mut lambda = 0.0;
    for _ in 0..iters {
        let mut w = [0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                w[i] += m[i][j] * v[j];
            }
        }
        let norm = (w[0] * w[0] + w[1] * w[1] + w[2] * w[2]).sqrt();
        if norm < 1e-300 {
            return (0.0, v);
        }
        let next = [w[0] / norm, w[1] / norm, w[2] / norm];
        let delta = (next[0] - v[0]).abs() + (next[1] - v[1]).abs() + (next[2] - v[2]).abs();
        // Also handle sign flips (eigenvector defined up to sign).
        let delta_neg = (next[0] + v[0]).abs() + (next[1] + v[1]).abs() + (next[2] + v[2]).abs();
        v = next;
        lambda = norm;
        if delta.min(delta_neg) < tol {
            break;
        }
    }
    (lambda, v)
}

/// LeafletFinder (the MDAnalysis graph-based algorithm the paper's
/// future work targets, ref \[9\]): partition atoms into spatially
/// connected components — two components for the two leaflets of a lipid
/// bilayer. Atoms are connected when within `cutoff`; neighbour search
/// uses a uniform grid, components a union-find, so large frames stay
/// near-linear.
///
/// Returns components sorted by size (largest first), each a sorted list
/// of atom indices.
pub fn leaflet_finder(frame: &Frame, cutoff: f64) -> Vec<Vec<usize>> {
    assert!(cutoff > 0.0);
    let pts = &frame.positions;
    let n = pts.len();
    if n == 0 {
        return Vec::new();
    }
    // Uniform grid with cell size = cutoff.
    let mut grid: std::collections::HashMap<(i64, i64, i64), Vec<usize>> =
        std::collections::HashMap::new();
    let cell = |p: &Point3| {
        (
            (p[0] / cutoff).floor() as i64,
            (p[1] / cutoff).floor() as i64,
            (p[2] / cutoff).floor() as i64,
        )
    };
    for (i, p) in pts.iter().enumerate() {
        grid.entry(cell(p)).or_default().push(i);
    }
    let mut uf = UnionFind::new(n);
    let c2 = cutoff * cutoff;
    // rp-lint: allow(hash-iter): union-find components are visit-order independent
    for (&(cx, cy, cz), members) in &grid {
        for dx in -1..=1 {
            for dy in -1..=1 {
                for dz in -1..=1 {
                    let Some(others) = grid.get(&(cx + dx, cy + dy, cz + dz)) else {
                        continue;
                    };
                    for &i in members {
                        for &j in others {
                            if i < j && crate::kmeans::dist2(&pts[i], &pts[j]) <= c2 {
                                uf.union(i, j);
                            }
                        }
                    }
                }
            }
        }
    }
    let mut groups: std::collections::HashMap<usize, Vec<usize>> = std::collections::HashMap::new();
    for i in 0..n {
        groups.entry(uf.find(i)).or_default().push(i);
    }
    // rp-lint: allow(hash-iter): every group and the outer list are sorted below
    let mut out: Vec<Vec<usize>> = groups.into_values().collect();
    for g in out.iter_mut() {
        g.sort_unstable();
    }
    out.sort_by(|a, b| b.len().cmp(&a.len()).then(a[0].cmp(&b[0])));
    out
}

/// Path-compressing union-find.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

fn normalize(v: &mut Point3) {
    let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt();
    for x in v.iter_mut() {
        *x /= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::md_trajectory;

    #[test]
    fn rmsd_zero_against_self() {
        let t = md_trajectory(20, 5, 0.1, 1);
        assert_eq!(rmsd(&t[0], &t[0]), 0.0);
    }

    #[test]
    fn rmsd_series_grows_for_random_walk() {
        let t = md_trajectory(100, 200, 0.3, 2);
        let series = rmsd_series(&t, 0);
        assert_eq!(series.len(), 200);
        assert_eq!(series[0], 0.0);
        // Averages over windows: late window much larger than early.
        let early: f64 = series[1..20].iter().sum::<f64>() / 19.0;
        let late: f64 = series[180..].iter().sum::<f64>() / 20.0;
        assert!(late > early * 2.0, "late {late} early {early}");
    }

    #[test]
    fn moments_of_known_distribution() {
        // Single frame with symmetric positions → zero mean & skew.
        let f = Frame {
            positions: vec![[1.0, 2.0, -3.0], [-1.0, -2.0, 3.0]],
        };
        let m = moments(&[f]);
        for d in 0..3 {
            assert!(m.mean[d].abs() < 1e-12);
            assert!(m.skewness[d].abs() < 1e-9);
        }
        assert!((m.variance[0] - 1.0).abs() < 1e-12);
        assert!((m.variance[1] - 4.0).abs() < 1e-12);
        assert!((m.variance[2] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn pca_finds_dominant_axis() {
        // Positions stretched along x → first component ≈ ±x̂.
        let positions: Vec<_> = (0..200)
            .map(|i| {
                let t = (i as f64 - 100.0) / 10.0;
                [10.0 * t, 0.5 * (i % 3) as f64, 0.25 * (i % 2) as f64]
            })
            .collect();
        let p = pca(&[Frame { positions }]);
        assert!(p.eigenvalues[0] > 10.0 * p.eigenvalues[1].max(1e-9));
        assert!(p.components[0][0].abs() > 0.99, "{:?}", p.components[0]);
        // Eigenvalues descending.
        assert!(p.eigenvalues[0] >= p.eigenvalues[1]);
        assert!(p.eigenvalues[1] >= p.eigenvalues[2] - 1e-12);
    }

    #[test]
    fn leaflet_finder_separates_two_planes() {
        // Two parallel "leaflets" 10 apart, atoms 1 apart within each.
        let mut positions = Vec::new();
        for leaflet in 0..2 {
            for x in 0..10 {
                for y in 0..10 {
                    positions.push([x as f64, y as f64, leaflet as f64 * 10.0]);
                }
            }
        }
        let frame = Frame { positions };
        let leaflets = leaflet_finder(&frame, 1.5);
        assert_eq!(leaflets.len(), 2);
        assert_eq!(leaflets[0].len(), 100);
        assert_eq!(leaflets[1].len(), 100);
        // No atom in both; indices partition 0..200.
        let all: std::collections::BTreeSet<usize> = leaflets.iter().flatten().copied().collect();
        assert_eq!(all.len(), 200);
    }

    #[test]
    fn leaflet_finder_single_component_when_cutoff_large() {
        let frame = Frame {
            positions: vec![[0.0; 3], [3.0, 0.0, 0.0], [6.0, 0.0, 0.0]],
        };
        assert_eq!(leaflet_finder(&frame, 10.0).len(), 1);
        assert_eq!(leaflet_finder(&frame, 1.0).len(), 3);
        assert_eq!(leaflet_finder(&frame, 3.5).len(), 1); // chain connects
    }

    #[test]
    fn leaflet_finder_handles_empty_frame() {
        let frame = Frame { positions: vec![] };
        assert!(leaflet_finder(&frame, 1.0).is_empty());
    }

    #[test]
    #[should_panic]
    fn rmsd_mismatched_atoms_panics() {
        let a = Frame {
            positions: vec![[0.0; 3]],
        };
        let b = Frame {
            positions: vec![[0.0; 3], [1.0; 3]],
        };
        let _ = rmsd(&a, &b);
    }
}
