//! Reusable MapReduce workloads: the classic Hadoop kernels, implemented
//! against the [`rp_mapreduce`] API so examples/tests have realistic jobs
//! beyond K-Means, plus a MapReduce formulation of the trajectory RMSD
//! analysis (the paper's "MapReduce based solutions in HPC environments",
//! ref \[11\]).

use rp_mapreduce::{run_local, Combiner, Emitter, Mapper, Reducer};
use rp_sim::par::split_even;

use crate::dataset::Frame;
use crate::trajectory::rmsd;

// ---- word count ----

/// Tokenising word-count mapper (lowercases, strips non-alphanumerics).
pub struct WordCountMapper;

impl Mapper<u64, String, String, u64> for WordCountMapper {
    fn map(&self, _k: u64, line: String, e: &mut Emitter<String, u64>) {
        for token in line.split(|c: char| !c.is_alphanumeric()) {
            if !token.is_empty() {
                e.emit(token.to_lowercase(), 1);
            }
        }
    }
}

/// Sums counts; usable as both combiner and reducer.
pub struct CountSum;

impl Combiner<String, u64> for CountSum {
    fn combine(&self, _k: &String, values: Vec<u64>) -> u64 {
        values.into_iter().sum()
    }
}

impl Reducer<String, u64, (String, u64)> for CountSum {
    fn reduce(&self, key: String, values: Vec<u64>, out: &mut Vec<(String, u64)>) {
        out.push((key, values.into_iter().sum()));
    }
}

/// Count words across `lines`, with `splits` map tasks and `reducers`
/// partitions, using the native runner (with map-side combining).
pub fn word_count(lines: Vec<String>, splits: usize, reducers: usize) -> Vec<(String, u64)> {
    let input: Vec<Vec<(u64, String)>> = split_even(
        lines
            .into_iter()
            .enumerate()
            .map(|(i, l)| (i as u64, l))
            .collect(),
        splits,
    );
    let mut out: Vec<(String, u64)> = run_local(
        input,
        &WordCountMapper,
        Some(&CountSum),
        &CountSum,
        reducers,
    )
    .into_iter()
    .flatten()
    .collect();
    out.sort();
    out
}

// ---- grep ----

/// Emits `(line_no, line)` for lines containing the pattern.
pub struct GrepMapper {
    pub pattern: String,
}

impl Mapper<u64, String, u64, String> for GrepMapper {
    fn map(&self, line_no: u64, line: String, e: &mut Emitter<u64, String>) {
        if line.contains(&self.pattern) {
            e.emit(line_no, line);
        }
    }
}

/// Distributed grep: matching `(line_no, line)` pairs in line order.
pub fn grep(lines: Vec<String>, pattern: &str, splits: usize) -> Vec<(u64, String)> {
    let input: Vec<Vec<(u64, String)>> = split_even(
        lines
            .into_iter()
            .enumerate()
            .map(|(i, l)| (i as u64, l))
            .collect(),
        splits,
    );
    let mapper = GrepMapper {
        pattern: pattern.to_string(),
    };
    let identity = |k: u64, mut vs: Vec<String>, out: &mut Vec<(u64, String)>| {
        out.push((k, vs.remove(0)));
    };
    let mut out: Vec<(u64, String)> = run_local(input, &mapper, None, &identity, 1)
        .into_iter()
        .flatten()
        .collect();
    out.sort();
    out
}

// ---- inverted index ----

/// Emits `(term, doc_id)` pairs.
pub struct IndexMapper;

impl Mapper<u64, String, String, u64> for IndexMapper {
    fn map(&self, doc: u64, text: String, e: &mut Emitter<String, u64>) {
        let mut seen = std::collections::BTreeSet::new();
        for token in text.split(|c: char| !c.is_alphanumeric()) {
            if !token.is_empty() && seen.insert(token.to_lowercase()) {
                e.emit(token.to_lowercase(), doc);
            }
        }
    }
}

/// Build an inverted index: term → sorted unique document ids.
pub fn inverted_index(docs: Vec<String>, splits: usize) -> Vec<(String, Vec<u64>)> {
    let input: Vec<Vec<(u64, String)>> = split_even(
        docs.into_iter()
            .enumerate()
            .map(|(i, d)| (i as u64, d))
            .collect(),
        splits,
    );
    let reducer = |term: String, mut docs: Vec<u64>, out: &mut Vec<(String, Vec<u64>)>| {
        docs.sort_unstable();
        docs.dedup();
        out.push((term, docs));
    };
    let mut out: Vec<(String, Vec<u64>)> = run_local(input, &IndexMapper, None, &reducer, 4)
        .into_iter()
        .flatten()
        .collect();
    out.sort();
    out
}

// ---- trajectory RMSD as MapReduce ----

/// Map phase: each task computes RMSD-vs-reference for its frames; reduce
/// phase bins the values into a histogram (the "terascale trajectory
/// analysis" decomposition of the paper's ref \[11\]).
pub fn rmsd_histogram_mapreduce(
    trajectory: Vec<Frame>,
    reference: Frame,
    bin_width: f64,
    splits: usize,
) -> Vec<(u64, u64)> {
    assert!(bin_width > 0.0);
    let input: Vec<Vec<(u64, Frame)>> = split_even(
        trajectory
            .into_iter()
            .enumerate()
            .map(|(i, f)| (i as u64, f))
            .collect(),
        splits,
    );
    struct RmsdMapper {
        reference: Frame,
        bin_width: f64,
    }
    impl Mapper<u64, Frame, u64, u64> for RmsdMapper {
        fn map(&self, _i: u64, frame: Frame, e: &mut Emitter<u64, u64>) {
            let r = rmsd(&frame, &self.reference);
            e.emit((r / self.bin_width) as u64, 1);
        }
    }
    let mapper = RmsdMapper {
        reference,
        bin_width,
    };
    let reducer = |bin: u64, vs: Vec<u64>, out: &mut Vec<(u64, u64)>| {
        out.push((bin, vs.into_iter().sum()));
    };
    let mut out: Vec<(u64, u64)> = run_local(input, &mapper, None, &reducer, 2)
        .into_iter()
        .flatten()
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::md_trajectory;

    fn lines() -> Vec<String> {
        vec![
            "the quick brown Fox".into(),
            "jumps over the lazy dog!".into(),
            "THE fox again".into(),
        ]
    }

    #[test]
    fn word_count_is_case_insensitive_and_complete() {
        let out = word_count(lines(), 2, 3);
        let m: std::collections::HashMap<_, _> = out.into_iter().collect();
        assert_eq!(m["the"], 3);
        assert_eq!(m["fox"], 2);
        assert_eq!(m["dog"], 1);
    }

    #[test]
    fn word_count_invariant_to_splits_and_reducers() {
        let a = word_count(lines(), 1, 1);
        let b = word_count(lines(), 3, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn grep_finds_matches_in_order() {
        let out = grep(lines(), "fox", 2);
        assert_eq!(out.len(), 1); // only lowercase "fox" matches line 2
        assert_eq!(out[0].0, 2);
        let out = grep(lines(), "o", 3);
        assert_eq!(out.iter().map(|x| x.0).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn inverted_index_unique_sorted_docs() {
        let idx = inverted_index(lines(), 2);
        let m: std::collections::HashMap<_, _> = idx.into_iter().collect();
        assert_eq!(m["the"], vec![0, 1, 2]);
        assert_eq!(m["fox"], vec![0, 2]);
        assert_eq!(m["dog"], vec![1]);
    }

    #[test]
    fn rmsd_histogram_counts_all_frames() {
        let traj = md_trajectory(50, 120, 0.3, 9);
        let reference = traj[0].clone();
        let hist = rmsd_histogram_mapreduce(traj, reference, 0.5, 4);
        let total: u64 = hist.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 120);
        // Random walk: later frames drift, so multiple bins are occupied.
        assert!(hist.len() >= 2, "{hist:?}");
    }

    #[test]
    fn rmsd_histogram_matches_direct_computation() {
        let traj = md_trajectory(30, 40, 0.4, 3);
        let reference = traj[0].clone();
        let hist = rmsd_histogram_mapreduce(traj.clone(), reference.clone(), 1.0, 3);
        let mut expect = std::collections::BTreeMap::new();
        for f in &traj {
            let bin = (rmsd(f, &reference) / 1.0) as u64;
            *expect.entry(bin).or_insert(0u64) += 1;
        }
        assert_eq!(hist, expect.into_iter().collect::<Vec<_>>());
    }
}
