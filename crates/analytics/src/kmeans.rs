//! K-Means: the paper's benchmark workload, in four shapes.
//!
//! This module holds the *native* parallel Lloyd kernel (real compute,
//! scoped threads) plus MapReduce and RDD formulations; the simulated
//! pilot-orchestrated variants used for Fig. 6 live in
//! [`crate::scenarios`].

use rp_mapreduce::{run_local, Emitter, Mapper, Reducer};
use rp_sim::par::{default_threads, parallel_map, split_even};
use rp_spark::SparkContext;

use crate::dataset::Point3;

/// Squared Euclidean distance.
#[inline]
pub fn dist2(a: &Point3, b: &Point3) -> f64 {
    (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)
}

/// Index of the nearest centroid.
#[inline]
pub fn nearest(p: &Point3, centroids: &[Point3]) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = dist2(p, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Result of a K-Means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    pub centroids: Vec<Point3>,
    /// Within-cluster sum of squares after the final iteration.
    pub cost: f64,
    pub iterations: u32,
}

/// Deterministic initial centroids: the first `k` points (the standard
/// Forgy-on-prefix choice; deterministic so every formulation agrees).
pub fn init_centroids(points: &[Point3], k: usize) -> Vec<Point3> {
    assert!(k >= 1 && k <= points.len(), "k={k} of {}", points.len());
    points[..k].to_vec()
}

/// Native parallel Lloyd iterations (the reference implementation).
pub fn lloyd(points: &[Point3], k: usize, iterations: u32) -> KMeansResult {
    let mut centroids = init_centroids(points, k);
    let threads = default_threads(points.len() / 4096 + 1);
    let chunks: Vec<&[Point3]> = points
        .chunks(points.len().div_ceil(threads).max(1))
        .collect();
    for _ in 0..iterations {
        // Assignment + partial sums per chunk, in parallel.
        let partials: Vec<(Vec<[f64; 4]>,)> = parallel_map(&chunks, threads, |chunk| {
            let mut acc = vec![[0.0f64; 4]; k];
            for p in chunk.iter() {
                let c = nearest(p, &centroids);
                acc[c][0] += p[0];
                acc[c][1] += p[1];
                acc[c][2] += p[2];
                acc[c][3] += 1.0;
            }
            (acc,)
        });
        // Merge and update.
        let mut acc = vec![[0.0f64; 4]; k];
        for (part,) in partials {
            for (a, b) in acc.iter_mut().zip(part) {
                a[0] += b[0];
                a[1] += b[1];
                a[2] += b[2];
                a[3] += b[3];
            }
        }
        for (c, a) in centroids.iter_mut().zip(&acc) {
            if a[3] > 0.0 {
                *c = [a[0] / a[3], a[1] / a[3], a[2] / a[3]];
            }
        }
    }
    let cost = cost_of(points, &centroids);
    KMeansResult {
        centroids,
        cost,
        iterations,
    }
}

/// Within-cluster sum of squares (parallel).
pub fn cost_of(points: &[Point3], centroids: &[Point3]) -> f64 {
    let threads = default_threads(points.len() / 4096 + 1);
    let chunks: Vec<&[Point3]> = points
        .chunks(points.len().div_ceil(threads).max(1))
        .collect();
    parallel_map(&chunks, threads, |chunk| {
        chunk
            .iter()
            .map(|p| dist2(p, &centroids[nearest(p, centroids)]))
            .sum::<f64>()
    })
    .into_iter()
    .sum()
}

// ---- MapReduce formulation ----

/// Map: emit (nearest-centroid, (sum, count)) per point. Emitting one pair
/// per point (no in-map aggregation) makes shuffle volume ∝ points, which
/// is exactly the property the paper's Fig. 6 scenarios vary.
pub struct KMeansMapper {
    pub centroids: Vec<Point3>,
}

impl Mapper<u64, Point3, usize, [f64; 4]> for KMeansMapper {
    fn map(&self, _k: u64, p: Point3, e: &mut Emitter<usize, [f64; 4]>) {
        let c = nearest(&p, &self.centroids);
        e.emit(c, [p[0], p[1], p[2], 1.0]);
    }
}

/// Reduce: average the partial sums into the new centroid.
pub struct KMeansReducer;

impl Reducer<usize, [f64; 4], (usize, Point3)> for KMeansReducer {
    fn reduce(&self, key: usize, values: Vec<[f64; 4]>, out: &mut Vec<(usize, Point3)>) {
        let mut acc = [0.0f64; 4];
        for v in values {
            acc[0] += v[0];
            acc[1] += v[1];
            acc[2] += v[2];
            acc[3] += v[3];
        }
        if acc[3] > 0.0 {
            out.push((key, [acc[0] / acc[3], acc[1] / acc[3], acc[2] / acc[3]]));
        }
    }
}

/// K-Means via the native MapReduce runner (`iterations` chained jobs).
pub fn kmeans_mapreduce(
    points: &[Point3],
    k: usize,
    iterations: u32,
    map_tasks: usize,
    reducers: usize,
) -> KMeansResult {
    let mut centroids = init_centroids(points, k);
    for _ in 0..iterations {
        let splits: Vec<Vec<(u64, Point3)>> = split_even(
            points
                .iter()
                .copied()
                .enumerate()
                .map(|(i, p)| (i as u64, p))
                .collect(),
            map_tasks,
        );
        let mapper = KMeansMapper {
            centroids: centroids.clone(),
        };
        let out = run_local(splits, &mapper, None, &KMeansReducer, reducers);
        for (idx, c) in out.into_iter().flatten() {
            centroids[idx] = c;
        }
    }
    let cost = cost_of(points, &centroids);
    KMeansResult {
        centroids,
        cost,
        iterations,
    }
}

// ---- Spark RDD formulation ----

/// K-Means on the mini-RDD engine (cached input, `reduce_by_key` shuffle).
pub fn kmeans_rdd(
    points: Vec<Point3>,
    k: usize,
    iterations: u32,
    partitions: usize,
) -> KMeansResult {
    let sc = SparkContext::new(partitions);
    let rdd = sc.parallelize(points.clone(), partitions).cache();
    let mut centroids = init_centroids(&points, k);
    for _ in 0..iterations {
        let cents = centroids.clone();
        let sums = rdd
            .map(move |p| {
                let c = nearest(&p, &cents);
                (c, [p[0], p[1], p[2], 1.0f64])
            })
            .reduce_by_key(|a, b| [a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]])
            .collect_as_map();
        for (idx, acc) in sums {
            if acc[3] > 0.0 {
                centroids[idx] = [acc[0] / acc[3], acc[1] / acc[3], acc[2] / acc[3]];
            }
        }
    }
    let cost = cost_of(&points, &centroids);
    KMeansResult {
        centroids,
        cost,
        iterations,
    }
}

/// Sequential reference (oracle for the parallel formulations).
pub fn lloyd_sequential(points: &[Point3], k: usize, iterations: u32) -> KMeansResult {
    let mut centroids = init_centroids(points, k);
    for _ in 0..iterations {
        let mut acc = vec![[0.0f64; 4]; k];
        for p in points {
            let c = nearest(p, &centroids);
            acc[c][0] += p[0];
            acc[c][1] += p[1];
            acc[c][2] += p[2];
            acc[c][3] += 1.0;
        }
        for (c, a) in centroids.iter_mut().zip(&acc) {
            if a[3] > 0.0 {
                *c = [a[0] / a[3], a[1] / a[3], a[2] / a[3]];
            }
        }
    }
    let cost = points
        .iter()
        .map(|p| dist2(p, &centroids[nearest(p, &centroids)]))
        .sum();
    KMeansResult {
        centroids,
        cost,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::gaussian_blobs;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn parallel_matches_sequential() {
        let pts = gaussian_blobs(5_000, 8, 2.0, 42);
        let seq = lloyd_sequential(&pts, 8, 4);
        let par = lloyd(&pts, 8, 4);
        assert!(close(seq.cost, par.cost), "{} vs {}", seq.cost, par.cost);
        for (a, b) in seq.centroids.iter().zip(&par.centroids) {
            for d in 0..3 {
                assert!(close(a[d], b[d]));
            }
        }
    }

    #[test]
    fn mapreduce_matches_sequential() {
        let pts = gaussian_blobs(3_000, 5, 2.0, 7);
        let seq = lloyd_sequential(&pts, 5, 3);
        let mr = kmeans_mapreduce(&pts, 5, 3, 6, 3);
        assert!(close(seq.cost, mr.cost), "{} vs {}", seq.cost, mr.cost);
    }

    #[test]
    fn rdd_matches_sequential() {
        let pts = gaussian_blobs(3_000, 5, 2.0, 9);
        let seq = lloyd_sequential(&pts, 5, 3);
        let rdd = kmeans_rdd(pts, 5, 3, 8);
        assert!(close(seq.cost, rdd.cost), "{} vs {}", seq.cost, rdd.cost);
    }

    #[test]
    fn cost_decreases_over_iterations() {
        let pts = gaussian_blobs(4_000, 6, 3.0, 11);
        let mut last = f64::INFINITY;
        for it in 1..=5 {
            let r = lloyd(&pts, 6, it);
            assert!(r.cost <= last + 1e-9, "iteration {it}: {} > {last}", r.cost);
            last = r.cost;
        }
    }

    #[test]
    fn well_separated_blobs_recovered() {
        let pts = gaussian_blobs(2_000, 4, 0.5, 13);
        let r = lloyd(&pts, 4, 10);
        // Mean within-cluster distance should be ~spread² × 3 dims.
        let mean_cost = r.cost / pts.len() as f64;
        assert!(mean_cost < 2.0, "{mean_cost}");
    }

    #[test]
    fn k_equals_one_gives_mean() {
        let pts = vec![[0.0, 0.0, 0.0], [2.0, 2.0, 2.0], [4.0, 4.0, 4.0]];
        let r = lloyd(&pts, 1, 3);
        for d in 0..3 {
            assert!(close(r.centroids[0][d], 2.0));
        }
    }

    #[test]
    #[should_panic]
    fn k_larger_than_points_panics() {
        let pts = vec![[0.0, 0.0, 0.0]];
        let _ = lloyd(&pts, 2, 1);
    }
}
