//! Seeded synthetic datasets for the analytics workloads.

use rp_sim::SimRng;

/// A point in 3-D space (the paper's K-Means operates on 3-D points).
pub type Point3 = [f64; 3];

/// Gaussian blobs: `n` points around `k` well-separated centers.
/// Deterministic for a given seed.
pub fn gaussian_blobs(n: usize, k: usize, spread: f64, seed: u64) -> Vec<Point3> {
    assert!(k >= 1 && n >= 1);
    let mut rng = SimRng::new(seed);
    let centers: Vec<Point3> = (0..k)
        .map(|_| {
            [
                rng.uniform(-100.0, 100.0),
                rng.uniform(-100.0, 100.0),
                rng.uniform(-100.0, 100.0),
            ]
        })
        .collect();
    (0..n)
        .map(|i| {
            let c = centers[i % k];
            [
                c[0] + normal(&mut rng) * spread,
                c[1] + normal(&mut rng) * spread,
                c[2] + normal(&mut rng) * spread,
            ]
        })
        .collect()
}

/// One frame of a synthetic molecular-dynamics trajectory: positions of
/// `atoms` atoms.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub positions: Vec<Point3>,
}

/// Random-walk trajectory: `frames` frames of `atoms` atoms, where each
/// frame perturbs the previous one (so RMSD grows with frame distance —
/// the property trajectory analyses depend on).
pub fn md_trajectory(atoms: usize, frames: usize, step: f64, seed: u64) -> Vec<Frame> {
    assert!(atoms >= 1 && frames >= 1);
    let mut rng = SimRng::new(seed);
    let mut current: Vec<Point3> = (0..atoms)
        .map(|_| {
            [
                rng.uniform(-10.0, 10.0),
                rng.uniform(-10.0, 10.0),
                rng.uniform(-10.0, 10.0),
            ]
        })
        .collect();
    let mut out = Vec::with_capacity(frames);
    out.push(Frame {
        positions: current.clone(),
    });
    for _ in 1..frames {
        for p in current.iter_mut() {
            for x in p.iter_mut() {
                *x += normal(&mut rng) * step;
            }
        }
        out.push(Frame {
            positions: current.clone(),
        });
    }
    out
}

/// Undirected graph as an adjacency list (sorted, deduplicated).
#[derive(Debug, Clone)]
pub struct Graph {
    pub adj: Vec<Vec<u32>>,
}

impl Graph {
    pub fn nodes(&self) -> usize {
        self.adj.len()
    }

    pub fn edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }
}

/// Erdős–Rényi-style random graph with ~`avg_degree` mean degree.
pub fn random_graph(nodes: usize, avg_degree: f64, seed: u64) -> Graph {
    assert!(nodes >= 2);
    let mut rng = SimRng::new(seed);
    let p = (avg_degree / (nodes as f64 - 1.0)).clamp(0.0, 1.0);
    let mut adj = vec![Vec::new(); nodes];
    // Sample edges u<v with probability p via geometric skipping.
    for u in 0..nodes as u32 {
        let mut v = u + 1;
        while (v as usize) < nodes {
            if rng.chance(p) {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
            v += 1;
        }
    }
    for l in adj.iter_mut() {
        l.sort_unstable();
        l.dedup();
    }
    Graph { adj }
}

/// A small deterministic triangle-rich graph for exact-count tests:
/// complete graph on `n` nodes (C(n,3) triangles).
pub fn complete_graph(n: usize) -> Graph {
    let adj = (0..n as u32)
        .map(|u| (0..n as u32).filter(|&v| v != u).collect())
        .collect();
    Graph { adj }
}

fn normal(rng: &mut SimRng) -> f64 {
    rng.standard_normal()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_deterministic_and_sized() {
        let a = gaussian_blobs(1000, 5, 1.0, 7);
        let b = gaussian_blobs(1000, 5, 1.0, 7);
        assert_eq!(a.len(), 1000);
        assert_eq!(a, b);
        let c = gaussian_blobs(1000, 5, 1.0, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn trajectory_drifts_over_time() {
        let t = md_trajectory(50, 100, 0.5, 3);
        assert_eq!(t.len(), 100);
        let d_near = frame_dist(&t[0], &t[1]);
        let d_far = frame_dist(&t[0], &t[99]);
        assert!(d_far > d_near * 2.0, "far {d_far} near {d_near}");
    }

    fn frame_dist(a: &Frame, b: &Frame) -> f64 {
        a.positions
            .iter()
            .zip(&b.positions)
            .map(|(p, q)| (p[0] - q[0]).powi(2) + (p[1] - q[1]).powi(2) + (p[2] - q[2]).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn random_graph_degree_close_to_target() {
        let g = random_graph(2000, 10.0, 5);
        let mean = 2.0 * g.edges() as f64 / g.nodes() as f64;
        assert!((mean - 10.0).abs() < 1.5, "{mean}");
        // Symmetry.
        for (u, l) in g.adj.iter().enumerate() {
            for &v in l {
                assert!(g.adj[v as usize].contains(&(u as u32)));
            }
        }
    }

    #[test]
    fn complete_graph_shape() {
        let g = complete_graph(6);
        assert_eq!(g.nodes(), 6);
        assert_eq!(g.edges(), 15);
    }
}
