//! Property-style tests of HDFS replication invariants under random files
//! and datanode failures, generated deterministically from `SimRng` seeds.

use std::cell::RefCell;
use std::rc::Rc;

use rp_hdfs::{Hdfs, HdfsConfig, StoragePolicy};
use rp_hpc::{Cluster, MachineSpec, NodeId};
use rp_sim::{Engine, SimRng};

/// After any single datanode failure: no replica lives on the dead node,
/// every block that had ≥2 replicas is back at full replication (when a
/// target exists), and exactly the single-replica blocks on the dead node
/// are lost.
#[test]
fn failure_rereplication_invariants() {
    let mut rng = SimRng::new(0x2E91);
    for case in 0..48 {
        let n_files = rng.uniform_u64(1, 5) as usize;
        let sizes: Vec<u64> = (0..n_files)
            .map(|_| rng.uniform_u64(1, 2_000_000_000))
            .collect();
        let replication = rng.uniform_u64(1, 3) as u32;
        let victim_idx = rng.uniform_u64(0, 3) as usize;
        let mut e = Engine::new(1);
        let cluster = Cluster::new(MachineSpec::localhost()); // 4 nodes
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let n_nodes = nodes.len() as u32;
        let fs = Hdfs::attach(
            cluster,
            nodes.clone(),
            HdfsConfig {
                replication,
                ..HdfsConfig::default()
            },
        );
        for (i, &size) in sizes.iter().enumerate() {
            fs.create_synthetic(&format!("/f{i}"), size, StoragePolicy::Default)
                .unwrap();
        }
        let victim = nodes[victim_idx];
        // Blocks whose ONLY replica is on the victim will be lost.
        let mut expect_lost = Vec::new();
        for i in 0..sizes.len() {
            for b in fs.block_locations(&format!("/f{i}")).unwrap() {
                if b.replicas == vec![victim] {
                    expect_lost.push(b.id);
                }
            }
        }
        let lost = Rc::new(RefCell::new(None));
        let l = lost.clone();
        fs.fail_datanode(&mut e, victim, move |_, lost_blocks| {
            *l.borrow_mut() = Some(lost_blocks);
        });
        e.run();
        let mut lost = lost.borrow().clone().expect("callback fired");
        lost.sort_unstable();
        expect_lost.sort_unstable();
        assert_eq!(lost, expect_lost, "case {case}");

        let effective = replication.min(n_nodes);
        for i in 0..sizes.len() {
            for b in fs.block_locations(&format!("/f{i}")).unwrap() {
                assert!(
                    !b.replicas.contains(&victim),
                    "case {case}: replica on dead node"
                );
                let mut r = b.replicas.clone();
                r.sort();
                r.dedup();
                assert_eq!(r.len(), b.replicas.len(), "case {case}: duplicate replicas");
                if !b.replicas.is_empty() {
                    // Re-replicated back to min(replication, survivors).
                    let want = effective.min(n_nodes - 1) as usize;
                    assert_eq!(b.replicas.len(), want, "case {case}: block {b:?}");
                }
            }
        }
    }
}

/// used_bytes equals the sum of replica bytes across the namespace, before
/// and after deletes.
#[test]
fn used_bytes_accounting() {
    let mut rng = SimRng::new(0x05EDB);
    for case in 0..48 {
        let n_files = rng.uniform_u64(1, 7) as usize;
        let sizes: Vec<u64> = (0..n_files)
            .map(|_| rng.uniform_u64(1, 500_000_000))
            .collect();
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let fs = Hdfs::attach(cluster, nodes, HdfsConfig::default());
        let mut expect = 0u64;
        for (i, &size) in sizes.iter().enumerate() {
            let meta = fs
                .create_synthetic(&format!("/f{i}"), size, StoragePolicy::Default)
                .unwrap();
            expect += meta
                .blocks
                .iter()
                .map(|b| b.size_bytes * b.replicas.len() as u64)
                .sum::<u64>();
        }
        assert_eq!(fs.used_bytes(), expect, "case {case}");
        // Delete every other file.
        for i in (0..sizes.len()).step_by(2) {
            let meta = fs.file_meta(&format!("/f{i}")).unwrap();
            expect -= meta
                .blocks
                .iter()
                .map(|b| b.size_bytes * b.replicas.len() as u64)
                .sum::<u64>();
            fs.delete(&format!("/f{i}")).unwrap();
        }
        assert_eq!(fs.used_bytes(), expect, "case {case}");
    }
}
