//! # rp-hdfs — simulated Hadoop Distributed File System
//!
//! NameNode block map, writer-local replica placement, replication-pipeline
//! writes, locality-aware reads and the block-location API that YARN /
//! MapReduce use for data-local scheduling. Storage sits on the per-node
//! local-disk models of [`rp_hpc::Cluster`]; storage policies (SSD /
//! archive tiers) scale the effective disk bandwidth.

pub mod fs;
pub mod meta;

pub use fs::{Hdfs, HdfsConfig, HdfsError};
pub use meta::{split_blocks, BlockMeta, FileMeta, StoragePolicy};
