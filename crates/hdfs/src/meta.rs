//! Namespace metadata: files, blocks, replicas, storage policies.

use rp_hpc::NodeId;

/// Storage policy of a file (heterogeneous-storage support, paper §II).
/// Policies map onto a bandwidth factor of the datanode disk — an SSD tier
/// is faster than the default spinning tier, the archival tier slower.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoragePolicy {
    /// Hot data on the default local-disk tier.
    #[default]
    Default,
    /// All replicas on the SSD tier.
    AllSsd,
    /// Cold/archival data: dense, slow tier.
    Archive,
}

impl StoragePolicy {
    /// Per-stream bandwidth factor relative to the machine's local disk.
    pub fn bandwidth_factor(self) -> f64 {
        match self {
            StoragePolicy::Default => 1.0,
            StoragePolicy::AllSsd => 2.0,
            StoragePolicy::Archive => 0.35,
        }
    }
}

/// One HDFS block and where its replicas live.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMeta {
    pub id: u64,
    pub size_bytes: u64,
    pub replicas: Vec<NodeId>,
}

/// A file in the namespace.
#[derive(Debug, Clone, PartialEq)]
pub struct FileMeta {
    pub path: String,
    pub size_bytes: u64,
    pub policy: StoragePolicy,
    pub blocks: Vec<BlockMeta>,
}

impl FileMeta {
    /// Nodes that hold at least one replica of any block.
    pub fn holder_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .blocks
            .iter()
            .flat_map(|b| b.replicas.iter().copied())
            .collect();
        nodes.sort();
        nodes.dedup();
        nodes
    }
}

/// Split a file size into block sizes.
pub fn split_blocks(size_bytes: u64, block_size_bytes: u64) -> Vec<u64> {
    assert!(block_size_bytes > 0);
    if size_bytes == 0 {
        return vec![0];
    }
    let full = size_bytes / block_size_bytes;
    let rem = size_bytes % block_size_bytes;
    let mut out = vec![block_size_bytes; full as usize];
    if rem > 0 {
        out.push(rem);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_exact_multiple() {
        assert_eq!(split_blocks(256, 128), vec![128, 128]);
    }

    #[test]
    fn split_with_tail() {
        assert_eq!(split_blocks(300, 128), vec![128, 128, 44]);
    }

    #[test]
    fn split_small_file_is_single_block() {
        assert_eq!(split_blocks(5, 128), vec![5]);
        assert_eq!(split_blocks(0, 128), vec![0]);
    }

    #[test]
    fn policy_factors_ordered() {
        assert!(
            StoragePolicy::AllSsd.bandwidth_factor() > StoragePolicy::Default.bandwidth_factor()
        );
        assert!(
            StoragePolicy::Archive.bandwidth_factor() < StoragePolicy::Default.bandwidth_factor()
        );
    }

    #[test]
    fn holder_nodes_dedups() {
        let f = FileMeta {
            path: "/x".into(),
            size_bytes: 10,
            policy: StoragePolicy::Default,
            blocks: vec![
                BlockMeta {
                    id: 0,
                    size_bytes: 5,
                    replicas: vec![NodeId(1), NodeId(2)],
                },
                BlockMeta {
                    id: 1,
                    size_bytes: 5,
                    replicas: vec![NodeId(2), NodeId(0)],
                },
            ],
        };
        assert_eq!(f.holder_nodes(), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }
}
