//! The simulated HDFS instance: deployment, writes through the replication
//! pipeline, locality-aware reads, and the block-location API that
//! MapReduce/YARN use for data-local scheduling.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rp_hpc::{Cluster, IoKind, NodeId, StorageTarget};
use rp_sim::{Engine, SimDuration};

use crate::meta::{split_blocks, BlockMeta, FileMeta, StoragePolicy};

/// Tunables of an HDFS deployment.
#[derive(Debug, Clone)]
pub struct HdfsConfig {
    pub block_size_mb: u64,
    pub replication: u32,
    /// NameNode format + daemon start (seconds, mean/std).
    pub namenode_start_s: (f64, f64),
    /// Per-DataNode daemon start (seconds, mean/std); nodes start in
    /// parallel so deployment pays the max, not the sum.
    pub datanode_start_s: (f64, f64),
}

impl Default for HdfsConfig {
    fn default() -> Self {
        HdfsConfig {
            block_size_mb: 128,
            replication: 3,
            namenode_start_s: (6.0, 1.0),
            datanode_start_s: (4.0, 0.8),
        }
    }
}

#[derive(Debug)]
struct Inner {
    config: HdfsConfig,
    namenode: NodeId,
    datanodes: Vec<NodeId>,
    files: BTreeMap<String, FileMeta>,
    next_block_id: u64,
    /// Rotates replica placement so synthetic data spreads evenly.
    placement_cursor: usize,
    used_bytes: u64,
}

/// A deployed (or deploying) HDFS filesystem. Cheap to clone.
#[derive(Clone)]
pub struct Hdfs {
    cluster: Cluster,
    inner: Rc<RefCell<Inner>>,
}

/// Errors from namespace operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdfsError {
    AlreadyExists(String),
    NotFound(String),
}

impl std::fmt::Display for HdfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HdfsError::AlreadyExists(p) => write!(f, "path already exists: {p}"),
            HdfsError::NotFound(p) => write!(f, "path not found: {p}"),
        }
    }
}

impl std::error::Error for HdfsError {}

impl Hdfs {
    /// Deploy HDFS on `nodes` of `cluster`: the first node hosts the
    /// NameNode, all nodes run DataNodes. `on_ready` fires once every
    /// daemon is up. Requires the machine to have local disks (HDFS over
    /// Lustre is a different deployment the paper argues against; callers
    /// model that by using `Cluster::storage_io(Lustre, …)` directly).
    pub fn deploy(
        engine: &mut Engine,
        cluster: Cluster,
        nodes: Vec<NodeId>,
        config: HdfsConfig,
        on_ready: impl FnOnce(&mut Engine, Hdfs) + 'static,
    ) {
        let fs = Hdfs::attach(cluster, nodes, config);
        // NameNode start, then DataNodes in parallel: total = nn + max(dn).
        let (nn_mean, nn_std) = fs.inner.borrow().config.namenode_start_s;
        let nn_start = engine.rng.normal_min(nn_mean, nn_std, 0.1);
        let (dn_mean, dn_std) = fs.inner.borrow().config.datanode_start_s;
        let n_dn = fs.inner.borrow().datanodes.len();
        let dn_max = (0..n_dn)
            .map(|_| engine.rng.normal_min(dn_mean, dn_std, 0.1))
            .fold(0.0f64, f64::max);
        let total = SimDuration::from_secs_f64(nn_start + dn_max);
        engine
            .trace
            .record(engine.now(), "hdfs", format!("deploying on {n_dn} nodes"));
        engine.schedule_in(total, move |eng| {
            eng.trace.record(eng.now(), "hdfs", "ready");
            on_ready(eng, fs);
        });
    }

    /// Attach to an HDFS instance that already exists (dedicated Hadoop
    /// environments, Mode II): no daemon-start timing is simulated.
    pub fn attach(cluster: Cluster, nodes: Vec<NodeId>, config: HdfsConfig) -> Hdfs {
        assert!(!nodes.is_empty(), "HDFS needs at least one node");
        assert!(
            cluster.has_local_disk(),
            "HDFS requires node-local disks on {}",
            cluster.spec().name
        );
        let replication = config.replication.min(nodes.len() as u32).max(1);
        Hdfs {
            cluster,
            inner: Rc::new(RefCell::new(Inner {
                config: HdfsConfig {
                    replication,
                    ..config
                },
                namenode: nodes[0],
                datanodes: nodes,
                files: BTreeMap::new(),
                next_block_id: 0,
                placement_cursor: 0,
                used_bytes: 0,
            })),
        }
    }

    pub fn namenode(&self) -> NodeId {
        self.inner.borrow().namenode
    }

    pub fn datanodes(&self) -> Vec<NodeId> {
        self.inner.borrow().datanodes.clone()
    }

    pub fn replication(&self) -> u32 {
        self.inner.borrow().config.replication
    }

    pub fn block_size_bytes(&self) -> u64 {
        self.inner.borrow().config.block_size_mb * 1024 * 1024
    }

    pub fn exists(&self, path: &str) -> bool {
        self.inner.borrow().files.contains_key(path)
    }

    pub fn used_bytes(&self) -> u64 {
        self.inner.borrow().used_bytes
    }

    /// Block locations for locality-aware scheduling (the NameNode
    /// `getBlockLocations` RPC).
    pub fn block_locations(&self, path: &str) -> Result<Vec<BlockMeta>, HdfsError> {
        self.inner
            .borrow()
            .files
            .get(path)
            .map(|f| f.blocks.clone())
            .ok_or_else(|| HdfsError::NotFound(path.into()))
    }

    pub fn file_meta(&self, path: &str) -> Result<FileMeta, HdfsError> {
        self.inner
            .borrow()
            .files
            .get(path)
            .cloned()
            .ok_or_else(|| HdfsError::NotFound(path.into()))
    }

    pub fn delete(&self, path: &str) -> Result<(), HdfsError> {
        let mut inner = self.inner.borrow_mut();
        match inner.files.remove(path) {
            Some(f) => {
                let replicas = f
                    .blocks
                    .iter()
                    .map(|b| b.size_bytes * b.replicas.len() as u64)
                    .sum::<u64>();
                inner.used_bytes -= replicas;
                Ok(())
            }
            None => Err(HdfsError::NotFound(path.into())),
        }
    }

    /// Register a file without simulating the ingest (pre-loaded input data
    /// for experiments). Placement is round-robin with the writer-local
    /// first-replica rule applied from a rotating "client".
    pub fn create_synthetic(
        &self,
        path: &str,
        size_bytes: u64,
        policy: StoragePolicy,
    ) -> Result<FileMeta, HdfsError> {
        let block_mb = self.inner.borrow().config.block_size_mb;
        self.create_synthetic_with_block(path, size_bytes, policy, block_mb)
    }

    /// Create a synthetic file pre-split into exactly `blocks` blocks
    /// (how MR jobs pin their map-task count regardless of file size).
    pub fn create_synthetic_with_blocks(
        &self,
        path: &str,
        size_bytes: u64,
        policy: StoragePolicy,
        blocks: u32,
    ) -> Result<FileMeta, HdfsError> {
        assert!(blocks >= 1);
        let mut inner = self.inner.borrow_mut();
        if inner.files.contains_key(path) {
            return Err(HdfsError::AlreadyExists(path.into()));
        }
        let per = (size_bytes as f64 / blocks as f64).ceil().max(1.0) as u64;
        let meta = inner.make_meta_exact(path, size_bytes, policy, per);
        let replicas = meta
            .blocks
            .iter()
            .map(|b| b.size_bytes * b.replicas.len() as u64)
            .sum::<u64>();
        inner.used_bytes += replicas;
        inner.files.insert(path.into(), meta.clone());
        Ok(meta)
    }

    /// Like [`Hdfs::create_synthetic`] with a per-file block size (HDFS
    /// block size is a per-file client-side property — MapReduce jobs use
    /// it to control their map-task count).
    pub fn create_synthetic_with_block(
        &self,
        path: &str,
        size_bytes: u64,
        policy: StoragePolicy,
        block_size_mb: u64,
    ) -> Result<FileMeta, HdfsError> {
        assert!(block_size_mb >= 1);
        let mut inner = self.inner.borrow_mut();
        if inner.files.contains_key(path) {
            return Err(HdfsError::AlreadyExists(path.into()));
        }
        let meta = inner.make_meta(path, size_bytes, policy, block_size_mb);
        let replicas = meta
            .blocks
            .iter()
            .map(|b| b.size_bytes * b.replicas.len() as u64)
            .sum::<u64>();
        inner.used_bytes += replicas;
        inner.files.insert(path.into(), meta.clone());
        Ok(meta)
    }

    /// Write a file from `client` through the replication pipeline. Blocks
    /// are written sequentially (HDFS client behaviour); within a block the
    /// pipeline cost is dominated by the slowest stage, which we model as
    /// the parallel set {local write, per-replica transfer+write}.
    pub fn write_file(
        &self,
        engine: &mut Engine,
        client: NodeId,
        path: &str,
        size_bytes: u64,
        policy: StoragePolicy,
        done: impl FnOnce(&mut Engine, Result<FileMeta, HdfsError>) + 'static,
    ) {
        let meta = {
            let mut inner = self.inner.borrow_mut();
            if inner.files.contains_key(path) {
                let p = path.to_string();
                engine.schedule_now(move |eng| done(eng, Err(HdfsError::AlreadyExists(p))));
                return;
            }
            inner.make_meta_local_first(path, size_bytes, policy, client)
        };
        let this = self.clone();
        let path = path.to_string();
        self.write_block_chain(engine, client, meta.clone(), 0, move |eng| {
            {
                let mut inner = this.inner.borrow_mut();
                let replicas = meta
                    .blocks
                    .iter()
                    .map(|b| b.size_bytes * b.replicas.len() as u64)
                    .sum::<u64>();
                inner.used_bytes += replicas;
                inner.files.insert(path.clone(), meta.clone());
            }
            done(eng, Ok(meta));
        });
    }

    /// Recursively write block `idx` (fan-out over replicas), then the next.
    fn write_block_chain(
        &self,
        engine: &mut Engine,
        client: NodeId,
        meta: FileMeta,
        idx: usize,
        done: impl FnOnce(&mut Engine) + 'static,
    ) {
        if idx >= meta.blocks.len() {
            engine.schedule_now(done);
            return;
        }
        let block = meta.blocks[idx].clone();
        let factor = meta.policy.bandwidth_factor();
        let n = block.replicas.len();
        engine.metrics.incr("hdfs.blocks_written");
        engine
            .metrics
            .add("hdfs.replica_bytes_written", block.size_bytes * n as u64);
        let remaining = Rc::new(RefCell::new(n));
        let done = Rc::new(RefCell::new(Some(done)));
        for &replica in &block.replicas {
            let this = self.clone();
            let meta2 = meta.clone();
            let remaining = remaining.clone();
            let done = done.clone();
            let bytes = block.size_bytes as f64 / factor;
            let cluster = self.cluster.clone();
            let finish = move |eng: &mut Engine| {
                let mut r = remaining.borrow_mut();
                *r -= 1;
                if *r == 0 {
                    drop(r);
                    let cb = done.borrow_mut().take().expect("block completion raced");
                    this.write_block_chain(eng, client, meta2, idx + 1, cb);
                }
            };
            if replica == client {
                cluster.storage_io(
                    engine,
                    StorageTarget::LocalDisk(replica),
                    IoKind::Write,
                    bytes,
                    finish,
                );
            } else {
                let cluster2 = cluster.clone();
                cluster.net_transfer(engine, client, replica, bytes, move |eng| {
                    cluster2.storage_io(
                        eng,
                        StorageTarget::LocalDisk(replica),
                        IoKind::Write,
                        bytes,
                        finish,
                    );
                });
            }
        }
    }

    /// Fail a datanode: every block with a replica there re-replicates
    /// from a surviving copy onto another node (NameNode behaviour on
    /// DataNode death). `done` fires when re-replication traffic ends;
    /// blocks whose only replica lived on the failed node are lost and
    /// reported in the result. The failed node stops hosting replicas.
    pub fn fail_datanode(
        &self,
        engine: &mut Engine,
        failed: NodeId,
        done: impl FnOnce(&mut Engine, Vec<u64>) + 'static,
    ) {
        let cluster = self.cluster.clone();
        // Plan: (block id, source replica, new target, bytes) + lost ids.
        let mut plan = Vec::new();
        let mut lost = Vec::new();
        {
            let mut inner = self.inner.borrow_mut();
            inner.datanodes.retain(|&n| n != failed);
            let survivors = inner.datanodes.clone();
            assert!(
                !survivors.is_empty(),
                "cannot fail the last datanode of an HDFS cluster"
            );
            let mut cursor = inner.placement_cursor;
            let mut freed = 0u64;
            for file in inner.files.values_mut() {
                for block in file.blocks.iter_mut() {
                    if !block.replicas.contains(&failed) {
                        continue;
                    }
                    block.replicas.retain(|&n| n != failed);
                    freed += block.size_bytes;
                    if block.replicas.is_empty() {
                        lost.push(block.id);
                        continue;
                    }
                    // Pick a survivor that doesn't already hold the block.
                    let mut target = None;
                    for _ in 0..survivors.len() {
                        let cand = survivors[cursor % survivors.len()];
                        cursor += 1;
                        if !block.replicas.contains(&cand) {
                            target = Some(cand);
                            break;
                        }
                    }
                    if let Some(t) = target {
                        let src = block.replicas[0];
                        block.replicas.push(t);
                        plan.push((src, t, block.size_bytes));
                    } else {
                        freed -= block.size_bytes; // stays under-replicated
                    }
                }
            }
            inner.placement_cursor = cursor;
            inner.used_bytes -= freed;
            // Re-replicated bytes are re-added below as copies complete.
        }
        engine.trace.record(
            engine.now(),
            "hdfs",
            format!(
                "datanode {failed} failed: {} blocks re-replicating, {} lost",
                plan.len(),
                lost.len()
            ),
        );
        engine.metrics.incr("hdfs.datanode_failures");
        engine
            .metrics
            .add("hdfs.blocks_rereplicated", plan.len() as u64);
        engine.metrics.add("hdfs.blocks_lost", lost.len() as u64);
        if plan.is_empty() {
            engine.schedule_now(move |eng| done(eng, lost));
            return;
        }
        let remaining = Rc::new(RefCell::new(plan.len()));
        let done = Rc::new(RefCell::new(Some(done)));
        let this = self.clone();
        for (src, dst, bytes) in plan {
            let remaining = remaining.clone();
            let done = done.clone();
            let cluster2 = cluster.clone();
            let this2 = this.clone();
            let lost2 = lost.clone();
            // Copy: read at source, ship over fabric, write at target.
            cluster.storage_io(
                engine,
                StorageTarget::LocalDisk(src),
                IoKind::Read,
                bytes as f64,
                move |eng| {
                    let cluster3 = cluster2.clone();
                    cluster2.net_transfer(eng, src, dst, bytes as f64, move |eng| {
                        cluster3.storage_io(
                            eng,
                            StorageTarget::LocalDisk(dst),
                            IoKind::Write,
                            bytes as f64,
                            move |eng| {
                                this2.inner.borrow_mut().used_bytes += bytes;
                                let mut r = remaining.borrow_mut();
                                *r -= 1;
                                if *r == 0 {
                                    drop(r);
                                    let cb =
                                        done.borrow_mut().take().expect("re-replication raced");
                                    cb(eng, lost2);
                                }
                            },
                        );
                    });
                },
            );
        }
    }

    /// Read a whole file to `client`, choosing the closest replica of each
    /// block (node-local if available, otherwise the first replica).
    /// Blocks are read in parallel (MapReduce-style streaming readers).
    pub fn read_file(
        &self,
        engine: &mut Engine,
        client: NodeId,
        path: &str,
        done: impl FnOnce(&mut Engine, Result<u64, HdfsError>) + 'static,
    ) {
        let meta = match self.file_meta(path) {
            Ok(m) => m,
            Err(e) => {
                engine.schedule_now(move |eng| done(eng, Err(e)));
                return;
            }
        };
        let total = meta.size_bytes;
        let n = meta.blocks.len();
        let remaining = Rc::new(RefCell::new(n));
        let done = Rc::new(RefCell::new(Some(done)));
        for block in meta.blocks {
            let remaining = remaining.clone();
            let done = done.clone();
            self.read_block(engine, client, &block, meta.policy, move |eng| {
                let mut r = remaining.borrow_mut();
                *r -= 1;
                if *r == 0 {
                    drop(r);
                    let cb = done.borrow_mut().take().expect("read completion raced");
                    cb(eng, Ok(total));
                }
            });
        }
    }

    /// Read one block to `client` (used by MapReduce with per-split reads).
    pub fn read_block(
        &self,
        engine: &mut Engine,
        client: NodeId,
        block: &BlockMeta,
        policy: StoragePolicy,
        done: impl FnOnce(&mut Engine) + 'static,
    ) {
        let bytes = block.size_bytes as f64 / policy.bandwidth_factor();
        let source = if block.replicas.contains(&client) {
            client
        } else {
            block.replicas[0]
        };
        let cluster = self.cluster.clone();
        if source == client {
            cluster.storage_io(
                engine,
                StorageTarget::LocalDisk(source),
                IoKind::Read,
                bytes,
                done,
            );
        } else {
            let cluster2 = cluster.clone();
            cluster.storage_io(
                engine,
                StorageTarget::LocalDisk(source),
                IoKind::Read,
                bytes,
                move |eng| {
                    cluster2.net_transfer(eng, source, client, bytes, done);
                },
            );
        }
    }
}

impl Inner {
    /// Placement for pre-loaded (synthetic) files: no writer, so the first
    /// replica rotates per block — input data spreads over the datanodes
    /// the way a distributed ingest would leave it.
    fn make_meta(
        &mut self,
        path: &str,
        size_bytes: u64,
        policy: StoragePolicy,
        block_size_mb: u64,
    ) -> FileMeta {
        self.make_meta_exact(path, size_bytes, policy, block_size_mb * 1024 * 1024)
    }

    fn make_meta_exact(
        &mut self,
        path: &str,
        size_bytes: u64,
        policy: StoragePolicy,
        block_size_bytes: u64,
    ) -> FileMeta {
        let block_size = block_size_bytes;
        let replication = self.config.replication as usize;
        let sizes = split_blocks(size_bytes, block_size);
        let blocks = sizes
            .into_iter()
            .map(|size| {
                let id = self.next_block_id;
                self.next_block_id += 1;
                let mut replicas = Vec::with_capacity(replication);
                while replicas.len() < replication {
                    let cand = self.datanodes[self.placement_cursor % self.datanodes.len()];
                    self.placement_cursor += 1;
                    if !replicas.contains(&cand) {
                        replicas.push(cand);
                    }
                }
                BlockMeta {
                    id,
                    size_bytes: size,
                    replicas,
                }
            })
            .collect();
        FileMeta {
            path: path.into(),
            size_bytes,
            policy,
            blocks,
        }
    }

    /// HDFS placement: first replica on the writer's node (if it is a
    /// datanode), remaining replicas spread round-robin over other nodes.
    fn make_meta_local_first(
        &mut self,
        path: &str,
        size_bytes: u64,
        policy: StoragePolicy,
        client: NodeId,
    ) -> FileMeta {
        let block_size = self.config.block_size_mb * 1024 * 1024;
        let replication = self.config.replication as usize;
        let sizes = split_blocks(size_bytes, block_size);
        let client_is_dn = self.datanodes.contains(&client);
        let blocks = sizes
            .into_iter()
            .map(|size| {
                let id = self.next_block_id;
                self.next_block_id += 1;
                let mut replicas = Vec::with_capacity(replication);
                if client_is_dn {
                    replicas.push(client);
                }
                while replicas.len() < replication {
                    let cand = self.datanodes[self.placement_cursor % self.datanodes.len()];
                    self.placement_cursor += 1;
                    if !replicas.contains(&cand) {
                        replicas.push(cand);
                    }
                }
                BlockMeta {
                    id,
                    size_bytes: size,
                    replicas,
                }
            })
            .collect();
        FileMeta {
            path: path.into(),
            size_bytes,
            policy,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_hpc::MachineSpec;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn deploy_localhost(engine: &mut Engine) -> Hdfs {
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let out = Rc::new(RefCell::new(None));
        let o = out.clone();
        Hdfs::deploy(
            engine,
            cluster,
            nodes,
            HdfsConfig::default(),
            move |_, fs| {
                *o.borrow_mut() = Some(fs);
            },
        );
        engine.run();
        let fs = out.borrow_mut().take().expect("hdfs deployed");
        fs
    }

    #[test]
    fn deploy_takes_daemon_start_time() {
        let mut e = Engine::new(1);
        let _fs = deploy_localhost(&mut e);
        let t = e.now().as_secs_f64();
        // nn (~6 s) + max of 4 dn (~4-6 s) → roughly 8-14 s.
        assert!(t > 6.0 && t < 20.0, "{t}");
    }

    #[test]
    fn replication_capped_by_node_count() {
        let mut e = Engine::new(1);
        let cluster = Cluster::new(MachineSpec::localhost());
        let out = Rc::new(RefCell::new(None));
        let o = out.clone();
        Hdfs::deploy(
            &mut e,
            cluster,
            vec![NodeId(0), NodeId(1)],
            HdfsConfig::default(),
            move |_, fs| *o.borrow_mut() = Some(fs),
        );
        e.run();
        assert_eq!(out.borrow().as_ref().unwrap().replication(), 2);
    }

    #[test]
    fn synthetic_file_has_correct_blocks_and_replicas() {
        let mut e = Engine::new(1);
        let fs = deploy_localhost(&mut e);
        let meta = fs
            .create_synthetic("/data/in", 300 * 1024 * 1024, StoragePolicy::Default)
            .unwrap();
        assert_eq!(meta.blocks.len(), 3); // 128 + 128 + 44
        for b in &meta.blocks {
            assert_eq!(b.replicas.len(), 3);
            let mut r = b.replicas.clone();
            r.sort();
            r.dedup();
            assert_eq!(r.len(), 3, "replicas must be distinct");
        }
        assert!(fs.exists("/data/in"));
        assert_eq!(fs.used_bytes(), 3 * 300 * 1024 * 1024);
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut e = Engine::new(1);
        let fs = deploy_localhost(&mut e);
        fs.create_synthetic("/x", 10, StoragePolicy::Default)
            .unwrap();
        assert!(matches!(
            fs.create_synthetic("/x", 10, StoragePolicy::Default),
            Err(HdfsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn delete_frees_space() {
        let mut e = Engine::new(1);
        let fs = deploy_localhost(&mut e);
        fs.create_synthetic("/x", 1024, StoragePolicy::Default)
            .unwrap();
        assert!(fs.used_bytes() > 0);
        fs.delete("/x").unwrap();
        assert_eq!(fs.used_bytes(), 0);
        assert!(matches!(fs.delete("/x"), Err(HdfsError::NotFound(_))));
    }

    #[test]
    fn write_file_lands_first_replica_on_client() {
        let mut e = Engine::new(1);
        let fs = deploy_localhost(&mut e);
        let got = Rc::new(RefCell::new(None));
        let g = got.clone();
        fs.write_file(
            &mut e,
            NodeId(2),
            "/out",
            64 * 1024 * 1024,
            StoragePolicy::Default,
            move |eng, res| {
                *g.borrow_mut() = Some((eng.now(), res.unwrap()));
            },
        );
        e.run();
        let (t, meta) = got.borrow_mut().take().unwrap();
        assert_eq!(meta.blocks[0].replicas[0], NodeId(2));
        // 64 MB at 400 MB/s local + pipeline transfers: sub-second but > 0.
        assert!(t.as_secs_f64() > 0.1, "{t}");
        assert!(fs.exists("/out"));
    }

    #[test]
    fn write_duplicate_path_fails_async() {
        let mut e = Engine::new(1);
        let fs = deploy_localhost(&mut e);
        fs.create_synthetic("/dup", 10, StoragePolicy::Default)
            .unwrap();
        let failed = Rc::new(RefCell::new(false));
        let f = failed.clone();
        fs.write_file(
            &mut e,
            NodeId(0),
            "/dup",
            10,
            StoragePolicy::Default,
            move |_, res| {
                *f.borrow_mut() = matches!(res, Err(HdfsError::AlreadyExists(_)));
            },
        );
        e.run();
        assert!(*failed.borrow());
    }

    #[test]
    fn local_read_is_faster_than_remote() {
        let mut e = Engine::new(1);
        let fs = deploy_localhost(&mut e);
        let meta = fs
            .create_synthetic("/data", 128 * 1024 * 1024, StoragePolicy::Default)
            .unwrap();
        let holder = meta.blocks[0].replicas[0];
        let non_holder = fs
            .datanodes()
            .into_iter()
            .find(|n| !meta.blocks[0].replicas.contains(n));

        let t_local = Rc::new(RefCell::new(0.0));
        let tl = t_local.clone();
        let start = e.now();
        fs.read_file(&mut e, holder, "/data", move |eng, res| {
            res.unwrap();
            *tl.borrow_mut() = eng.now().since(start).as_secs_f64();
        });
        e.run();

        if let Some(remote) = non_holder {
            let t_remote = Rc::new(RefCell::new(0.0));
            let tr = t_remote.clone();
            let start = e.now();
            fs.read_file(&mut e, remote, "/data", move |eng, res| {
                res.unwrap();
                *tr.borrow_mut() = eng.now().since(start).as_secs_f64();
            });
            e.run();
            assert!(
                *t_remote.borrow() > *t_local.borrow(),
                "remote {} must exceed local {}",
                t_remote.borrow(),
                t_local.borrow()
            );
        }
    }

    #[test]
    fn ssd_policy_reads_faster() {
        let mut e = Engine::new(1);
        let fs = deploy_localhost(&mut e);
        fs.create_synthetic("/hot", 256 * 1024 * 1024, StoragePolicy::AllSsd)
            .unwrap();
        fs.create_synthetic("/cold", 256 * 1024 * 1024, StoragePolicy::Archive)
            .unwrap();
        let times = Rc::new(RefCell::new(Vec::new()));
        for path in ["/hot", "/cold"] {
            let t = times.clone();
            let meta = fs.file_meta(path).unwrap();
            let client = meta.blocks[0].replicas[0];
            let start = e.now();
            fs.read_file(&mut e, client, path, move |eng, _| {
                t.borrow_mut().push(eng.now().since(start).as_secs_f64());
            });
            e.run();
        }
        let times = times.borrow();
        assert!(
            times[0] < times[1],
            "ssd {} vs archive {}",
            times[0],
            times[1]
        );
    }

    #[test]
    fn read_missing_file_errors() {
        let mut e = Engine::new(1);
        let fs = deploy_localhost(&mut e);
        let got = Rc::new(RefCell::new(false));
        let g = got.clone();
        fs.read_file(&mut e, NodeId(0), "/nope", move |_, res| {
            *g.borrow_mut() = matches!(res, Err(HdfsError::NotFound(_)));
        });
        e.run();
        assert!(*got.borrow());
    }

    #[test]
    fn datanode_failure_rereplicates_blocks() {
        let mut e = Engine::new(1);
        let fs = deploy_localhost(&mut e);
        fs.create_synthetic("/data", 512 * 1024 * 1024, StoragePolicy::Default)
            .unwrap();
        let victim = fs.datanodes()[1];
        let lost = Rc::new(RefCell::new(None));
        let l = lost.clone();
        fs.fail_datanode(&mut e, victim, move |_, lost_blocks| {
            *l.borrow_mut() = Some(lost_blocks);
        });
        e.run();
        assert_eq!(
            lost.borrow().clone().unwrap().len(),
            0,
            "replication 3 → no loss"
        );
        // Every block is back at full replication, none on the dead node.
        for b in fs.block_locations("/data").unwrap() {
            assert_eq!(b.replicas.len(), 3, "{b:?}");
            assert!(!b.replicas.contains(&victim));
            let mut r = b.replicas.clone();
            r.sort();
            r.dedup();
            assert_eq!(r.len(), 3, "distinct replicas");
        }
        assert!(!fs.datanodes().contains(&victim));
    }

    #[test]
    fn single_replica_blocks_are_lost_on_failure() {
        let mut e = Engine::new(1);
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let fs = Hdfs::attach(
            cluster,
            nodes,
            HdfsConfig {
                replication: 1,
                ..HdfsConfig::default()
            },
        );
        let meta = fs
            .create_synthetic("/fragile", 256 * 1024 * 1024, StoragePolicy::Default)
            .unwrap();
        let victim = meta.blocks[0].replicas[0];
        let lost = Rc::new(RefCell::new(None));
        let l = lost.clone();
        fs.fail_datanode(&mut e, victim, move |_, lost_blocks| {
            *l.borrow_mut() = Some(lost_blocks);
        });
        e.run();
        let lost = lost.borrow().clone().unwrap();
        assert!(lost.contains(&meta.blocks[0].id), "{lost:?}");
    }

    #[test]
    fn block_locations_expose_locality() {
        let mut e = Engine::new(1);
        let fs = deploy_localhost(&mut e);
        fs.create_synthetic("/in", 512 * 1024 * 1024, StoragePolicy::Default)
            .unwrap();
        let locs = fs.block_locations("/in").unwrap();
        assert_eq!(locs.len(), 4);
        // Round-robin placement spreads blocks over all 4 nodes.
        let firsts: std::collections::BTreeSet<NodeId> =
            locs.iter().map(|b| b.replicas[0]).collect();
        assert!(firsts.len() >= 2, "placement should spread: {firsts:?}");
    }
}
