//! Simulated MapReduce job on YARN.
//!
//! Reproduces the execution shape of a Hadoop 2.x MR job inside the
//! discrete-event simulation: AM startup, locality-aware map containers
//! reading HDFS splits, map-output spills to the shuffle backend (node-
//! local disk or Lustre — the trade-off behind the paper's 13 % result),
//! all-to-all shuffle fetches over the fabric, reduce compute, and output
//! writes. Compute durations come from a calibrated per-workload cost
//! model; the *data volumes* are exact.

use std::cell::RefCell;
use std::rc::Rc;

use rp_hdfs::Hdfs;
use rp_hpc::{Cluster, IoKind, IoPattern, NodeId, StorageTarget};
use rp_sim::{Engine, SimDuration, SimTime, SpanId, MB};
use rp_yarn::{Resource, ResourceRequest, YarnCluster};

/// Where map outputs spill and reducers fetch from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShuffleBackend {
    /// Node-local disks (stock Hadoop; what RP-YARN uses in the paper).
    LocalDisk,
    /// The shared parallel filesystem (Hadoop-over-Lustre deployments).
    Lustre,
    /// In-memory shuffle (Tachyon-style, the paper's future work §V:
    /// "utilizing in-memory filesystems and runtimes … for iterative
    /// algorithms"): spills are memory copies; fetches only cross the
    /// fabric. Costs container memory instead of disk (not enforced —
    /// callers size their containers accordingly).
    InMemory,
}

/// Calibrated cost model of one MapReduce workload.
///
/// Compute terms are in core-seconds on a reference core
/// (`MachineSpec::core_speed == 1.0`); data terms are exact ratios.
#[derive(Debug, Clone)]
pub struct MrCostModel {
    /// Map compute per MB of input.
    pub map_core_s_per_input_mb: f64,
    /// Fixed per-map-task overhead (task JVM setup inside the container).
    pub map_fixed_s: f64,
    /// Shuffle bytes produced per input byte.
    pub map_output_ratio: f64,
    /// Reduce compute per MB of shuffle input.
    pub reduce_core_s_per_shuffle_mb: f64,
    pub reduce_fixed_s: f64,
    /// Output bytes per shuffle byte.
    pub reduce_output_ratio: f64,
    /// Multiplicative per-task jitter (lognormal sigma; 0 disables).
    pub task_jitter_sigma: f64,
    /// Hadoop speculative execution: when a map runs past
    /// `speculative_threshold ×` its expected duration, a backup attempt
    /// is modelled and the task finishes at the earlier of the two
    /// (analytic tail-capping: backup duration = expected + container
    /// re-allocation overhead). 0 disables.
    pub speculative_threshold: f64,
}

impl Default for MrCostModel {
    fn default() -> Self {
        MrCostModel {
            map_core_s_per_input_mb: 0.5,
            map_fixed_s: 1.5,
            map_output_ratio: 1.0,
            reduce_core_s_per_shuffle_mb: 0.3,
            reduce_fixed_s: 1.5,
            reduce_output_ratio: 0.1,
            task_jitter_sigma: 0.04,
            speculative_threshold: 0.0,
        }
    }
}

/// A simulated MapReduce job description.
#[derive(Debug, Clone)]
pub struct MrJobSpec {
    pub name: String,
    /// HDFS input path; one map task per block.
    pub input_path: String,
    pub num_reducers: usize,
    /// Per-task container size.
    pub container: Resource,
    pub shuffle: ShuffleBackend,
    pub cost: MrCostModel,
}

/// Timings and volumes of a finished job.
#[derive(Debug, Clone)]
pub struct MrJobStats {
    pub total: SimDuration,
    /// Submission → AM running (stage one of Fig. 4).
    pub am_startup: SimDuration,
    /// AM running → last map task done.
    pub map_phase: SimDuration,
    /// Last map done → last shuffle fetch done.
    pub shuffle_phase: SimDuration,
    /// Last fetch done → job finished.
    pub reduce_phase: SimDuration,
    pub maps: usize,
    pub reducers: usize,
    pub input_bytes: f64,
    pub shuffle_bytes: f64,
    pub output_bytes: f64,
}

struct JobState {
    t_submit: SimTime,
    t_am: SimTime,
    t_maps_done: SimTime,
    t_shuffle_done: SimTime,
    maps_remaining: usize,
    fetches_remaining: usize,
    reducers_remaining: usize,
    /// (node, shuffle bytes) per finished map task.
    map_outputs: Vec<(NodeId, f64)>,
    input_bytes: f64,
    output_bytes: f64,
    /// Span parent for the job's phase spans (NONE when untraced).
    span_parent: SpanId,
    /// The currently open phase span (am alloc → map → shuffle → reduce).
    span_open: SpanId,
}

/// Close the open phase span and open the next one under the job's parent.
fn advance_phase_span(
    engine: &mut Engine,
    state: &Rc<RefCell<JobState>>,
    category: &'static str,
    name: &str,
) {
    let (open, parent) = {
        let st = state.borrow();
        (st.span_open, st.span_parent)
    };
    engine.trace.span_end(engine.now(), open);
    let next = engine
        .trace
        .span_begin(engine.now(), category, name, parent);
    state.borrow_mut().span_open = next;
}

/// Run `spec` on a YARN cluster against `hdfs`. `done` receives the stats.
///
/// Panics if the input path does not exist (experiment setup bug) or if the
/// shuffle backend is `LocalDisk` on a machine without local disks.
pub fn run_on_yarn(
    engine: &mut Engine,
    cluster: &Cluster,
    yarn: &YarnCluster,
    hdfs: &Hdfs,
    spec: MrJobSpec,
    done: impl FnOnce(&mut Engine, MrJobStats) + 'static,
) {
    run_on_yarn_in_span(engine, cluster, yarn, hdfs, spec, SpanId::NONE, done);
}

/// [`run_on_yarn`] with the job's phases recorded as spans under `parent`:
/// `yarn.am_allocation` (submit → AM running), then `mr.map`, `mr.shuffle`
/// and `mr.reduce` back to back. With tracing disabled this is
/// byte-identical to `run_on_yarn`.
pub fn run_on_yarn_in_span(
    engine: &mut Engine,
    cluster: &Cluster,
    yarn: &YarnCluster,
    hdfs: &Hdfs,
    spec: MrJobSpec,
    parent: SpanId,
    done: impl FnOnce(&mut Engine, MrJobStats) + 'static,
) {
    let blocks = hdfs
        .block_locations(&spec.input_path)
        .unwrap_or_else(|e| panic!("MR input missing: {e}"));
    assert!(!blocks.is_empty());
    if spec.shuffle == ShuffleBackend::LocalDisk {
        assert!(
            cluster.has_local_disk(),
            "LocalDisk shuffle on a machine without local disks"
        );
    }
    let n_maps = blocks.len();
    let am_span = engine
        .trace
        .span_begin(engine.now(), "yarn", "yarn.am_allocation", parent);
    let state = Rc::new(RefCell::new(JobState {
        t_submit: engine.now(),
        t_am: engine.now(),
        t_maps_done: engine.now(),
        t_shuffle_done: engine.now(),
        maps_remaining: n_maps,
        fetches_remaining: 0,
        reducers_remaining: spec.num_reducers,
        map_outputs: Vec::new(),
        input_bytes: blocks.iter().map(|b| b.size_bytes as f64).sum(),
        output_bytes: 0.0,
        span_parent: parent,
        span_open: am_span,
    }));
    let done: DoneSlot = Rc::new(RefCell::new(Some(Box::new(done) as _)));

    let cluster = cluster.clone();
    let hdfs = hdfs.clone();
    let spec = Rc::new(spec);
    let state2 = state.clone();
    let spec2 = spec.clone();
    let yarn2 = yarn.clone();
    engine.metrics.incr("mr.jobs_submitted");
    yarn.submit_app(
        engine,
        spec.name.clone(),
        ResourceRequest::new(1, 1536),
        move |eng, am| {
            state2.borrow_mut().t_am = eng.now();
            advance_phase_span(eng, &state2, "mr", "mr.map");
            // Request one container per map task, preferring the block's
            // first replica (data locality, relaxed by delay scheduling).
            for block in blocks {
                let spec = spec2.clone();
                let state = state2.clone();
                let cluster = cluster.clone();
                let hdfs = hdfs.clone();
                let am2 = am.clone();
                let done = done.clone();
                let yarn = yarn2.clone();
                let req = ResourceRequest {
                    resource: spec.container,
                    preferred_node: Some(block.replicas[0]),
                };
                am.request_container(eng, req, move |eng, container| {
                    run_map_task(
                        eng, cluster, hdfs, yarn, am2, spec, state, block, container, done,
                    );
                });
            }
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn run_map_task(
    engine: &mut Engine,
    cluster: Cluster,
    hdfs: Hdfs,
    yarn: YarnCluster,
    am: rp_yarn::AmHandle,
    spec: Rc<MrJobSpec>,
    state: Rc<RefCell<JobState>>,
    block: rp_hdfs::BlockMeta,
    container: rp_yarn::Container,
    done: DoneSlot,
) {
    let node = container.node;
    let input_bytes = block.size_bytes as f64;
    let policy = hdfs
        .file_meta(&spec.input_path)
        .map(|f| f.policy)
        .unwrap_or_default();
    // 1. Read the split (node-local when placement succeeded).
    let cluster2 = cluster.clone();
    let spec2 = spec.clone();
    let state2 = state.clone();
    hdfs.read_block(engine, node, &block, policy, move |eng| {
        // 2. Map compute (with optional speculative-execution tail cap).
        let base = spec2.cost.map_fixed_s + spec2.cost.map_core_s_per_input_mb * (input_bytes / MB);
        let jitter = jitter(eng, spec2.cost.task_jitter_sigma);
        let mut effective = base * jitter;
        let threshold = spec2.cost.speculative_threshold;
        if threshold > 0.0 && effective > base * threshold {
            // Backup attempt launched at the threshold: it pays a fresh
            // container allocation (~2 heartbeats + launch) and runs at
            // its own jitter; the task ends at the earlier finisher.
            let backup_overhead = 2.0 + 4.0; // alloc + launch, seconds
            let backup = base * threshold
                + backup_overhead
                + base * jitter2(eng, spec2.cost.task_jitter_sigma);
            if backup < effective {
                eng.trace.record(
                    eng.now(),
                    "mr",
                    format!("speculative backup wins for a map on {node}"),
                );
                effective = backup;
            }
        }
        let dur = cluster2.compute_duration(effective);
        let cluster3 = cluster2.clone();
        eng.schedule_in(dur, move |eng| {
            // 3. Spill map output to the shuffle backend.
            let out_bytes = input_bytes * spec2.cost.map_output_ratio;
            let spec3 = spec2.clone();
            let state3 = state2.clone();
            let cluster4 = cluster3.clone();
            let after_spill = move |eng: &mut Engine| {
                am.release_container(eng, container.id);
                eng.metrics.incr("mr.map_tasks");
                eng.metrics.add("mr.shuffle_bytes", out_bytes as u64);
                let maps_done = {
                    let mut st = state3.borrow_mut();
                    st.map_outputs.push((node, out_bytes));
                    st.maps_remaining -= 1;
                    st.maps_remaining == 0
                };
                if maps_done {
                    state3.borrow_mut().t_maps_done = eng.now();
                    advance_phase_span(eng, &state3, "mr", "mr.shuffle");
                    start_reduce_phase(eng, cluster4, yarn, am, spec3, state3, done);
                }
            };
            match spec2.shuffle {
                ShuffleBackend::InMemory => {
                    // Memory copy into the shuffle store.
                    let dur = rp_sim::SimDuration::from_secs_f64(out_bytes / (4_000.0 * MB));
                    eng.schedule_in(dur, after_spill);
                }
                ShuffleBackend::LocalDisk => cluster3.storage_io_pattern(
                    eng,
                    StorageTarget::LocalDisk(node),
                    IoKind::Write,
                    IoPattern::Random,
                    out_bytes,
                    after_spill,
                ),
                ShuffleBackend::Lustre => cluster3.storage_io_pattern(
                    eng,
                    StorageTarget::Lustre,
                    IoKind::Write,
                    IoPattern::Random,
                    out_bytes,
                    after_spill,
                ),
            }
        });
    });
}

type DoneSlot = Rc<RefCell<Option<Box<dyn FnOnce(&mut Engine, MrJobStats)>>>>;

fn start_reduce_phase(
    engine: &mut Engine,
    cluster: Cluster,
    yarn: YarnCluster,
    am: rp_yarn::AmHandle,
    spec: Rc<MrJobSpec>,
    state: Rc<RefCell<JobState>>,
    done: DoneSlot,
) {
    let r = spec.num_reducers;
    {
        let mut st = state.borrow_mut();
        st.fetches_remaining = st.map_outputs.len() * r;
    }
    for _ in 0..r {
        let cluster = cluster.clone();
        let spec = spec.clone();
        let state = state.clone();
        let am2 = am.clone();
        let done = done.clone();
        let yarn2 = yarn.clone();
        am.request_container(
            engine,
            ResourceRequest {
                resource: spec.container,
                preferred_node: None,
            },
            move |eng, container| {
                run_reduce_task(eng, cluster, yarn2, am2, spec, state, container, done);
            },
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn run_reduce_task(
    engine: &mut Engine,
    cluster: Cluster,
    _yarn: YarnCluster,
    am: rp_yarn::AmHandle,
    spec: Rc<MrJobSpec>,
    state: Rc<RefCell<JobState>>,
    container: rp_yarn::Container,
    done: DoneSlot,
) {
    let node = container.node;
    let r = spec.num_reducers as f64;
    let map_outputs = state.borrow().map_outputs.clone();
    let my_share: f64 = map_outputs.iter().map(|&(_, b)| b / r).sum();
    let fetches = map_outputs.len();
    let fetched = Rc::new(RefCell::new(0usize));

    for (map_node, out_bytes) in map_outputs {
        let bytes = out_bytes / r;
        let cluster2 = cluster.clone();
        let cluster3 = cluster.clone();
        let fetched = fetched.clone();
        let spec2 = spec.clone();
        let state2 = state.clone();
        let am2 = am.clone();
        let done = done.clone();
        // Fetch = read the segment at the map node, then move it over the
        // fabric to the reduce node (loopback if co-located). In-memory
        // shuffles skip the storage read entirely.
        let after_read = move |eng: &mut Engine| {
            cluster2.net_transfer(eng, map_node, node, bytes, move |eng| {
                let all_fetched = {
                    let mut f = fetched.borrow_mut();
                    *f += 1;
                    *f == fetches
                };
                if !all_fetched {
                    return;
                }
                let shuffle_done = {
                    let mut st = state2.borrow_mut();
                    // Last fetch across *all* reducers wins; per-reducer
                    // compute starts from its own last fetch regardless.
                    st.fetches_remaining = st.fetches_remaining.saturating_sub(fetches);
                    if st.fetches_remaining == 0 {
                        st.t_shuffle_done = eng.now();
                        true
                    } else {
                        false
                    }
                };
                if shuffle_done {
                    advance_phase_span(eng, &state2, "mr", "mr.reduce");
                }
                // Reduce compute (sort/merge + user reduce).
                let base = spec2.cost.reduce_fixed_s
                    + spec2.cost.reduce_core_s_per_shuffle_mb * (my_share / MB);
                let jitter = jitter(eng, spec2.cost.task_jitter_sigma);
                let dur = cluster3.compute_duration(base * jitter);
                let cluster4 = cluster3.clone();
                eng.schedule_in(dur, move |eng| {
                    // Write final output (reducer-local; HDFS-style).
                    let out = my_share * spec2.cost.reduce_output_ratio;
                    let target = if cluster4.has_local_disk() {
                        StorageTarget::LocalDisk(node)
                    } else {
                        StorageTarget::Lustre
                    };
                    cluster4.storage_io(eng, target, IoKind::Write, out, move |eng| {
                        am2.release_container(eng, container.id);
                        let finished = {
                            let mut st = state2.borrow_mut();
                            st.output_bytes += out;
                            st.reducers_remaining -= 1;
                            st.reducers_remaining == 0
                        };
                        if finished {
                            am2.finish(eng);
                            eng.metrics.incr("mr.jobs_finished");
                            let open = state2.borrow().span_open;
                            eng.trace.span_end(eng.now(), open);
                            let stats = {
                                let st = state2.borrow();
                                MrJobStats {
                                    total: eng.now().since(st.t_submit),
                                    am_startup: st.t_am.since(st.t_submit),
                                    map_phase: st.t_maps_done.since(st.t_am),
                                    shuffle_phase: st
                                        .t_shuffle_done
                                        .saturating_since(st.t_maps_done),
                                    reduce_phase: eng.now().saturating_since(st.t_shuffle_done),
                                    maps: st.map_outputs.len(),
                                    reducers: spec2.num_reducers,
                                    input_bytes: st.input_bytes,
                                    shuffle_bytes: st.map_outputs.iter().map(|&(_, b)| b).sum(),
                                    output_bytes: st.output_bytes,
                                }
                            };
                            let cb = done.borrow_mut().take().expect("MR job completed twice");
                            cb(eng, stats);
                        }
                    });
                });
            });
        };
        match spec.shuffle {
            ShuffleBackend::InMemory => {
                engine.schedule_now(after_read);
            }
            ShuffleBackend::LocalDisk => cluster.storage_io_pattern(
                engine,
                StorageTarget::LocalDisk(map_node),
                IoKind::Read,
                IoPattern::Random,
                bytes,
                after_read,
            ),
            ShuffleBackend::Lustre => cluster.storage_io_pattern(
                engine,
                StorageTarget::Lustre,
                IoKind::Read,
                IoPattern::Random,
                bytes,
                after_read,
            ),
        }
    }
}

/// Run `iterations` chained jobs (iterative algorithms like K-Means: the
/// output of iteration *i* feeds iteration *i+1*; each iteration re-reads
/// the same input and pays the full job overhead — the "persistence to
/// HDFS after each iteration" cost the paper cites as MapReduce's
/// expressiveness limit, §II). `done` receives per-iteration stats.
pub fn run_iterative_on_yarn(
    engine: &mut Engine,
    cluster: &Cluster,
    yarn: &YarnCluster,
    hdfs: &Hdfs,
    spec: MrJobSpec,
    iterations: u32,
    done: impl FnOnce(&mut Engine, Vec<MrJobStats>) + 'static,
) {
    assert!(iterations >= 1);
    let acc: Rc<RefCell<Vec<MrJobStats>>> = Rc::new(RefCell::new(Vec::new()));
    chain_iteration(
        engine,
        cluster.clone(),
        yarn.clone(),
        hdfs.clone(),
        spec,
        iterations,
        acc,
        Box::new(done),
    );
}

type IterDoneFn = Box<dyn FnOnce(&mut Engine, Vec<MrJobStats>)>;

#[allow(clippy::too_many_arguments)]
fn chain_iteration(
    engine: &mut Engine,
    cluster: Cluster,
    yarn: YarnCluster,
    hdfs: Hdfs,
    spec: MrJobSpec,
    remaining: u32,
    acc: Rc<RefCell<Vec<MrJobStats>>>,
    done: IterDoneFn,
) {
    let iter_spec = MrJobSpec {
        name: format!("{}-it{}", spec.name, acc.borrow().len()),
        ..spec.clone()
    };
    let cluster2 = cluster.clone();
    let yarn2 = yarn.clone();
    let hdfs2 = hdfs.clone();
    run_on_yarn(
        engine,
        &cluster,
        &yarn,
        &hdfs,
        iter_spec,
        move |eng, stats| {
            acc.borrow_mut().push(stats);
            if remaining <= 1 {
                let out = std::mem::take(&mut *acc.borrow_mut());
                done(eng, out);
            } else {
                chain_iteration(eng, cluster2, yarn2, hdfs2, spec, remaining - 1, acc, done);
            }
        },
    );
}

fn jitter(engine: &mut Engine, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        1.0
    } else {
        engine.rng.lognormal(0.0, sigma)
    }
}

/// A second, independent jitter draw (the backup attempt's own luck).
fn jitter2(engine: &mut Engine, sigma: f64) -> f64 {
    jitter(engine, sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rp_hdfs::{HdfsConfig, StoragePolicy};
    use rp_hpc::MachineSpec;
    use rp_yarn::YarnConfig;

    fn setup(engine: &mut Engine) -> (Cluster, YarnCluster, Hdfs) {
        let cluster = Cluster::new(MachineSpec::localhost());
        let nodes: Vec<NodeId> = cluster.node_ids().collect();
        let yarn = YarnCluster::start(engine, &cluster, &nodes, YarnConfig::test_profile());
        let hdfs = Hdfs::attach(cluster.clone(), nodes, HdfsConfig::default());
        (cluster, yarn, hdfs)
    }

    fn spec(name: &str, shuffle: ShuffleBackend) -> MrJobSpec {
        MrJobSpec {
            name: name.into(),
            input_path: "/in".into(),
            num_reducers: 2,
            container: Resource::new(1, 1024),
            shuffle,
            cost: MrCostModel::default(),
        }
    }

    fn run(engine: &mut Engine, spec: MrJobSpec) -> MrJobStats {
        let (cluster, yarn, hdfs) = setup(engine);
        hdfs.create_synthetic("/in", 512 * 1024 * 1024, StoragePolicy::Default)
            .unwrap();
        let out = Rc::new(RefCell::new(None));
        let o = out.clone();
        run_on_yarn(engine, &cluster, &yarn, &hdfs, spec, move |_, stats| {
            *o.borrow_mut() = Some(stats);
        });
        engine.run();
        let got = out.borrow_mut().take().expect("job finished");
        got
    }

    #[test]
    fn job_completes_with_consistent_stats() {
        let mut e = Engine::new(1);
        let stats = run(&mut e, spec("wc", ShuffleBackend::LocalDisk));
        assert_eq!(stats.maps, 4); // 512 MB / 128 MB blocks
        assert_eq!(stats.reducers, 2);
        assert!((stats.input_bytes - 512.0 * MB).abs() < 1.0);
        assert!((stats.shuffle_bytes - stats.input_bytes).abs() < 1.0); // ratio 1.0
        assert!(stats.total.as_secs_f64() > 0.0);
        let phases = stats.am_startup.as_secs_f64()
            + stats.map_phase.as_secs_f64()
            + stats.shuffle_phase.as_secs_f64()
            + stats.reduce_phase.as_secs_f64();
        assert!(
            (phases - stats.total.as_secs_f64()).abs() < 1.0,
            "phases {phases} vs total {}",
            stats.total
        );
    }

    #[test]
    fn in_memory_shuffle_is_fastest() {
        let mut e1 = Engine::new(1);
        let disk = run(&mut e1, spec("d", ShuffleBackend::LocalDisk));
        let mut e2 = Engine::new(1);
        let mem = run(&mut e2, spec("m", ShuffleBackend::InMemory));
        assert!(
            mem.total < disk.total,
            "in-memory {} should beat disk {}",
            mem.total,
            disk.total
        );
        assert!(mem.shuffle_bytes > 0.0);
    }

    #[test]
    fn lustre_shuffle_slower_under_contention() {
        // Many concurrent streams on the shared Lustre link vs independent
        // local disks: local must win for shuffle-heavy jobs.
        let mut e1 = Engine::new(1);
        let local = run(&mut e1, spec("local", ShuffleBackend::LocalDisk));
        let mut e2 = Engine::new(1);
        let lustre = run(&mut e2, spec("lustre", ShuffleBackend::Lustre));
        assert!(
            lustre.total.as_secs_f64() > local.total.as_secs_f64(),
            "lustre {} should exceed local {}",
            lustre.total,
            local.total
        );
    }

    #[test]
    fn more_reducers_do_not_lose_data() {
        let mut e = Engine::new(3);
        let mut s = spec("r8", ShuffleBackend::LocalDisk);
        s.num_reducers = 8;
        let stats = run(&mut e, s);
        assert_eq!(stats.reducers, 8);
        assert!((stats.shuffle_bytes - stats.input_bytes).abs() < 1.0);
        // Output = shuffle × ratio.
        assert!((stats.output_bytes - stats.shuffle_bytes * 0.1).abs() < 1.0);
    }

    #[test]
    fn am_startup_reflects_two_stage_allocation() {
        let mut e = Engine::new(2);
        let stats = run(&mut e, spec("am", ShuffleBackend::LocalDisk));
        // Test profile: submit 0.05 + heartbeat ≤0.1 + am launch 0.2.
        let t = stats.am_startup.as_secs_f64();
        assert!((0.2..1.0).contains(&t), "{t}");
    }

    #[test]
    fn deterministic_across_identical_seeds() {
        let mut e1 = Engine::new(42);
        let a = run(&mut e1, spec("d", ShuffleBackend::LocalDisk));
        let mut e2 = Engine::new(42);
        let b = run(&mut e2, spec("d", ShuffleBackend::LocalDisk));
        assert_eq!(a.total, b.total);
        assert_eq!(a.map_phase, b.map_phase);
    }

    #[test]
    fn speculative_execution_caps_the_tail() {
        let heavy_jitter = |speculative: f64| {
            let mut e = Engine::new(9);
            let mut sp = spec("straggler", ShuffleBackend::LocalDisk);
            sp.cost.task_jitter_sigma = 0.6; // heavy stragglers
            sp.cost.speculative_threshold = speculative;
            run(&mut e, sp).map_phase.as_secs_f64()
        };
        let without = heavy_jitter(0.0);
        let with = heavy_jitter(1.3);
        assert!(
            with <= without,
            "speculation must not hurt: {with} vs {without}"
        );
    }

    #[test]
    fn iterative_jobs_chain_sequentially() {
        let mut e = Engine::new(5);
        let (cluster, yarn, hdfs) = setup(&mut e);
        hdfs.create_synthetic("/in", 256 * 1024 * 1024, StoragePolicy::Default)
            .unwrap();
        let out = Rc::new(RefCell::new(None));
        let o = out.clone();
        run_iterative_on_yarn(
            &mut e,
            &cluster,
            &yarn,
            &hdfs,
            spec("kmeans", ShuffleBackend::LocalDisk),
            3,
            move |_, stats| *o.borrow_mut() = Some(stats),
        );
        e.run();
        let stats = out.borrow_mut().take().expect("iterations finished");
        assert_eq!(stats.len(), 3);
        // Each iteration pays its own AM startup (no overlap).
        for s in &stats {
            assert!(s.am_startup.as_secs_f64() > 0.0);
        }
        let total: f64 = stats.iter().map(|s| s.total.as_secs_f64()).sum();
        let single = stats[0].total.as_secs_f64();
        assert!(total > 2.5 * single * 0.8, "iterations are sequential");
    }

    #[test]
    #[should_panic]
    fn missing_input_panics() {
        let mut e = Engine::new(1);
        let (cluster, yarn, hdfs) = setup(&mut e);
        run_on_yarn(
            &mut e,
            &cluster,
            &yarn,
            &hdfs,
            spec("nope", ShuffleBackend::LocalDisk),
            |_, _| {},
        );
    }
}
