//! # rp-mapreduce — MapReduce for the Pilot integration
//!
//! * [`api`] — Hadoop-style `Mapper` / `Combiner` / `Reducer` traits (with
//!   closure blanket impls) and the stable hash partitioner.
//! * [`local`] — a native multi-threaded runner that executes jobs for
//!   real (used by the examples and as the correctness oracle in tests).
//! * [`simjob`] — the simulated MR-on-YARN job: AM startup, locality-aware
//!   map waves over HDFS splits, shuffle spills/fetches through the
//!   storage models (node-local disk vs Lustre), reduce and output phases.

pub mod api;
pub mod local;
pub mod simjob;

pub use api::{partition_of, Combiner, Emitter, Mapper, Reducer};
pub use local::run_local;
pub use simjob::{
    run_iterative_on_yarn, run_on_yarn, run_on_yarn_in_span, MrCostModel, MrJobSpec, MrJobStats,
    ShuffleBackend,
};
