//! Native multi-threaded MapReduce runner.
//!
//! Executes a job for real: map tasks in parallel over input splits,
//! optional map-side combine, hash shuffle, reduce tasks in parallel.
//! Output within each reduce partition is ordered by key so runs are
//! deterministic regardless of thread interleaving.

use std::collections::BTreeMap;

use rp_sim::par::{default_threads, parallel_map_indexed};

use crate::api::{partition_of, Combiner, Emitter, Mapper, Reducer};

/// Run a MapReduce job natively.
///
/// * `splits` — the input, one `Vec` of records per map task.
/// * `num_reducers` — number of output partitions.
///
/// Returns one `Vec<RO>` per reduce partition (key-ordered within each).
pub fn run_local<KI, VI, KO, VO, RO>(
    splits: Vec<Vec<(KI, VI)>>,
    mapper: &dyn Mapper<KI, VI, KO, VO>,
    combiner: Option<&dyn Combiner<KO, VO>>,
    reducer: &dyn Reducer<KO, VO, RO>,
    num_reducers: usize,
) -> Vec<Vec<RO>>
where
    KI: Send,
    VI: Send,
    KO: Clone + Ord + std::hash::Hash + Send,
    VO: Send,
    RO: Send,
{
    assert!(num_reducers >= 1);
    let n_maps = splits.len();
    let threads = default_threads(n_maps.max(num_reducers));

    // ---- map phase (parallel over splits) ----
    // Each map task produces per-reducer buckets; combine runs map-side.
    #[allow(clippy::type_complexity)]
    let map_outputs: Vec<Vec<BTreeMap<KO, Vec<VO>>>> = {
        let splits: Vec<std::sync::Mutex<Option<Vec<(KI, VI)>>>> = splits
            .into_iter()
            .map(|s| std::sync::Mutex::new(Some(s)))
            .collect();
        parallel_map_indexed(n_maps, threads, |i| {
            let split = splits[i]
                .lock()
                .expect("split poisoned")
                .take()
                .expect("split taken twice");
            let mut emitter = Emitter::new();
            for (k, v) in split {
                mapper.map(k, v, &mut emitter);
            }
            let mut buckets: Vec<BTreeMap<KO, Vec<VO>>> =
                (0..num_reducers).map(|_| BTreeMap::new()).collect();
            for (k, v) in emitter.into_pairs() {
                let p = partition_of(&k, num_reducers);
                buckets[p].entry(k).or_default().push(v);
            }
            if let Some(c) = combiner {
                for bucket in &mut buckets {
                    let keys: Vec<KO> = bucket.keys().cloned().collect();
                    for k in keys {
                        let vs = bucket.remove(&k).unwrap();
                        let combined = c.combine(&k, vs);
                        bucket.insert(k, vec![combined]);
                    }
                }
            }
            buckets
        })
    };

    // ---- shuffle: transpose map outputs into per-reducer groups ----
    let mut per_reducer: Vec<BTreeMap<KO, Vec<VO>>> =
        (0..num_reducers).map(|_| BTreeMap::new()).collect();
    for m in map_outputs {
        for (r, bucket) in m.into_iter().enumerate() {
            let tgt = &mut per_reducer[r];
            for (k, mut vs) in bucket {
                tgt.entry(k).or_default().append(&mut vs);
            }
        }
    }

    // ---- reduce phase (parallel over partitions) ----
    #[allow(clippy::type_complexity)]
    let slots: Vec<std::sync::Mutex<Option<BTreeMap<KO, Vec<VO>>>>> = per_reducer
        .into_iter()
        .map(|g| std::sync::Mutex::new(Some(g)))
        .collect();
    parallel_map_indexed(num_reducers, threads, |r| {
        let grouped = slots[r]
            .lock()
            .expect("partition poisoned")
            .take()
            .expect("partition taken twice");
        let mut out = Vec::new();
        for (k, vs) in grouped {
            reducer.reduce(k, vs, &mut out);
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Emitter;

    struct WordCountMapper;
    impl Mapper<u64, String, String, u64> for WordCountMapper {
        fn map(&self, _k: u64, line: String, e: &mut Emitter<String, u64>) {
            for w in line.split_whitespace() {
                e.emit(w.to_string(), 1);
            }
        }
    }

    struct SumReducer;
    impl Reducer<String, u64, (String, u64)> for SumReducer {
        fn reduce(&self, key: String, values: Vec<u64>, out: &mut Vec<(String, u64)>) {
            out.push((key, values.into_iter().sum()));
        }
    }

    struct SumCombiner;
    impl Combiner<String, u64> for SumCombiner {
        fn combine(&self, _key: &String, values: Vec<u64>) -> u64 {
            values.into_iter().sum()
        }
    }

    fn wc_input() -> Vec<Vec<(u64, String)>> {
        vec![
            vec![
                (0, "the quick brown fox".into()),
                (1, "the lazy dog".into()),
            ],
            vec![(2, "the end".into())],
        ]
    }

    #[test]
    fn word_count_without_combiner() {
        let out = run_local(wc_input(), &WordCountMapper, None, &SumReducer, 3);
        let all: std::collections::HashMap<String, u64> = out.into_iter().flatten().collect();
        assert_eq!(all["the"], 3);
        assert_eq!(all["quick"], 1);
        assert_eq!(all.len(), 7);
    }

    #[test]
    fn combiner_does_not_change_result() {
        let a = run_local(wc_input(), &WordCountMapper, None, &SumReducer, 2);
        let b = run_local(
            wc_input(),
            &WordCountMapper,
            Some(&SumCombiner),
            &SumReducer,
            2,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_key_ordered_per_partition() {
        let out = run_local(wc_input(), &WordCountMapper, None, &SumReducer, 1);
        let keys: Vec<&String> = out[0].iter().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn empty_input_yields_empty_partitions() {
        let out = run_local(
            Vec::<Vec<(u64, String)>>::new(),
            &WordCountMapper,
            None,
            &SumReducer,
            4,
        );
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(Vec::is_empty));
    }

    #[test]
    fn closures_as_mapper_and_reducer() {
        let splits = vec![vec![(0u64, 5u64), (0, 6)], vec![(0, 7)]];
        let out = run_local(
            splits,
            &|_k: u64, v: u64, e: &mut Emitter<u64, u64>| e.emit(v % 2, v),
            None,
            &|k: u64, vs: Vec<u64>, out: &mut Vec<(u64, u64)>| out.push((k, vs.into_iter().sum())),
            2,
        );
        let m: std::collections::HashMap<u64, u64> = out.into_iter().flatten().collect();
        assert_eq!(m[&0], 6);
        assert_eq!(m[&1], 12);
    }
}
