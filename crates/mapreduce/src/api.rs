//! Hadoop-style MapReduce programming API.
//!
//! `Mapper`, `Combiner` and `Reducer` are the user-facing traits; the
//! [`crate::local`] runner executes them for real on threads, and
//! [`crate::simjob`] reuses the same job *shape* with calibrated cost
//! models inside the discrete-event simulation.

use std::hash::{Hash, Hasher};

/// Collects key/value pairs emitted by a map or combine invocation.
#[derive(Debug)]
pub struct Emitter<K, V> {
    out: Vec<(K, V)>,
}

impl<K, V> Emitter<K, V> {
    pub fn new() -> Self {
        Emitter { out: Vec::new() }
    }

    pub fn emit(&mut self, key: K, value: V) {
        self.out.push((key, value));
    }

    pub fn into_pairs(self) -> Vec<(K, V)> {
        self.out
    }

    pub fn len(&self) -> usize {
        self.out.len()
    }

    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

impl<K, V> Default for Emitter<K, V> {
    fn default() -> Self {
        Emitter::new()
    }
}

/// Map phase: one record in, any number of intermediate pairs out.
pub trait Mapper<KI, VI, KO, VO>: Send + Sync {
    fn map(&self, key: KI, value: VI, emitter: &mut Emitter<KO, VO>);
}

/// Reduce phase: one key and all its values, any number of outputs.
pub trait Reducer<K, VI, VO>: Send + Sync {
    fn reduce(&self, key: K, values: Vec<VI>, out: &mut Vec<VO>);
}

/// Map-side pre-aggregation (a reducer whose output feeds the shuffle).
pub trait Combiner<K, V>: Send + Sync {
    fn combine(&self, key: &K, values: Vec<V>) -> V;
}

/// Blanket impls so closures can be used directly as mappers/reducers.
impl<KI, VI, KO, VO, F> Mapper<KI, VI, KO, VO> for F
where
    F: Fn(KI, VI, &mut Emitter<KO, VO>) + Send + Sync,
{
    fn map(&self, key: KI, value: VI, emitter: &mut Emitter<KO, VO>) {
        self(key, value, emitter)
    }
}

impl<K, VI, VO, F> Reducer<K, VI, VO> for F
where
    F: Fn(K, Vec<VI>, &mut Vec<VO>) + Send + Sync,
{
    fn reduce(&self, key: K, values: Vec<VI>, out: &mut Vec<VO>) {
        self(key, values, out)
    }
}

/// Stable hash partitioner (Hadoop `HashPartitioner`).
pub fn partition_of<K: Hash>(key: &K, num_reducers: usize) -> usize {
    assert!(num_reducers >= 1);
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % num_reducers as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_collects_in_order() {
        let mut e = Emitter::new();
        e.emit("a", 1);
        e.emit("b", 2);
        assert_eq!(e.len(), 2);
        assert_eq!(e.into_pairs(), vec![("a", 1), ("b", 2)]);
    }

    #[test]
    fn closures_are_mappers() {
        let m = |_k: u32, v: u32, e: &mut Emitter<u32, u32>| e.emit(v % 3, v);
        let mut e = Emitter::new();
        m.map(0, 7, &mut e);
        assert_eq!(e.into_pairs(), vec![(1, 7)]);
    }

    #[test]
    fn partitioner_is_stable_and_in_range() {
        for k in 0..1000u64 {
            let p = partition_of(&k, 7);
            assert!(p < 7);
            assert_eq!(p, partition_of(&k, 7));
        }
    }

    #[test]
    fn partitioner_spreads_keys() {
        let mut counts = [0usize; 4];
        for k in 0..10_000u64 {
            counts[partition_of(&k, 4)] += 1;
        }
        for &c in &counts {
            assert!((1_500..4_000).contains(&c), "skewed: {counts:?}");
        }
    }
}
