//! The coordination store — the paper's shared MongoDB instance.
//!
//! Unit-Managers queue Compute-Unit documents here (U.2); agents poll for
//! new documents (U.3) and push state updates back. The store models the
//! three latencies that matter: document write, agent poll cadence, and
//! state-update round trips. Poll events are armed only while documents
//! are pending, so an idle session drains the event queue.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use rp_sim::{Engine, SimDuration, SimTime};

use crate::unit::{PilotId, UnitHandle};

/// Latency model of the store.
#[derive(Debug, Clone)]
pub struct CoordinationConfig {
    /// Unit-Manager → store document write (ms).
    pub write_ms: f64,
    /// State-update round trip (agent → store → client visibility) (ms).
    pub update_ms: f64,
    /// Agent poll interval (ms). Pickup delay ≈ write + U(0, poll).
    pub poll_ms: u64,
}

impl Default for CoordinationConfig {
    fn default() -> Self {
        CoordinationConfig {
            write_ms: 60.0,
            update_ms: 60.0,
            poll_ms: 1_000,
        }
    }
}

type BatchFn = Rc<dyn Fn(&mut Engine, Vec<UnitHandle>)>;

struct PilotQueue {
    pending: Vec<UnitHandle>,
    consumer: Option<AgentRegistration>,
}

struct AgentRegistration {
    on_batch: BatchFn,
    /// Poll phase anchor: polls land at `start + k·poll`.
    start: SimTime,
    poll_armed: bool,
}

struct StoreInner {
    config: CoordinationConfig,
    queues: HashMap<PilotId, PilotQueue>,
    docs_written: u64,
    polls: u64,
}

/// Shared handle to the session's coordination store.
#[derive(Clone)]
pub struct CoordinationStore {
    inner: Rc<RefCell<StoreInner>>,
}

impl CoordinationStore {
    pub fn new(config: CoordinationConfig) -> CoordinationStore {
        CoordinationStore {
            inner: Rc::new(RefCell::new(StoreInner {
                config,
                queues: HashMap::new(),
                docs_written: 0,
                polls: 0,
            })),
        }
    }

    pub fn config(&self) -> CoordinationConfig {
        self.inner.borrow().config.clone()
    }

    /// Documents written so far (metrics).
    pub fn docs_written(&self) -> u64 {
        self.inner.borrow().docs_written
    }

    /// Poll round trips performed so far (metrics).
    pub fn polls(&self) -> u64 {
        self.inner.borrow().polls
    }

    /// Queue unit documents for a pilot (U.2). The write latency is paid
    /// before the documents become visible to the agent's polls.
    pub fn push_units(&self, engine: &mut Engine, pilot: PilotId, units: Vec<UnitHandle>) {
        if units.is_empty() {
            return;
        }
        let write = SimDuration::from_secs_f64(self.inner.borrow().config.write_ms / 1e3);
        let this = self.clone();
        engine.schedule_in(write, move |eng| {
            {
                let mut inner = this.inner.borrow_mut();
                inner.docs_written += units.len() as u64;
                eng.metrics
                    .add("coordination.docs_written", units.len() as u64);
                inner
                    .queues
                    .entry(pilot)
                    .or_insert_with(|| PilotQueue {
                        pending: Vec::new(),
                        consumer: None,
                    })
                    .pending
                    .extend(units);
            }
            this.arm_poll(eng, pilot);
        });
    }

    /// Agent-side registration (on pilot activation): `on_batch` runs at
    /// each poll that finds documents.
    pub fn register_agent(
        &self,
        engine: &mut Engine,
        pilot: PilotId,
        on_batch: impl Fn(&mut Engine, Vec<UnitHandle>) + 'static,
    ) {
        {
            let mut inner = self.inner.borrow_mut();
            let q = inner.queues.entry(pilot).or_insert_with(|| PilotQueue {
                pending: Vec::new(),
                consumer: None,
            });
            assert!(q.consumer.is_none(), "agent registered twice for {pilot:?}");
            q.consumer = Some(AgentRegistration {
                on_batch: Rc::new(on_batch),
                start: engine.now(),
                poll_armed: false,
            });
        }
        self.arm_poll(engine, pilot);
    }

    /// Agent deregistration (pilot teardown). Pending documents stay queued
    /// (a Unit-Manager may re-schedule them elsewhere).
    pub fn deregister_agent(&self, pilot: PilotId) {
        if let Some(q) = self.inner.borrow_mut().queues.get_mut(&pilot) {
            q.consumer = None;
        }
    }

    /// Drain documents that were never picked up (used on pilot teardown).
    pub fn take_pending(&self, pilot: PilotId) -> Vec<UnitHandle> {
        self.inner
            .borrow_mut()
            .queues
            .get_mut(&pilot)
            .map(|q| std::mem::take(&mut q.pending))
            .unwrap_or_default()
    }

    /// Pay the state-update round trip, then run `cb` (client visibility).
    pub fn roundtrip(&self, engine: &mut Engine, cb: impl FnOnce(&mut Engine) + 'static) {
        let update = SimDuration::from_secs_f64(self.inner.borrow().config.update_ms / 1e3);
        engine.schedule_in(update, cb);
    }

    /// Arm the next poll for `pilot` if documents are pending, a consumer
    /// exists, and no poll is already armed.
    fn arm_poll(&self, engine: &mut Engine, pilot: PilotId) {
        let next_at = {
            let mut inner = self.inner.borrow_mut();
            let poll_us = inner.config.poll_ms * 1_000;
            let q = match inner.queues.get_mut(&pilot) {
                Some(q) => q,
                None => return,
            };
            if q.pending.is_empty() {
                return;
            }
            let reg = match q.consumer.as_mut() {
                Some(r) => r,
                None => return,
            };
            if reg.poll_armed {
                return;
            }
            reg.poll_armed = true;
            let elapsed = engine.now().since(reg.start).0;
            let k = elapsed / poll_us + 1;
            reg.start + SimDuration(k * poll_us)
        };
        let this = self.clone();
        engine.schedule_at(next_at, move |eng| {
            let (batch, cb) = {
                let mut inner = this.inner.borrow_mut();
                inner.polls += 1;
                eng.metrics.incr("coordination.polls");
                let q = match inner.queues.get_mut(&pilot) {
                    Some(q) => q,
                    None => return,
                };
                let reg = match q.consumer.as_mut() {
                    Some(r) => r,
                    None => return, // agent went away while poll in flight
                };
                reg.poll_armed = false;
                (std::mem::take(&mut q.pending), reg.on_batch.clone())
            };
            if !batch.is_empty() {
                cb(eng, batch);
            }
            // More documents may have arrived while the batch processed.
            this.arm_poll(eng, pilot);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::{ComputeUnitDescription, WorkSpec};
    use crate::unit::UnitId;

    fn unit(id: u64) -> UnitHandle {
        UnitHandle::new(
            UnitId(id),
            ComputeUnitDescription::new("u", 1, WorkSpec::Sleep(SimDuration::from_secs(1))),
        )
    }

    fn store() -> CoordinationStore {
        CoordinationStore::new(CoordinationConfig::default())
    }

    #[test]
    fn units_delivered_after_write_and_poll() {
        let mut e = Engine::new(1);
        let s = store();
        let got: Rc<RefCell<Vec<(SimTime, usize)>>> = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        s.register_agent(&mut e, PilotId(0), move |eng, batch| {
            g.borrow_mut().push((eng.now(), batch.len()));
        });
        s.push_units(&mut e, PilotId(0), vec![unit(0), unit(1)]);
        e.run();
        let got = got.borrow();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, 2);
        // write 60 ms → first poll boundary at 1.0 s.
        assert_eq!(got[0].0, SimTime::from_secs_f64(1.0));
        assert_eq!(s.docs_written(), 2);
        assert!(s.polls() >= 1);
    }

    #[test]
    fn docs_queue_until_agent_registers() {
        let mut e = Engine::new(1);
        let s = store();
        s.push_units(&mut e, PilotId(7), vec![unit(0)]);
        e.run();
        let got = Rc::new(RefCell::new(0usize));
        let g = got.clone();
        s.register_agent(&mut e, PilotId(7), move |_, batch| {
            *g.borrow_mut() += batch.len();
        });
        e.run();
        assert_eq!(*got.borrow(), 1);
    }

    #[test]
    fn batches_coalesce_within_a_poll() {
        let mut e = Engine::new(1);
        let s = store();
        let batches = Rc::new(RefCell::new(Vec::new()));
        let b = batches.clone();
        s.register_agent(&mut e, PilotId(0), move |_, batch| {
            b.borrow_mut().push(batch.len());
        });
        // Three pushes well inside one poll window.
        for i in 0..3 {
            s.push_units(&mut e, PilotId(0), vec![unit(i)]);
        }
        e.run();
        assert_eq!(*batches.borrow(), vec![3]);
    }

    #[test]
    fn deregistered_agent_receives_nothing() {
        let mut e = Engine::new(1);
        let s = store();
        let got = Rc::new(RefCell::new(0usize));
        let g = got.clone();
        s.register_agent(&mut e, PilotId(0), move |_, batch| {
            *g.borrow_mut() += batch.len();
        });
        s.deregister_agent(PilotId(0));
        s.push_units(&mut e, PilotId(0), vec![unit(0)]);
        e.run();
        assert_eq!(*got.borrow(), 0);
        assert_eq!(s.take_pending(PilotId(0)).len(), 1);
    }

    #[test]
    fn roundtrip_pays_update_latency() {
        let mut e = Engine::new(1);
        let s = store();
        let at = Rc::new(RefCell::new(SimTime::ZERO));
        let a = at.clone();
        s.roundtrip(&mut e, move |eng| *a.borrow_mut() = eng.now());
        e.run();
        assert_eq!(*at.borrow(), SimTime::from_secs_f64(0.06));
    }

    #[test]
    fn empty_push_is_noop() {
        let mut e = Engine::new(1);
        let s = store();
        s.push_units(&mut e, PilotId(0), vec![]);
        e.run();
        assert_eq!(s.docs_written(), 0);
    }
}
